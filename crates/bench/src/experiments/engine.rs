//! Experiment E15: sharded batch serving — the NC claim with real threads.
//!
//! The step-metered experiments certify the polylog *work* of every query;
//! this one exercises the parallel dimension: one batch of mixed
//! point/range/conjunction queries fanned out across 1/2/4/8 shards on
//! scoped threads, wall-clock timed, and verified against the scan oracle.
//!
//! The same sweep backs the `sharding` bench target, which serializes the
//! shard-count → throughput curve to `BENCH_engine.json` so CI keeps a
//! machine-readable perf trajectory across PRs.

use crate::table::{fmt_u64, Table};
use pitract_engine::batch::QueryBatch;
use pitract_engine::shard::{ShardBy, ShardedRelation};
use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
use std::time::Instant;

/// One measured point of the shard sweep.
#[derive(Debug, Clone)]
pub struct ShardSample {
    /// Shard count S.
    pub shards: usize,
    /// Wall-clock seconds for one batch execution (best of the timed
    /// repetitions).
    pub batch_seconds: f64,
    /// Queries served per second at that shard count.
    pub queries_per_second: f64,
    /// Total metered steps across the batch (work, not wall time).
    pub total_steps: u64,
}

/// Queries per batch in the sweep workload (also serialized into the
/// `BENCH_engine.json` perf artifact).
pub const BATCH_QUERIES: i64 = 512;

fn workload(n: i64) -> (Relation, QueryBatch) {
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 64))])
        .collect();
    let rel = Relation::from_rows(schema, rows).expect("valid rows");
    let batch = QueryBatch::new((0..BATCH_QUERIES).map(|k| match k % 4 {
        0 => SelectionQuery::point(0, (k * 997) % (n + n / 8)),
        1 => {
            let lo = (k * 641) % n;
            SelectionQuery::range_closed(0, lo, lo + 200)
        }
        2 => SelectionQuery::and(
            SelectionQuery::point(1, format!("grp{}", k % 64).as_str()),
            SelectionQuery::range_closed(0, (k * 331) % n, (k * 331) % n + 2_000),
        ),
        _ => SelectionQuery::point(0, n + k),
    }));
    (rel, batch)
}

/// Run the shard sweep on an `n`-row relation with `reps` timed
/// repetitions per shard count, verifying every batch against the scan
/// oracle. Shared by E15 and the `sharding` bench target.
pub fn shard_throughput_sweep(n: i64, shard_counts: &[usize], reps: usize) -> Vec<ShardSample> {
    let (rel, batch) = workload(n);
    let oracle: Vec<bool> = batch.queries().iter().map(|q| rel.eval_scan(q)).collect();
    shard_counts
        .iter()
        .map(|&shards| {
            let sharded = ShardedRelation::build(&rel, ShardBy::Hash { col: 0 }, shards, &[0, 1])
                .expect("valid sharding spec");
            let mut best = f64::MAX;
            let mut total_steps = 0u64;
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                let result = batch.execute(&sharded).expect("valid batch");
                let dt = t0.elapsed().as_secs_f64();
                assert_eq!(result.answers, oracle, "S={shards} diverged from oracle");
                best = best.min(dt);
                total_steps = result.report.total_steps;
            }
            ShardSample {
                shards,
                batch_seconds: best,
                queries_per_second: batch.len() as f64 / best,
                total_steps,
            }
        })
        .collect()
}

/// E15 — sharded batch serving: throughput across 1/2/4/8 shards.
pub fn run_e15() -> Table {
    let samples = shard_throughput_sweep(1 << 16, &[1, 2, 4, 8], 3);
    let base_qps = samples[0].queries_per_second;
    let rows = samples
        .iter()
        .map(|s| {
            vec![
                fmt_u64(s.shards as u64),
                format!("{:.2}", s.batch_seconds * 1e3),
                fmt_u64(s.queries_per_second as u64),
                format!("{:.2}x", s.queries_per_second / base_qps),
                fmt_u64(s.total_steps),
            ]
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let best = samples
        .iter()
        .max_by(|a, b| a.queries_per_second.total_cmp(&b.queries_per_second))
        .expect("non-empty sweep");
    Table {
        id: "E15",
        title: "sharded batch serving: 512 mixed queries across S shards (engine)",
        paper_claim: "after PTIME Π(D), queries answer in NC — parallel across shards/threads",
        headers: ["shards", "batch ms", "queries/s", "speedup", "total steps"]
            .map(String::from)
            .to_vec(),
        rows,
        verdict: format!(
            "best throughput at S={} ({} q/s) on {cores} core(s); answers identical \
             to the scan oracle at every shard count",
            best.shards, best.queries_per_second as u64
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_verifies_and_reports_every_shard_count() {
        // Tiny size: the debug-mode smoke run only checks the plumbing.
        let samples = shard_throughput_sweep(2_000, &[1, 2, 4], 1);
        assert_eq!(samples.len(), 3);
        for s in &samples {
            assert!(s.queries_per_second > 0.0);
            assert!(s.total_steps > 0);
        }
    }

    #[test]
    fn e15_runs_and_renders() {
        let t = run_e15();
        let s = t.render();
        assert!(s.contains("E15"));
        assert_eq!(t.rows.len(), 4);
    }
}
