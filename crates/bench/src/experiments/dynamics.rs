//! Experiments E10–E14: incremental evaluation, CVP factorizations,
//! kernelization, reductions, and the NC depth model.

use crate::table::{fmt_u64, Table};
use pitract_circuit::factor::{gate_factorization, gate_table_scheme};
use pitract_circuit::generate::layered;
use pitract_core::cost::Meter;
use pitract_core::factor::Factorization;
use pitract_core::fit::{best_fit, Sample};
use pitract_graph::generate;
use pitract_incremental::closure::IncrementalClosure;
use pitract_incremental::index_maint::run_stream;
use pitract_incremental::reach::IncrementalReach;
use pitract_kernel::buss::kernelize;
use pitract_kernel::vc::bounded_search_tree;
use pitract_pram::matrix::BitMatrix;
use pitract_pram::primitives::par_scan;
use pitract_pram::sort::par_merge_sort;
use pitract_reductions::{connectivity_to_bds, list_to_selection, rmq_lca};

/// E10 — Section 4(7): bounded incremental computation.
pub fn run_e10() -> Table {
    let mut rows = Vec::new();

    // (a) Incremental single-source reachability on a growing random graph.
    let n = 3000;
    let mut inc = IncrementalReach::new(n, 0);
    let mut state = 0x5EED_1234u64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state as usize
    };
    for _ in 0..4 * n {
        inc.insert_edge(rnd() % n, rnd() % n);
    }
    let report = inc.report();
    rows.push(vec![
        "incremental reach (4n inserts)".into(),
        fmt_u64(report.total_work()),
        fmt_u64(report.total_changed()),
        format!("{:.2}", report.worst_ratio()),
        format!("amortized-bounded: {}", report.is_amortized_bounded(4.0)),
    ]);

    // (b) Italiano-style incremental closure vs recompute.
    let m = 120;
    let mut cls = IncrementalClosure::new(m);
    for i in 0..m - 1 {
        cls.insert_edge(i, i + 1);
    }
    for k in 0..200 {
        cls.insert_edge((k * 7) % m, (k * 13 + 1) % m);
    }
    let creport = cls.report();
    rows.push(vec![
        "incremental closure (n=120)".into(),
        fmt_u64(creport.total_work()),
        fmt_u64(creport.total_changed()),
        format!("{:.2}", creport.worst_ratio()),
        "vs recompute O(n·m) per update".into(),
    ]);

    // (c) Incremental preprocessing maintenance: three strategies.
    let keys: Vec<u64> = (0..4000u64).map(|i| (i * 2654435761) % 16_384).collect();
    for (name, total) in run_stream(&keys) {
        rows.push(vec![
            format!("index maintenance: {name}"),
            fmt_u64(total),
            fmt_u64(keys.len() as u64),
            format!("{:.1}", total as f64 / keys.len() as f64),
            "per-insert work".into(),
        ]);
    }

    Table {
        id: "E10",
        title: "bounded incremental computation (Section 4(7), Ramalingam-Reps accounting)",
        paper_claim: "incremental cost should be a function of |CHANGED| = |ΔD|+|ΔO|, not |D|",
        headers: [
            "algorithm",
            "total work",
            "total |CHANGED|",
            "worst ratio",
            "note",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        verdict: "reachability maintenance is amortized-bounded; B+-tree maintenance beats \
                  shift/resort by orders of magnitude"
            .into(),
    }
}

/// E11 — Theorem 9 measured: CVP per-query cost under Υ₀ vs Υ_gate.
pub fn run_e11() -> Table {
    let meter = Meter::new();
    let mut rows = Vec::new();
    let mut u0_series = Vec::new();
    for &layers in &[32usize, 64, 128, 256, 512] {
        let circuit = layered(8, layers, 8, layers as u64);
        let inputs = vec![true, false, true, true, false, false, true, false];
        let x = (circuit, inputs);

        // Υ₀: evaluate the whole circuit per query.
        meter.take();
        x.0.evaluate_metered(&x.1, &meter);
        let u0 = meter.take();
        u0_series.push(Sample::new(x.0.size() as u64, u0));

        // Υ_gate: gate table once, O(1) probes; also check correctness.
        let f = gate_factorization();
        let scheme = gate_table_scheme();
        let d = f.pi1(&x);
        let table = scheme.preprocess(&d);
        let probe_cost = 1u64; // one indexed read
        assert_eq!(scheme.answer(&table, &f.pi2(&x)), x.0.evaluate(&x.1));

        rows.push(vec![
            fmt_u64(x.0.size() as u64),
            fmt_u64(x.0.depth()),
            fmt_u64(u0),
            fmt_u64(x.0.size() as u64),
            fmt_u64(probe_cost),
        ]);
    }
    let fit = best_fit(&u0_series);
    Table {
        id: "E11",
        title: "CVP: the Υ₀ factorization vs the gate-table re-factorization (Thm 9 / Cor 6)",
        paper_claim: "under Υ₀ preprocessing cannot help (P-complete query part); re-factorized, \
                      CVP answers in O(1) after PTIME gate evaluation",
        headers: [
            "|circuit|",
            "depth",
            "Υ₀ steps/q",
            "Υ_gate prep (once)",
            "Υ_gate steps/q",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        verdict: format!(
            "Υ₀ per-query cost grows ({}); re-factorized queries are single probes",
            fit.best().model
        ),
    }
}

/// E12 — Section 4(9): Vertex Cover via Buss kernelization, fixed k.
pub fn run_e12() -> Table {
    let meter = Meter::new();
    let mut rows = Vec::new();
    let k = 8;
    for &n in &[200usize, 800, 3200, 12800] {
        // Hub-heavy graphs: a few high-degree centers + sparse periphery.
        let mut edges = Vec::new();
        for hub in 0..3 {
            for i in 10..n / 2 {
                if i % 3 == hub {
                    edges.push((hub, i));
                }
            }
        }
        for i in 0..4 {
            edges.push((n / 2 + 2 * i, n / 2 + 2 * i + 1));
        }
        let g = pitract_graph::Graph::undirected_from_edges(n, &edges);

        meter.take();
        let kernel = kernelize(&g, k, &meter);
        let prep = meter.take();
        let (kn, ke, decided) = (
            kernel.graph.node_count(),
            kernel.graph.edge_count(),
            kernel.decided.is_some(),
        );
        // Post-kernel solve cost is a function of the kernel only.
        let solve_size = if decided { 0 } else { kn + ke };
        let answer = pitract_kernel::buss::decide_via_kernel(&g, k, &meter);
        assert_eq!(answer, bounded_search_tree(&g, k).is_some(), "n={n}");

        rows.push(vec![
            fmt_u64(n as u64),
            fmt_u64(g.edge_count() as u64),
            fmt_u64(prep),
            format!("{kn}+{ke}"),
            fmt_u64(solve_size as u64),
        ]);
    }
    Table {
        id: "E12",
        title: "vertex cover: Buss kernelization at fixed K (Section 4(9))",
        paper_claim: "kernelize in O(|E|); for fixed K the residual decision is O(1) in |G|",
        headers: [
            "n",
            "edges",
            "kernelize steps",
            "kernel n+e",
            "post-kernel size",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        verdict: "kernel size stays flat while |G| grows 64x — the fixed-parameter O(1) query"
            .into(),
    }
}

/// E13 — Lemmas 2/3/8: reduction overhead and transferred-scheme parity.
pub fn run_e13() -> Table {
    let meter = Meter::new();
    let mut rows = Vec::new();

    // (a) List search natively vs via the reduction to point selection.
    let n = 1u64 << 16;
    let list: Vec<i64> = (0..n as i64).collect();
    let native = pitract_index::sorted::SortedIndex::build(&list);
    let transferred = list_to_selection::transferred_list_scheme();
    let pre = transferred.preprocess(&list);
    let (mut s_native, mut s_via) = (0u64, 0u64);
    let queries = 64u64;
    for kq in 0..queries {
        let q = (kq * 1_000_003) as i64 % (2 * n as i64);
        meter.take();
        let a = native.contains_metered(&q, &meter);
        s_native += meter.take();
        let b = transferred.answer(&pre, &q);
        s_via += 2 + ((n as f64).log2().ceil() as u64); // β rewrite + probe
        assert_eq!(a, b, "q={q}");
    }
    rows.push(vec![
        "list-search: native sorted index".into(),
        fmt_u64(s_native / queries),
        "O(log n)".into(),
    ]);
    rows.push(vec![
        "list-search: via ≤NC_F to point-selection".into(),
        fmt_u64(s_via / queries),
        "O(log n) + O(1) rewrite".into(),
    ]);

    // (b) RMQ via the Cartesian-tree reduction (Lemma 3 transfer).
    let data: Vec<i64> = (0..10_000).map(|i| ((i * 37) % 1009) as i64).collect();
    let scheme = rmq_lca::transferred_rmq_scheme();
    let p = scheme.preprocess(&data);
    let mut ok = 0;
    for i in (0..10_000).step_by(997) {
        let j = (i + 5_000).min(9_999);
        let mut best = i;
        for t in i + 1..=j {
            if data[t] < data[best] {
                best = t;
            }
        }
        if scheme.answer(&p, &(i, j, best)) {
            ok += 1;
        }
    }
    rows.push(vec![
        "RMQ: via ≤NC_fa to Cartesian LCA".into(),
        format!("{ok}/11 verified"),
        "O(1) probes after transfer".into(),
    ]);

    // (c) Connectivity through BDS (Theorem 5 direction).
    let g = generate::gnp_undirected(2_000, 0.0012, 77);
    let conn = connectivity_to_bds::transferred_connectivity_scheme();
    let cp = conn.preprocess(&g);
    let reachable = (0..2_000).filter(|t| conn.answer(&cp, t)).count();
    rows.push(vec![
        "connectivity: via ≤NC_fa to BDS".into(),
        format!("component(0) = {reachable} nodes"),
        "one search, O(1) probes".into(),
    ]);

    Table {
        id: "E13",
        title: "reductions in action: native vs transferred schemes (Lemmas 2/3/8)",
        paper_claim: "reductions are transitive and compatible: a scheme for the target yields \
                      a scheme for the source",
        headers: ["pipeline", "measure", "cost shape"]
            .map(String::from)
            .to_vec(),
        rows,
        verdict: "every transferred scheme answers identically to the native engine; overhead \
                  is a constant-depth query rewrite"
            .into(),
    }
}

/// E14 — the NC model: depths of the parallel toolkit vs input size.
pub fn run_e14() -> Table {
    let mut rows = Vec::new();
    let mut closure_series = Vec::new();
    for &n in &[64usize, 128, 256, 512] {
        let g = generate::gnp_directed(n, 2.0 / n as f64, n as u64);
        let (_, c_cost) = BitMatrix::from_edges(n, &g.edges()).transitive_closure();
        closure_series.push(Sample::new(n as u64, c_cost.depth));

        let xs: Vec<u64> = (0..n as u64).collect();
        let (_, _, scan_cost) = par_scan(&xs, 0u64, |a, b| a + b);
        let (_, sort_cost) = par_merge_sort(&xs);

        rows.push(vec![
            fmt_u64(n as u64),
            fmt_u64(c_cost.depth),
            fmt_u64(c_cost.work),
            fmt_u64(scan_cost.depth),
            fmt_u64(sort_cost.depth),
        ]);
    }
    let fit = best_fit(&closure_series);
    Table {
        id: "E14",
        title: "the NC substrate: work/depth of closure, scan, parallel sort",
        paper_claim: "NC = polylog parallel time with polynomially many processors; reachability \
                      closure is the NC² witness",
        headers: [
            "n",
            "closure depth",
            "closure work",
            "scan depth",
            "sort depth",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        verdict: format!(
            "closure depth fits {} (polylog), validating the Definition-1 query budget",
            fit.best().model
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamics_experiments_run_and_render() {
        for t in [run_e10(), run_e11(), run_e12(), run_e13(), run_e14()] {
            assert!(!t.rows.is_empty(), "{} has no rows", t.id);
            assert!(t.render().contains(t.id));
        }
    }
}
