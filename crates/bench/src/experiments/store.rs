//! Experiment E16: cold rebuild vs snapshot warm start.
//!
//! The paper's Definition 1 makes preprocessing a *one-time* PTIME cost —
//! but only a persistence layer makes "one-time" literal across process
//! starts. This experiment quantifies the warm-start win: for growing
//! data sizes, build a `ShardedRelation` from scratch (route + per-key
//! index inserts, O(n log n)) and, separately, reload the same structure
//! from a `pitract-store` snapshot file (sequential decode + O(n) B⁺-tree
//! bulk load). Every loaded relation is verified against the cold one on
//! a query batch before any number is reported.
//!
//! The same sweep backs the `persistence` bench target, which serializes
//! the size → (build, load) curve to `BENCH_store.json` next to the
//! engine's `BENCH_engine.json`.

use crate::table::{fmt_u64, Table};
use pitract_engine::batch::QueryBatch;
use pitract_engine::shard::{ShardBy, ShardedRelation};
use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
use pitract_store::Snapshot;
use std::time::Instant;

/// One measured point of the persistence sweep.
#[derive(Debug, Clone)]
pub struct StoreSample {
    /// Rows in the relation.
    pub rows: i64,
    /// Snapshot file size in bytes.
    pub file_bytes: u64,
    /// Cold `ShardedRelation::build` seconds (best of reps).
    pub build_seconds: f64,
    /// `Snapshot::load` seconds from a file (best of reps).
    pub load_seconds: f64,
}

impl StoreSample {
    /// Cold-build time over warm-load time (> 1 means warm start wins).
    pub fn speedup(&self) -> f64 {
        self.build_seconds / self.load_seconds.max(1e-12)
    }
}

/// Shards used throughout the sweep.
pub const STORE_SHARDS: usize = 8;

fn workload(n: i64) -> (Relation, QueryBatch) {
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 64))])
        .collect();
    let rel = Relation::from_rows(schema, rows).expect("valid rows");
    let batch = QueryBatch::new((0..128i64).map(|k| match k % 3 {
        0 => SelectionQuery::point(0, (k * 997) % (n + n / 8)),
        1 => SelectionQuery::range_closed(0, (k * 641) % n, (k * 641) % n + 200),
        _ => SelectionQuery::point(1, format!("grp{}", k % 64).as_str()),
    }));
    (rel, batch)
}

/// Run the cold-build vs snapshot-load sweep with `reps` timed
/// repetitions per size, verifying the loaded relation against the cold
/// one on every size. Shared by E16 and the `persistence` bench target.
pub fn store_warmstart_sweep(sizes: &[i64], reps: usize) -> Vec<StoreSample> {
    let dir = std::env::temp_dir().join(format!("pitract-e16-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let samples = sizes
        .iter()
        .map(|&n| {
            let (rel, batch) = workload(n);
            let mut build_best = f64::MAX;
            let mut cold = None;
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                let built =
                    ShardedRelation::build(&rel, ShardBy::Hash { col: 0 }, STORE_SHARDS, &[0, 1])
                        .expect("valid sharding spec");
                build_best = build_best.min(t0.elapsed().as_secs_f64());
                cold = Some(built);
            }
            let cold = cold.expect("at least one rep");

            let path = dir.join(format!("e16-{n}.snap"));
            let snap = Snapshot::Sharded(cold);
            snap.save(&path).expect("snapshot save");
            // Recover the built relation from the enum so the oracle
            // check below reuses the measured build instead of paying
            // another O(n log n) rebuild.
            let cold = snap.into_sharded().expect("sharded snapshot");
            let file_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

            let mut load_best = f64::MAX;
            let mut warm = None;
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                let loaded = Snapshot::load(&path)
                    .expect("snapshot load")
                    .into_sharded()
                    .expect("sharded snapshot");
                load_best = load_best.min(t0.elapsed().as_secs_f64());
                warm = Some(loaded);
            }
            let warm = warm.expect("at least one rep");

            // Correctness before cost: the warm relation must serve the
            // batch identically to the cold-built one.
            let a = batch.execute(&warm).expect("valid batch");
            let b = batch.execute(&cold).expect("valid batch");
            assert_eq!(a.answers, b.answers, "n={n} warm diverged from cold");

            let _ = std::fs::remove_file(&path);
            StoreSample {
                rows: n,
                file_bytes,
                build_seconds: build_best,
                load_seconds: load_best,
            }
        })
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    samples
}

/// E16 — persistent snapshots: cold Π(D) rebuild vs warm start from disk.
pub fn run_e16() -> Table {
    let samples = store_warmstart_sweep(&[1 << 13, 1 << 15, 1 << 16], 3);
    let rows = samples
        .iter()
        .map(|s| {
            vec![
                fmt_u64(s.rows as u64),
                format!("{:.1}", s.file_bytes as f64 / 1024.0),
                format!("{:.2}", s.build_seconds * 1e3),
                format!("{:.2}", s.load_seconds * 1e3),
                format!("{:.2}x", s.speedup()),
            ]
        })
        .collect();
    let largest = samples.last().expect("non-empty sweep");
    Table {
        id: "E16",
        title: "persistent snapshots: cold ShardedRelation::build vs Snapshot load (store)",
        paper_claim:
            "Π(D) is a ONE-TIME PTIME cost — persistence makes it one-time across process starts",
        headers: ["rows", "file KiB", "build ms", "load ms", "speedup"]
            .map(String::from)
            .to_vec(),
        rows,
        verdict: format!(
            "warm start {:.2}x faster than cold rebuild at n={} ({} KiB snapshot); \
             loaded relations verified against the cold oracle at every size",
            largest.speedup(),
            largest.rows,
            largest.file_bytes / 1024
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_verifies_and_reports_every_size() {
        // Tiny sizes: the debug-mode smoke run only checks the plumbing.
        let samples = store_warmstart_sweep(&[500, 1_000], 1);
        assert_eq!(samples.len(), 2);
        for s in &samples {
            assert!(s.build_seconds > 0.0);
            assert!(s.load_seconds > 0.0);
            assert!(s.file_bytes > 0);
        }
    }

    #[test]
    fn e16_runs_and_renders() {
        let t = run_e16();
        let s = t.render();
        assert!(s.contains("E16"));
        assert_eq!(t.rows.len(), 3);
    }
}
