//! Experiment E20: epoch-pinned MVCC reads vs read-committed under
//! writer churn.
//!
//! The serving tier's contract is that a batch is one consistent cut:
//! the executor pins the epoch once and every shard answers at exactly
//! that instance, while writers record O(1) undo entries around the pin
//! instead of blocking. The obvious worry is the price — does pinning
//! (and the undo rings it retains) cost latency against the weaker
//! `execute_read_committed` path, which reads each shard's freshest
//! state and offers no cross-shard consistency?
//!
//! Both paths are measured through the same scoped shard fan-out and
//! the batches interleave (pinned, read-committed, pinned, ...), so the
//! two series face the same writer-activity regimes and the measured
//! delta is the pin alone — pooled-executor dispatch cost is the pool
//! experiment's question, not this one's. The pooled path still
//! participates: its warm-up answers are checked against the scan
//! oracle at zero writers, alongside the scoped paths.
//!
//! This experiment serves the same mixed batch both ways at 0, 1 and 4
//! racing writers, reporting p50/p99 per-batch latency side by side plus
//! the high-water undo-ring footprint (`VersionStats`) the pins ever
//! retained. Under churn the consistency proof lives in the
//! `live_serving` property suite — here we only measure.
//!
//! The same sweep backs the `mvcc` bench target, which serializes the
//! comparison to `BENCH_mvcc.json` next to the other perf artifacts.

use crate::table::{fmt_u64, Table};
use pitract_engine::batch::QueryBatch;
use pitract_engine::live::LiveRelation;
use pitract_engine::shard::ShardBy;
use pitract_engine::PooledExecutor;
use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Queries per batch in the sweep workload (also serialized into the
/// `BENCH_mvcc.json` perf artifact).
pub const MVCC_BATCH_QUERIES: i64 = 256;

/// Shard count the live relation is built with.
pub const MVCC_SHARDS: usize = 4;

/// Writer-thread counts the sweep measures.
pub const MVCC_WRITERS: [usize; 3] = [0, 1, 4];

/// One measured point: both read paths at a fixed writer count.
#[derive(Debug, Clone)]
pub struct MvccSample {
    /// Racing writer threads during the measurement.
    pub writers: usize,
    /// Median per-batch seconds, epoch-pinned (one consistent cut).
    pub pinned_p50_seconds: f64,
    /// 99th-percentile per-batch seconds, epoch-pinned.
    pub pinned_p99_seconds: f64,
    /// Queries per second, epoch-pinned (from the median).
    pub pinned_qps: f64,
    /// Median per-batch seconds on the unpinned read-committed path.
    pub read_committed_p50_seconds: f64,
    /// 99th-percentile per-batch seconds, read-committed.
    pub read_committed_p99_seconds: f64,
    /// Queries per second, read-committed (from the median).
    pub read_committed_qps: f64,
    /// High-water count of undo records the pins retained.
    pub max_retained_versions: usize,
    /// High-water row slots held by those retained records.
    pub max_retained_slots: usize,
}

fn workload(n: i64) -> (Relation, QueryBatch) {
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 64))])
        .collect();
    let rel = Relation::from_rows(schema, rows).expect("valid rows");
    // Mixed points / ranges / conjunctions, deliberately covering the
    // volatile key region `>= n` the writers churn in, so the pinned
    // path is exercised where consistency actually matters.
    let batch = QueryBatch::new((0..MVCC_BATCH_QUERIES).map(|k| match k % 4 {
        0 => SelectionQuery::point(0, (k * 997) % (n + n / 8)),
        1 => {
            let lo = (k * 641) % n;
            SelectionQuery::range_closed(0, lo, lo + 200)
        }
        2 => SelectionQuery::and(
            SelectionQuery::point(1, format!("grp{}", k % 64).as_str()),
            SelectionQuery::range_closed(0, (k * 331) % n, (k * 331) % n + 2_000),
        ),
        _ => SelectionQuery::range_closed(0, n - 50, n + 10_000),
    }));
    (rel, batch)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Run both read paths on an `n`-row live relation with `batches` timed
/// batches per path at each writer count. Shared by E20 and the `mvcc`
/// bench target.
pub fn mvcc_serving_sweep(n: i64, writer_counts: &[usize], batches: usize) -> Vec<MvccSample> {
    let (rel, batch) = workload(n);
    let oracle: Vec<bool> = batch.queries().iter().map(|q| rel.eval_scan(q)).collect();

    writer_counts
        .iter()
        .map(|&writers| {
            let live = Arc::new(
                LiveRelation::build(&rel, ShardBy::Hash { col: 0 }, MVCC_SHARDS, &[0, 1])
                    .expect("valid sharding spec"),
            );
            // Warm both scoped paths outside the timer; the pooled
            // executor's pinned answers are cross-checked against the
            // scan oracle here too, then the pool stands down (its
            // dispatch cost is the pool experiment's subject).
            let warm = live.execute(&batch).expect("valid batch");
            if writers == 0 {
                assert_eq!(warm.answers, oracle, "pinned W=0 diverged from the oracle");
                let rc = live.execute_read_committed(&batch).expect("valid batch");
                assert_eq!(rc.answers, oracle, "read-committed W=0 diverged");
                let exec = PooledExecutor::with_default_pool(Arc::clone(&live));
                let pooled = exec.execute(&batch).expect("valid batch");
                assert_eq!(pooled.answers, oracle, "pooled pinned W=0 diverged");
            }

            let stop = AtomicBool::new(false);
            let (mut pinned, mut read_committed) = (Vec::new(), Vec::new());
            let (mut max_versions, mut max_slots) = (0usize, 0usize);
            std::thread::scope(|scope| {
                for w in 0..writers {
                    let live = Arc::clone(&live);
                    let stop = &stop;
                    scope.spawn(move || {
                        // Steady insert/delete churn in the volatile key
                        // region: every 4th op deletes the row inserted
                        // 4 ops earlier, so tombstones and undo records
                        // both accumulate.
                        let mut recent: Vec<usize> = Vec::new();
                        let mut i = 0i64;
                        while !stop.load(Ordering::Relaxed) {
                            let key = n + (w as i64) * 1_000_000 + i;
                            let gid = live
                                .insert(vec![Value::Int(key), Value::str("churn")])
                                .expect("valid row");
                            recent.push(gid);
                            if recent.len() > 4 {
                                let victim = recent.remove(0);
                                live.delete(victim).expect("no sink installed");
                            }
                            i += 1;
                        }
                    });
                }

                // Interleave the two paths so both series sample the
                // same writer-activity phases (back-to-back phases
                // would let one path run against writers a prior phase
                // already dammed up behind the shard locks), and
                // alternate which path goes first: each batch leaves
                // the writers dammed behind its read locks, so a fixed
                // order would hand the second path a systematically
                // quieter system.
                for i in 0..batches.max(1) {
                    for leg in 0..2 {
                        if (leg == 0) == (i % 2 == 0) {
                            let t0 = Instant::now();
                            live.execute(&batch).expect("valid batch");
                            pinned.push(t0.elapsed().as_secs_f64());
                            let stats = live.version_stats();
                            max_versions = max_versions.max(stats.retained_versions);
                            max_slots = max_slots.max(stats.retained_slots);
                        } else {
                            let t0 = Instant::now();
                            live.execute_read_committed(&batch).expect("valid batch");
                            read_committed.push(t0.elapsed().as_secs_f64());
                        }
                    }
                }
                // Footprint probe: the rings trim right back once a
                // batch's pin drops, so sampling between batches reads
                // ~0. Hold one pin against the still-running writers
                // and sample what it actually retains.
                if writers > 0 {
                    let pin = live.pin();
                    for _ in 0..4 {
                        std::thread::yield_now();
                        let stats = live.version_stats();
                        max_versions = max_versions.max(stats.retained_versions);
                        max_slots = max_slots.max(stats.retained_slots);
                    }
                    drop(pin);
                }
                stop.store(true, Ordering::Relaxed);
            });

            pinned.sort_by(f64::total_cmp);
            read_committed.sort_by(f64::total_cmp);
            let pinned_p50 = percentile(&pinned, 0.5);
            let rc_p50 = percentile(&read_committed, 0.5);
            MvccSample {
                writers,
                pinned_p50_seconds: pinned_p50,
                pinned_p99_seconds: percentile(&pinned, 0.99),
                pinned_qps: batch.len() as f64 / pinned_p50,
                read_committed_p50_seconds: rc_p50,
                read_committed_p99_seconds: percentile(&read_committed, 0.99),
                read_committed_qps: batch.len() as f64 / rc_p50,
                max_retained_versions: max_versions,
                max_retained_slots: max_slots,
            }
        })
        .collect()
}

/// E20 — epoch-pinned consistent reads vs read-committed: latency under
/// 0/1/4 racing writers, plus the version-ring memory the pins cost.
pub fn run_e20() -> Table {
    let samples = mvcc_serving_sweep(1 << 15, &MVCC_WRITERS, 24);
    let rows = samples
        .iter()
        .map(|s| {
            vec![
                fmt_u64(s.writers as u64),
                format!("{:.2}", s.pinned_p50_seconds * 1e3),
                format!("{:.2}", s.pinned_p99_seconds * 1e3),
                format!("{:.2}", s.read_committed_p50_seconds * 1e3),
                format!("{:.2}", s.read_committed_p99_seconds * 1e3),
                format!(
                    "{:.2}x",
                    s.pinned_p50_seconds / s.read_committed_p50_seconds
                ),
                fmt_u64(s.max_retained_versions as u64),
                fmt_u64(s.max_retained_slots as u64),
            ]
        })
        .collect();
    let worst = samples
        .iter()
        .map(|s| s.pinned_p50_seconds / s.read_committed_p50_seconds)
        .fold(0.0f64, f64::max);
    Table {
        id: "E20",
        title: "epoch-pinned MVCC cut vs read-committed reads (engine)",
        paper_claim: "a batch is one consistent instance of D, and the pin costs (almost) nothing",
        headers: [
            "writers",
            "pinned p50 ms",
            "pinned p99 ms",
            "rc p50 ms",
            "rc p99 ms",
            "pinned/rc",
            "max versions",
            "max slots",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        verdict: format!(
            "worst pinned/read-committed median ratio {worst:.2}x across {:?} writers; \
             zero-writer answers on both paths verified against the scan oracle",
            MVCC_WRITERS
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_measures_both_paths_at_every_writer_count() {
        // Tiny size: the debug-mode smoke run only checks the plumbing.
        let samples = mvcc_serving_sweep(2_000, &[0, 1], 3);
        assert_eq!(samples.len(), 2);
        for s in &samples {
            assert!(s.pinned_p50_seconds > 0.0);
            assert!(s.pinned_p99_seconds >= s.pinned_p50_seconds);
            assert!(s.read_committed_p50_seconds > 0.0);
            assert!(s.pinned_qps > 0.0 && s.read_committed_qps > 0.0);
        }
        assert_eq!(samples[0].writers, 0);
        assert_eq!(samples[1].writers, 1);
    }

    #[test]
    fn e20_runs_and_renders() {
        let t = run_e20();
        let s = t.render();
        assert!(s.contains("E20"));
        assert_eq!(t.rows.len(), MVCC_WRITERS.len());
    }
}
