//! Experiments E1–E5: the indexing case studies of Sections 4(1)–(4).

use crate::table::{fmt_u64, Table};
use pitract_core::cost::Meter;
use pitract_core::fit::{best_fit, Sample};
use pitract_index::hash::HashIndex;
use pitract_index::lca::dag::DagLca;
use pitract_index::lca::lifting::BinaryLiftingLca;
use pitract_index::lca::tree::{naive_lca_metered, EulerTourLca, RootedTree};
use pitract_index::rmq::{
    fischer_heun::FischerHeunRmq, naive::NaiveRmq, segtree::SegTreeRmq, sparse::SparseRmq,
    table::AllPairsRmq,
};
use pitract_index::sorted::{scan_contains_metered, SortedIndex};
use pitract_relation::indexed::IndexedRelation;
use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};

const SIZES: [u64; 5] = [1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18];

fn int_relation(n: u64) -> Relation {
    let schema = Schema::new(&[("a", ColType::Int)]);
    let rows = (0..n as i64).map(|i| vec![Value::Int(i)]).collect();
    Relation::from_rows(schema, rows).expect("valid rows")
}

/// E1 — Example 1: point selection, scan vs B⁺-tree vs hash.
pub fn run_e01() -> Table {
    let meter = Meter::new();
    let mut rows = Vec::new();
    let mut scan_series = Vec::new();
    let mut tree_series = Vec::new();
    for &n in &SIZES {
        let rel = int_relation(n);
        let indexed = IndexedRelation::build(&rel, &[0]).expect("column 0 exists");
        let hash: HashIndex<i64, ()> = HashIndex::build((0..n as i64).map(|i| (i, ())));

        let queries: Vec<i64> = (0..32).map(|k| (n as i64) + k - 16).collect();
        let (mut s_scan, mut s_tree, mut s_hash) = (0u64, 0u64, 0u64);
        for &qv in &queries {
            let q = SelectionQuery::point(0, qv);
            meter.take();
            let a = rel.eval_scan_metered(&q, &meter);
            s_scan += meter.take();
            let b = indexed.answer_metered(&q, &meter);
            s_tree += meter.take();
            let c = hash.contains_key_metered(&qv, &meter);
            s_hash += meter.take();
            assert!(a == b && b == c, "engines disagree on {qv}");
        }
        let per = |s: u64| s / queries.len() as u64;
        scan_series.push(Sample::new(n, per(s_scan)));
        tree_series.push(Sample::new(n, per(s_tree)));
        rows.push(vec![
            fmt_u64(n),
            fmt_u64(per(s_scan)),
            fmt_u64(per(s_tree)),
            fmt_u64(per(s_hash)),
        ]);
    }
    let scan_fit = best_fit(&scan_series);
    let tree_fit = best_fit(&tree_series);
    Table {
        id: "E1",
        title: "point selection: scan vs B+-tree vs hash (Example 1)",
        paper_claim: "naive: linear scan of D; with B+-tree: O(log |D|) per query",
        headers: ["n", "scan steps/q", "b+tree steps/q", "hash steps/q"]
            .map(String::from)
            .to_vec(),
        rows,
        verdict: format!(
            "scan fits {}, B+-tree fits {} — the paper's dichotomy holds",
            scan_fit.best().model,
            tree_fit.best().model
        ),
    }
}

/// E2 — Section 4(1): Boolean range selection after B⁺-tree preprocessing.
pub fn run_e02() -> Table {
    let meter = Meter::new();
    let mut rows = Vec::new();
    let mut idx_series = Vec::new();
    for &n in &SIZES {
        let rel = int_relation(n);
        let indexed = IndexedRelation::build(&rel, &[0]).expect("column 0 exists");
        // Empty ranges beyond the data: worst case for the scan, and the
        // Boolean index answer needs only the range start.
        let (mut s_scan, mut s_idx) = (0u64, 0u64);
        let queries = 16;
        for k in 0..queries {
            let lo = n as i64 + k;
            let q = SelectionQuery::range_closed(0, lo, lo + 100);
            meter.take();
            let a = rel.eval_scan_metered(&q, &meter);
            s_scan += meter.take();
            let b = indexed.answer_metered(&q, &meter);
            s_idx += meter.take();
            assert_eq!(a, b);
        }
        idx_series.push(Sample::new(n, s_idx / queries as u64));
        rows.push(vec![
            fmt_u64(n),
            fmt_u64(s_scan / queries as u64),
            fmt_u64(s_idx / queries as u64),
        ]);
    }
    let fit = best_fit(&idx_series);
    Table {
        id: "E2",
        title: "range selection via B+-tree (Section 4(1))",
        paper_claim: "range queries answered in O(log |D|) after B+-tree preprocessing",
        headers: ["n", "scan steps/q", "b+tree steps/q"]
            .map(String::from)
            .to_vec(),
        rows,
        verdict: format!("index probe fits {}", fit.best().model),
    }
}

/// E3 — Section 4(2): searching in a list; includes the amortization
/// crossover (how many queries until preprocessing pays off).
pub fn run_e03() -> Table {
    let meter = Meter::new();
    let mut rows = Vec::new();
    for &n in &SIZES {
        let list: Vec<u64> = (0..n).map(|i| (i * 2654435761) % (2 * n)).collect();
        let idx = SortedIndex::build(&list);
        meter.take();
        scan_contains_metered(&list, &(2 * n + 1), &meter);
        let scan = meter.take();
        idx.contains_metered(&(2 * n + 1), &meter);
        let probe = meter.take().max(1);
        let preprocess = (n as f64 * (n as f64).log2()) as u64;
        let crossover = (1..u64::MAX)
            .find(|&q| preprocess + q * probe < q * scan)
            .unwrap_or(u64::MAX);
        rows.push(vec![
            fmt_u64(n),
            fmt_u64(scan),
            fmt_u64(probe),
            fmt_u64(preprocess),
            fmt_u64(crossover),
        ]);
    }
    Table {
        id: "E3",
        title: "searching in a list: sort once, binary-search forever (Section 4(2))",
        paper_claim: "sort M in O(|M| log |M|), then answer membership in O(log |M|)",
        headers: [
            "n",
            "scan steps/q",
            "probe steps/q",
            "sort steps (once)",
            "crossover #q",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        verdict: "one-time sort amortizes within ~log n queries at every size".into(),
    }
}

/// E4 — Section 4(3): RMQ structures, preprocessing space vs query steps.
pub fn run_e04() -> Table {
    let meter = Meter::new();
    let mut rows = Vec::new();
    for &n in &[1024usize, 4096, 16384, 65536] {
        let data: Vec<i64> = (0..n).map(|i| ((i * 48271) % 99991) as i64).collect();
        let naive = NaiveRmq::build(&data);
        let sparse = SparseRmq::build(&data);
        let seg = SegTreeRmq::build(&data);
        let fh = FischerHeunRmq::build(&data);

        let ranges: Vec<(usize, usize)> = (0..32)
            .map(|k| {
                let i = (k * 131) % n;
                let j = i + (n - i - 1) / 2;
                (i, j)
            })
            .collect();
        let (mut s_naive, mut s_sparse, mut s_seg, mut s_fh) = (0u64, 0u64, 0u64, 0u64);
        for &(i, j) in &ranges {
            meter.take();
            let a = naive.query_metered(i, j, &meter);
            s_naive += meter.take();
            let b = sparse.query_metered(i, j, &meter);
            s_sparse += meter.take();
            let c = seg.query_metered(i, j, &meter);
            s_seg += meter.take();
            let d = fh.query_metered(i, j, &meter);
            s_fh += meter.take();
            assert!(a == b && b == c && c == d, "RMQ structures disagree");
        }
        let per = |s: u64| s / ranges.len() as u64;
        rows.push(vec![
            fmt_u64(n as u64),
            fmt_u64(per(s_naive)),
            fmt_u64(per(s_sparse)),
            fmt_u64(per(s_seg)),
            fmt_u64(per(s_fh)),
            fmt_u64(sparse.table_entries() as u64),
            fmt_u64(fh.distinct_signatures() as u64),
        ]);
    }
    // The quadratic table is reported once (space explodes beyond 2^12).
    let small = AllPairsRmq::build(&(0..2048).map(|i| (i * 7 % 97) as i64).collect::<Vec<_>>());
    Table {
        id: "E4",
        title: "range minimum queries: naive vs sparse vs segtree vs Fischer-Heun (4(3))",
        paper_claim: "O(n)-bit preprocessing suffices for O(1) RMQ [Fischer & Heun]",
        headers: [
            "n",
            "naive st/q",
            "sparse st/q",
            "segtree st/q",
            "F-H st/q",
            "sparse entries",
            "F-H signatures",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        verdict: format!(
            "sparse/F-H probes are flat (O(1)); segtree logarithmic; naive linear. \
             All-pairs table needs {} entries already at n=2048",
            fmt_u64(small.table_entries() as u64)
        ),
    }
}

/// E5 — Section 4(4): LCA on trees (three structures) and DAGs.
pub fn run_e05() -> Table {
    let meter = Meter::new();
    let mut rows = Vec::new();
    for &n in &[1024usize, 8192, 65536] {
        // Path-heavy random tree: deep enough to hurt the naive walk.
        let parents: Vec<Option<usize>> = (0..n)
            .map(|i| {
                if i == 0 {
                    None
                } else if i % 7 == 0 {
                    Some(i / 2)
                } else {
                    Some(i - 1)
                }
            })
            .collect();
        let tree = RootedTree::from_parents(&parents).expect("valid tree");
        let euler = EulerTourLca::build(&tree);
        let lift = BinaryLiftingLca::build(&tree);

        let pairs: Vec<(usize, usize)> = (0..32).map(|k| (n - 1 - k, (k * 97) % n)).collect();
        let (mut s_naive, mut s_lift, mut s_euler) = (0u64, 0u64, 0u64);
        for &(u, v) in &pairs {
            meter.take();
            let a = naive_lca_metered(&tree, u, v, &meter);
            s_naive += meter.take();
            let b = lift.query_metered(u, v, &meter);
            s_lift += meter.take();
            let c = euler.query_metered(u, v, &meter);
            s_euler += meter.take();
            assert!(a == b && b == c, "LCA structures disagree");
        }
        let per = |s: u64| s / pairs.len() as u64;
        rows.push(vec![
            fmt_u64(n as u64),
            fmt_u64(per(s_naive)),
            fmt_u64(per(s_lift)),
            fmt_u64(per(s_euler)),
        ]);
    }
    // The DAG all-pairs structure at a size its cubic-ish build tolerates.
    let dag_n = 300;
    let edges: Vec<(usize, usize)> = (0..dag_n)
        .flat_map(|u| {
            let a = (u * 7 + 1) % dag_n;
            let b = (u * 13 + 5) % dag_n;
            [(u.min(a), u.max(a)), (u.min(b), u.max(b))]
        })
        .filter(|&(u, v)| u != v)
        .collect();
    let dag = DagLca::build(dag_n, &edges).expect("edges ascend");
    meter.take();
    dag.query_metered(3, 250, &meter);
    let dag_probe = meter.take();
    Table {
        id: "E5",
        title: "lowest common ancestors: walk vs lifting vs Euler+RMQ; DAG table (4(4))",
        paper_claim: "preprocess, then LCA(u,v) in O(1) [Bender et al.]; DAGs via O(|G|^3) prep",
        headers: ["n", "naive st/q", "lifting st/q", "euler st/q"]
            .map(String::from)
            .to_vec(),
        rows,
        verdict: format!(
            "euler probes flat, lifting logarithmic, walk linear in depth; \
             DAG all-pairs probe = {dag_probe} step (n={dag_n})"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_experiments_run_and_render() {
        for t in [run_e01(), run_e02(), run_e03(), run_e04(), run_e05()] {
            let s = t.render();
            assert!(s.contains(t.id));
            assert!(!t.rows.is_empty());
        }
    }
}
