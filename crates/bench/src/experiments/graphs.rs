//! Experiments E6–E9: reachability, BDS, compression, views.

use crate::table::{fmt_u64, Table};
use pitract_core::cost::Meter;
use pitract_core::fit::{best_fit, Sample};
use pitract_graph::bds::{visited_before_by_search, BdsIndex};
use pitract_graph::compress::{compression_stats, CompressedReach};
use pitract_graph::generate;
use pitract_graph::grail::GrailIndex;
use pitract_graph::reach::ReachIndex;
use pitract_graph::traverse::reachable_bfs_metered;
use pitract_graph::Graph;
use pitract_relation::views::{MaterializedView, ViewSet};
use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
use std::ops::Bound;

/// E6 — Example 3: reachability — per-query BFS vs GRAIL interval labels
/// (linear space) vs all-pairs matrix (quadratic space, O(1)).
pub fn run_e06() -> Table {
    let meter = Meter::new();
    let mut rows = Vec::new();
    let mut bfs_series = Vec::new();
    for &n in &[256usize, 512, 1024, 2048] {
        // Dense-ish DAG workload so all three indexes apply (GRAIL needs
        // acyclicity) and BFS actually has to walk: sources drawn from the
        // top of the topological order, targets from the bottom.
        let g = generate::random_dag(n, 8 * n, n as u64 + 1);
        let idx = ReachIndex::build(&g);
        let grail = GrailIndex::build(&g, 3, n as u64).expect("generator emits DAGs");
        let queries: Vec<(usize, usize)> = (0..64)
            .map(|k| ((k * 31) % (n / 4), n - 1 - (k * 13) % (n / 4)))
            .collect();
        let (mut s_bfs, mut s_grail, mut s_idx) = (0u64, 0u64, 0u64);
        for &(s, t) in &queries {
            meter.take();
            let a = reachable_bfs_metered(&g, s, t, &meter);
            s_bfs += meter.take();
            let b = grail.reachable_metered(s, t, &meter);
            s_grail += meter.take();
            let c = idx.reachable_metered(s, t, &meter);
            s_idx += meter.take();
            assert!(a == b && b == c, "engines disagree on ({s},{t})");
        }
        let per_bfs = s_bfs / queries.len() as u64;
        bfs_series.push(Sample::new(n as u64, per_bfs));
        rows.push(vec![
            fmt_u64(n as u64),
            fmt_u64(g.edge_count() as u64),
            fmt_u64(per_bfs),
            fmt_u64(s_grail / queries.len() as u64),
            fmt_u64(s_idx / queries.len() as u64),
            fmt_u64(idx.reachable_pairs()),
        ]);
    }
    let fit = best_fit(&bfs_series);
    Table {
        id: "E6",
        title: "reachability: BFS vs GRAIL labels vs closure matrix (Example 3)",
        paper_claim: "precompute the reachability matrix; answer all queries in O(1)",
        headers: ["n", "edges", "bfs steps/q", "grail steps/q", "matrix steps/q", "closure bits"]
            .map(String::from)
            .to_vec(),
        rows,
        verdict: format!(
            "BFS per query grows ({}); GRAIL prunes with O(n)-space labels; matrix probes stay at 1",
            fit.best().model
        ),
    }
}

/// E7 — Figure 1: the BDS dichotomy (Υ′ vs Υ_BDS).
pub fn run_e07() -> Table {
    let meter = Meter::new();
    let mut rows = Vec::new();
    let mut search_series = Vec::new();
    for &side in &[16usize, 32, 48, 64] {
        let g = generate::grid(side);
        let n = g.node_count();
        let idx = BdsIndex::build(&g);
        let queries: Vec<(usize, usize)> =
            (0..16).map(|k| ((k * 131) % n, (k * 17 + 3) % n)).collect();
        let (mut s_search, mut s_probe, mut s_bsearch) = (0u64, 0u64, 0u64);
        for &(u, v) in &queries {
            meter.take();
            let a = visited_before_by_search(&g, u, v, &meter);
            s_search += meter.take();
            let b = idx.visited_before_metered(u, v, &meter);
            s_probe += meter.take();
            let c = idx.visited_before_binary_search(u, v, &meter);
            s_bsearch += meter.take();
            assert!(a == b && b == c, "BDS paths disagree");
        }
        let per_search = s_search / queries.len() as u64;
        search_series.push(Sample::new(n as u64, per_search));
        rows.push(vec![
            fmt_u64(n as u64),
            fmt_u64(per_search),
            fmt_u64(s_probe / queries.len() as u64),
            fmt_u64(s_bsearch / queries.len() as u64),
        ]);
    }
    let fit = best_fit(&search_series);
    Table {
        id: "E7",
        title: "breadth-depth search: preprocess-nothing vs visit-order index (Fig. 1)",
        paper_claim: "Υ′: PTIME answering per query; Υ_BDS: O(log n) (or O(1)) after one search",
        headers: ["n", "full-search st/q", "O(1) probe st/q", "binsearch st/q"]
            .map(String::from)
            .to_vec(),
        rows,
        verdict: format!(
            "per-query full search grows ({}); preprocessed probes flat/logarithmic — \
             exactly Figure 1's dichotomy",
            fit.best().model
        ),
    }
}

/// E8 — Section 4(5): query-preserving compression across graph families.
pub fn run_e08() -> Table {
    let meter = Meter::new();
    let mut rows = Vec::new();
    let n = 1200usize;
    let workloads: Vec<(&str, Graph)> = vec![
        (
            "ER dense (cyclic)",
            generate::gnp_directed(n, 4.0 / n as f64, 7),
        ),
        (
            "ER sparse (DAG-ish)",
            generate::gnp_directed(n, 1.2 / n as f64, 8),
        ),
        (
            "pref-attachment",
            generate::preferential_attachment(n, 3, 9),
        ),
        ("layered DAG", generate::layered_dag(30, 40, 2, 10)),
        ("3 big cycles", {
            let mut edges = Vec::new();
            for c in 0..3 {
                for i in 0..n / 3 {
                    edges.push((c * (n / 3) + i, c * (n / 3) + (i + 1) % (n / 3)));
                }
            }
            Graph::directed_from_edges(n, &edges)
        }),
    ];
    for (name, g) in workloads {
        let c = CompressedReach::build(&g);
        let stats = compression_stats(&g, &c);
        // Verify + measure on a probe sample.
        let full = ReachIndex::build(&g);
        let mut steps = 0u64;
        let samples = 256;
        for k in 0..samples {
            let (u, v) = ((k * 53) % g.node_count(), (k * 29 + 11) % g.node_count());
            meter.take();
            let got = c.reachable_metered(u, v, &meter);
            steps += meter.take();
            assert_eq!(got, full.reachable(u, v), "{name} ({u},{v})");
        }
        rows.push(vec![
            name.to_string(),
            format!("{}/{}", stats.nodes.0, stats.nodes.1),
            format!("{}/{}", stats.edges.0, stats.edges.1),
            format!("{:.2}x", stats.ratio),
            fmt_u64(steps / samples as u64),
        ]);
    }
    Table {
        id: "E8",
        title: "query-preserving reachability compression (Section 4(5))",
        paper_claim: "compress D to Dc with Q(D) = Q(Dc); better ratios than lossless on cyclic/skewed graphs",
        headers: ["workload", "nodes before/after", "edges before/after", "ratio", "steps/q"]
            .map(String::from)
            .to_vec(),
        rows,
        verdict: "answers preserved on every probe; cyclic and layered families compress hardest".into(),
    }
}

/// E9 — Section 4(6): query answering using views.
pub fn run_e09() -> Table {
    let meter = Meter::new();
    let mut rows = Vec::new();
    let n = 200_000i64;
    let schema = Schema::new(&[("ts", ColType::Int), ("level", ColType::Str)]);
    let base_rows: Vec<Vec<Value>> = (0..n)
        .map(|t| {
            vec![
                Value::Int(t),
                Value::str(if t % 100 == 3 { "ERROR" } else { "INFO" }),
            ]
        })
        .collect();
    let base = Relation::from_rows(schema, base_rows).expect("valid rows");

    for &(view_frac, label) in &[(100i64, "1% view"), (20, "5% view"), (4, "25% view")] {
        let hi = n / view_frac;
        let mut views = ViewSet::new();
        views.add(MaterializedView::materialize(
            "recent",
            &base,
            0,
            Bound::Included(Value::Int(0)),
            Bound::Excluded(Value::Int(hi)),
        ));
        // Miss queries (no FATAL rows exist): both engines must exhaust
        // their row set, so the comparison is |D| vs |V(D)|, not luck of
        // early witnesses.
        let queries: Vec<SelectionQuery> = (0..16)
            .map(|k| {
                let a = (k * 131) % (hi - 600).max(1);
                SelectionQuery::and(
                    SelectionQuery::range_closed(0, a, a + 500),
                    SelectionQuery::point(1, "FATAL"),
                )
            })
            .collect();
        let (mut s_base, mut s_view) = (0u64, 0u64);
        for q in &queries {
            meter.take();
            let truth = base.eval_scan_metered(q, &meter);
            s_base += meter.take();
            let got = views.answer_metered(q, &meter).expect("query is covered");
            s_view += meter.take();
            assert_eq!(got, truth);
        }
        rows.push(vec![
            label.to_string(),
            fmt_u64(base.len() as u64),
            fmt_u64(hi as u64),
            fmt_u64(s_base / queries.len() as u64),
            fmt_u64(s_view / queries.len() as u64),
        ]);
    }
    Table {
        id: "E9",
        title: "query answering using views (Section 4(6))",
        paper_claim: "answer Q from V(D) without touching big D; V(D) is much smaller than D",
        headers: [
            "view",
            "|D| rows",
            "|V(D)| rows",
            "base steps/q",
            "view steps/q",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        verdict: "speedup tracks |D|/|V(D)|: the smaller the covering view, the cheaper the query"
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_experiments_run_and_render() {
        for t in [run_e06(), run_e07(), run_e08(), run_e09()] {
            assert!(!t.rows.is_empty(), "{} has no rows", t.id);
            assert!(t.render().contains(t.id));
        }
    }
}
