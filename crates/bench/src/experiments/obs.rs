//! Observability overhead: what the recorder costs the serving path.
//!
//! The whole design premise of `pitract-obs` is that a **disabled**
//! recorder (the default every constructor uses) leaves the hot path
//! untouched — each metric touch is one `Option` branch, no clock
//! reads, no allocation. This sweep runs the E19 pooled-batch workload
//! and the E20 MVCC epoch-pinned workload twice each — once through the
//! default (disabled-recorder) constructors, once with a live recorder
//! wired through the executor and relation — verifies every answer
//! against the scan oracle, and reports the enabled/disabled ratio.
//! The disabled numbers are directly comparable to the committed
//! `BENCH_pool.json` / `BENCH_mvcc.json` trajectories; the artifact
//! lands in `BENCH_obs.json`.

use crate::table::{fmt_u64, Table};
use pitract_engine::batch::QueryBatch;
use pitract_engine::live::LiveRelation;
use pitract_engine::shard::{ShardBy, ShardedRelation};
use pitract_engine::{PoolConfig, PooledExecutor};
use pitract_obs::Recorder;
use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
use std::sync::Arc;
use std::time::Instant;

/// Queries per batch in both workloads.
pub const OBS_BATCH_QUERIES: i64 = 512;

/// Shard count both workloads run at.
pub const OBS_SHARDS: usize = 4;

/// One workload measured with the recorder disabled and enabled.
#[derive(Debug, Clone)]
pub struct ObsSample {
    /// Workload label (`e19-pooled-batch` or `e20-mvcc-pinned`).
    pub workload: &'static str,
    /// Best wall-clock seconds for one batch, default constructors
    /// (disabled recorder — the no-op hot path every caller gets).
    pub disabled_seconds: f64,
    /// Queries per second with the recorder disabled.
    pub disabled_qps: f64,
    /// Best wall-clock seconds for one batch with a live recorder wired
    /// through the executor and relation.
    pub enabled_seconds: f64,
    /// Queries per second with the recorder enabled.
    pub enabled_qps: f64,
}

impl ObsSample {
    /// Enabled-over-disabled wall-clock ratio (1.0 = free).
    pub fn overhead(&self) -> f64 {
        self.enabled_seconds / self.disabled_seconds
    }
}

fn workload(n: i64) -> (Relation, QueryBatch) {
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 64))])
        .collect();
    let rel = Relation::from_rows(schema, rows).expect("valid rows");
    let batch = QueryBatch::new((0..OBS_BATCH_QUERIES).map(|k| match k % 4 {
        0 => SelectionQuery::point(0, (k * 997) % (n + n / 8)),
        1 => {
            let lo = (k * 641) % n;
            SelectionQuery::range_closed(0, lo, lo + 200)
        }
        2 => SelectionQuery::and(
            SelectionQuery::point(1, format!("grp{}", k % 64).as_str()),
            SelectionQuery::range_closed(0, (k * 331) % n, (k * 331) % n + 2_000),
        ),
        _ => SelectionQuery::point(0, n + k),
    }));
    (rel, batch)
}

/// Best-of-`reps` wall clock for `batch` on `exec`, every repetition
/// verified against `oracle`. One warm-up batch is run first so worker
/// spin-up isn't billed to either configuration.
fn measure<R: pitract_engine::BatchServe + Send + Sync>(
    exec: &PooledExecutor<R>,
    batch: &QueryBatch,
    oracle: &[bool],
    reps: usize,
) -> f64 {
    let warm = exec.execute(batch).expect("valid batch");
    assert_eq!(warm.answers, oracle, "warm-up diverged");
    let mut best = f64::MAX;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let result = exec.execute(batch).expect("valid batch");
        best = best.min(t0.elapsed().as_secs_f64());
        assert_eq!(result.answers, oracle, "measured batch diverged");
    }
    best
}

/// Run both workloads disabled and enabled with `reps` timed
/// repetitions each (best-of). Shared by E21-style reporting and the
/// `obs` bench target.
pub fn obs_overhead_sweep(n: i64, reps: usize) -> Vec<ObsSample> {
    let (rel, batch) = workload(n);
    let oracle: Vec<bool> = batch.queries().iter().map(|q| rel.eval_scan(q)).collect();
    let config = PoolConfig {
        workers: OBS_SHARDS,
        max_inflight: OBS_SHARDS,
    };
    let qps = |seconds: f64| batch.len() as f64 / seconds;

    // E19 shape: static sharded relation behind the pooled executor.
    let sharded = Arc::new(
        ShardedRelation::build(&rel, ShardBy::Hash { col: 0 }, OBS_SHARDS, &[0, 1])
            .expect("valid sharding spec"),
    );
    let disabled = PooledExecutor::new(Arc::clone(&sharded), config.clone());
    let disabled_seconds = measure(&disabled, &batch, &oracle, reps);
    drop(disabled);
    let recorder = Recorder::new();
    let enabled = PooledExecutor::new_observed(Arc::clone(&sharded), config.clone(), &recorder);
    let enabled_seconds = measure(&enabled, &batch, &oracle, reps);
    let e19 = ObsSample {
        workload: "e19-pooled-batch",
        disabled_seconds,
        disabled_qps: qps(disabled_seconds),
        enabled_seconds,
        enabled_qps: qps(enabled_seconds),
    };
    drop(enabled);

    // E20 shape: live relation, epoch-pinned path (MVCC instruments on
    // the read side), same executor config.
    let build_live = || {
        LiveRelation::build(&rel, ShardBy::Hash { col: 0 }, OBS_SHARDS, &[0, 1])
            .expect("valid sharding spec")
    };
    let disabled = PooledExecutor::new(Arc::new(build_live()), config.clone());
    let disabled_seconds = measure(&disabled, &batch, &oracle, reps);
    drop(disabled);
    let recorder = Recorder::new();
    let mut live = build_live();
    live.set_recorder(&recorder);
    let enabled = PooledExecutor::new_observed(Arc::new(live), config, &recorder);
    let enabled_seconds = measure(&enabled, &batch, &oracle, reps);
    let e20 = ObsSample {
        workload: "e20-mvcc-pinned",
        disabled_seconds,
        disabled_qps: qps(disabled_seconds),
        enabled_seconds,
        enabled_qps: qps(enabled_seconds),
    };

    vec![e19, e20]
}

/// Observability overhead table: the recorder disabled vs enabled on
/// the E19/E20 serving workloads.
pub fn run_obs_overhead() -> Table {
    let samples = obs_overhead_sweep(1 << 15, 3);
    let rows = samples
        .iter()
        .map(|s| {
            vec![
                s.workload.to_string(),
                fmt_u64(s.disabled_qps as u64),
                fmt_u64(s.enabled_qps as u64),
                format!("{:.3}x", s.overhead()),
            ]
        })
        .collect();
    let worst = samples
        .iter()
        .max_by(|a, b| a.overhead().total_cmp(&b.overhead()))
        .expect("non-empty sweep");
    Table {
        id: "OBS",
        title: "recorder overhead on the serving path (disabled vs enabled)",
        paper_claim: "observability must not tax the Π-bounded hot path",
        headers: [
            "workload",
            "disabled q/s",
            "enabled q/s",
            "enabled/disabled",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        verdict: format!(
            "worst enabled/disabled ratio {:.3}x on {}; the disabled default is the \
             committed-baseline configuration",
            worst.overhead(),
            worst.workload
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_measures_both_workloads_in_both_modes() {
        // Tiny size: the debug-mode smoke run only checks the plumbing.
        let samples = obs_overhead_sweep(2_000, 1);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].workload, "e19-pooled-batch");
        assert_eq!(samples[1].workload, "e20-mvcc-pinned");
        for s in &samples {
            assert!(s.disabled_seconds > 0.0 && s.enabled_seconds > 0.0);
            assert!(s.overhead() > 0.0);
        }
    }

    #[test]
    fn overhead_table_renders() {
        let t = run_obs_overhead();
        assert!(t.render().contains("OBS"));
        assert_eq!(t.rows.len(), 2);
    }
}
