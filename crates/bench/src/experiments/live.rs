//! Experiment E17: live serving — batch throughput under concurrent
//! writers.
//!
//! The paper's maintenance requirement (Section 4(7)) is only meaningful
//! if Π(D) keeps answering *while* it is maintained. This experiment
//! serves the E15 mixed query batch on a [`LiveRelation`] with 0, 1 and
//! 4 concurrent writer threads churning insert/delete traffic against a
//! volatile key region, and reports batch throughput, the update rate
//! sustained alongside it, and the `|CHANGED|` boundedness verdict of
//! all that maintenance. Every batch is verified against the scan oracle
//! over the stable region before a number is reported.
//!
//! The same sweep backs the `live` bench target, which serializes the
//! writer-count → throughput curve to `BENCH_live.json` next to
//! `BENCH_engine.json` and `BENCH_store.json`.

use crate::table::{fmt_u64, Table};
use pitract_engine::batch::QueryBatch;
use pitract_engine::live::LiveRelation;
use pitract_engine::shard::ShardBy;
use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// One measured point of the live sweep.
#[derive(Debug, Clone)]
pub struct LiveSample {
    /// Concurrent writer threads during the measurement.
    pub writers: usize,
    /// Wall-clock seconds for one batch execution (best of the timed
    /// repetitions).
    pub batch_seconds: f64,
    /// Queries served per second at that writer count.
    pub queries_per_second: f64,
    /// Updates applied by the writers per second of measurement, summed
    /// over all writers (0 when `writers == 0`).
    pub updates_per_second: f64,
    /// Worst per-update `work / (|CHANGED| + 1)` ratio of the run's
    /// maintenance (0 when nothing was written).
    pub worst_maintenance_ratio: f64,
}

/// Shards used throughout the sweep.
pub const LIVE_SHARDS: usize = 8;

/// Queries per batch (matches the E15 batch size so the two sweeps are
/// comparable).
pub const LIVE_BATCH_QUERIES: i64 = 512;

fn workload(n: i64) -> (Relation, QueryBatch) {
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 64))])
        .collect();
    let rel = Relation::from_rows(schema, rows).expect("valid rows");
    // Stable-region queries only: writers churn keys >= n, so the scan
    // oracle computed on the base relation stays valid mid-churn.
    let batch = QueryBatch::new((0..LIVE_BATCH_QUERIES).map(|k| match k % 3 {
        0 => SelectionQuery::point(0, (k * 997) % n),
        1 => {
            let lo = (k * 641) % n;
            SelectionQuery::range_closed(0, lo, lo + 200)
        }
        _ => SelectionQuery::and(
            SelectionQuery::point(1, format!("grp{}", k % 64).as_str()),
            SelectionQuery::range_closed(0, (k * 331) % n, (k * 331) % n + 2_000),
        ),
    }));
    (rel, batch)
}

/// Run the live sweep on an `n`-row relation: for each writer count,
/// serve `reps` batches while that many writers churn, verifying every
/// batch against the scan oracle. Shared by E17 and the `live` bench
/// target.
pub fn live_throughput_sweep(n: i64, writer_counts: &[usize], reps: usize) -> Vec<LiveSample> {
    let (rel, batch) = workload(n);
    let oracle: Vec<bool> = batch.queries().iter().map(|q| rel.eval_scan(q)).collect();
    writer_counts
        .iter()
        .map(|&writers| {
            let live = LiveRelation::build(&rel, ShardBy::Hash { col: 0 }, LIVE_SHARDS, &[0, 1])
                .expect("valid sharding spec");
            let stop = AtomicBool::new(false);
            let t_run = Instant::now();
            let (best, applied) = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..writers)
                    .map(|w| {
                        let live = &live;
                        let stop = &stop;
                        scope.spawn(move || {
                            let mut round = 0i64;
                            let mut applied = 0u64;
                            while !stop.load(Ordering::Relaxed) {
                                let key = n + (w as i64) * 1_000_000 + round;
                                let gid = live
                                    .insert(vec![Value::Int(key), Value::str("hot")])
                                    .expect("valid row");
                                applied += 1;
                                if round % 2 == 0 {
                                    live.delete(gid).unwrap().expect("just inserted");
                                    applied += 1;
                                }
                                round += 1;
                            }
                            applied
                        })
                    })
                    .collect();
                let mut best = f64::MAX;
                for _ in 0..reps.max(1) {
                    let t0 = Instant::now();
                    let result = live.execute(&batch).expect("valid batch");
                    let dt = t0.elapsed().as_secs_f64();
                    assert_eq!(
                        result.answers, oracle,
                        "writers={writers} diverged from oracle"
                    );
                    best = best.min(dt);
                }
                stop.store(true, Ordering::Relaxed);
                let applied: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
                (best, applied)
            });
            let run_seconds = t_run.elapsed().as_secs_f64().max(1e-12);
            LiveSample {
                writers,
                batch_seconds: best,
                queries_per_second: batch.len() as f64 / best,
                updates_per_second: applied as f64 / run_seconds,
                worst_maintenance_ratio: live.boundedness_report().worst_ratio(),
            }
        })
        .collect()
}

/// E17 — live serving: batch throughput with 0/1/4 concurrent writers.
pub fn run_e17() -> Table {
    let samples = live_throughput_sweep(1 << 16, &[0, 1, 4], 3);
    let base_qps = samples[0].queries_per_second;
    let rows = samples
        .iter()
        .map(|s| {
            vec![
                fmt_u64(s.writers as u64),
                format!("{:.2}", s.batch_seconds * 1e3),
                fmt_u64(s.queries_per_second as u64),
                format!("{:.2}x", s.queries_per_second / base_qps.max(1e-12)),
                fmt_u64(s.updates_per_second as u64),
                format!("{:.1}", s.worst_maintenance_ratio),
            ]
        })
        .collect();
    let busiest = samples.last().expect("non-empty sweep");
    Table {
        id: "E17",
        title: "live serving: 512 mixed queries under 0/1/4 concurrent writers (engine)",
        paper_claim: "maintenance charges |CHANGED|, not |D| — and serving survives it live",
        headers: [
            "writers",
            "batch ms",
            "queries/s",
            "vs idle",
            "updates/s",
            "worst work/|CHANGED|",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        verdict: format!(
            "with {} writers the node still served {} q/s while absorbing {} updates/s; \
             every batch matched the scan oracle",
            busiest.writers, busiest.queries_per_second as u64, busiest.updates_per_second as u64
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_verifies_and_reports_every_writer_count() {
        // Tiny size: the debug-mode smoke run only checks the plumbing.
        let samples = live_throughput_sweep(2_000, &[0, 1], 1);
        assert_eq!(samples.len(), 2);
        assert!(samples[0].queries_per_second > 0.0);
        assert_eq!(samples[0].updates_per_second, 0.0, "no writers, no updates");
        assert!(samples[1].updates_per_second > 0.0, "the writer wrote");
    }

    #[test]
    fn e17_runs_and_renders() {
        let t = run_e17();
        let s = t.render();
        assert!(s.contains("E17"));
        assert_eq!(t.rows.len(), 3);
    }
}
