//! The twenty experiments (see DESIGN.md §4 for the full index).
//!
//! Conventions shared by all experiments:
//!
//! * **Steps** are deterministic meter counts (comparisons, probes, node
//!   visits) — reproducible run-to-run, unlike wall clock.
//! * Every preprocessed structure is **verified against its baseline** on
//!   the measured workload before costs are reported; an experiment that
//!   produced a wrong answer would panic, not print.
//! * Growth verdicts come from `pitract_core::fit::best_fit` over the
//!   measured series.

mod dynamics;
mod engine;
mod graphs;
mod indexing;
mod live;
mod mvcc;
mod obs;
mod pool;
mod repl;
mod store;
mod wal;

pub use dynamics::{run_e10, run_e11, run_e12, run_e13, run_e14};
pub use engine::{run_e15, shard_throughput_sweep, ShardSample, BATCH_QUERIES};
pub use graphs::{run_e06, run_e07, run_e08, run_e09};
pub use indexing::{run_e01, run_e02, run_e03, run_e04, run_e05};
pub use live::{live_throughput_sweep, run_e17, LiveSample, LIVE_BATCH_QUERIES, LIVE_SHARDS};
pub use mvcc::{
    mvcc_serving_sweep, run_e20, MvccSample, MVCC_BATCH_QUERIES, MVCC_SHARDS, MVCC_WRITERS,
};
pub use obs::{obs_overhead_sweep, run_obs_overhead, ObsSample, OBS_BATCH_QUERIES, OBS_SHARDS};
pub use pool::{pool_scaling_sweep, run_e19, PoolSample, POOL_BATCH_QUERIES};
pub use repl::{
    repl_catchup_sweep, repl_serving_sweep, run_e21, ReplCatchUpSample, ReplServeSample,
    REPL_BATCH_QUERIES, REPL_SHARDS,
};
pub use store::{run_e16, store_warmstart_sweep, StoreSample, STORE_SHARDS};
pub use wal::{
    run_e18, wal_recovery_sweep, wal_throughput_sweep, WalRecoverySample, WalThroughputSample,
    WAL_BATCH_OPS, WAL_SHARDS, WAL_WRITERS,
};
