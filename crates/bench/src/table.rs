//! Minimal aligned-table rendering for experiment output.

use std::fmt::Write as _;

/// One experiment's result table, with its paper anchor and verdict.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id ("E1" …).
    pub id: &'static str,
    /// Short title.
    pub title: &'static str,
    /// What the paper claims (the shape we try to reproduce).
    pub paper_claim: &'static str,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// One-line verdict comparing measurement to claim.
    pub verdict: String,
}

impl Table {
    /// Render the table as aligned monospace text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "── {}: {} ──", self.id, self.title);
        let _ = writeln!(out, "paper: {}", self.paper_claim);

        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(line, "{h:>w$}  ", w = w);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (c, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{c:>w$}  ", w = w);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        let _ = writeln!(out, "verdict: {}", self.verdict);
        out
    }
}

/// Format a u64 with thousands separators for readability.
pub fn fmt_u64(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let t = Table {
            id: "E0",
            title: "smoke",
            paper_claim: "none",
            headers: vec!["n".into(), "steps".into()],
            rows: vec![
                vec!["10".into(), "3".into()],
                vec!["100000".into(), "17".into()],
            ],
            verdict: "ok".into(),
        };
        let s = t.render();
        assert!(s.contains("E0"));
        assert!(s.contains("verdict: ok"));
        assert!(s.lines().count() >= 6);
    }

    #[test]
    fn fmt_u64_groups_thousands() {
        assert_eq!(fmt_u64(0), "0");
        assert_eq!(fmt_u64(999), "999");
        assert_eq!(fmt_u64(1000), "1,000");
        assert_eq!(fmt_u64(1234567), "1,234,567");
    }
}
