//! Shared writer for the committed `BENCH_*.json` perf artifacts.
//!
//! Every bench target used to hand-roll its JSON with `writeln!`
//! escapes; they now all build a [`Json`] document and render it
//! through the observability crate's total encoder, so the artifact
//! format is defined — and golden-tested — in exactly one place.

use pitract_obs::Json;
use std::io::Write as _;

/// Round `value` to `decimals` places. The artifacts commit the same
/// rounded figures the hand-rolled `{:.6}`/`{:.1}` writers did, not
/// full-precision float noise that churns every diff.
pub fn rounded(value: f64, decimals: u32) -> f64 {
    let scale = 10f64.powi(decimals as i32);
    (value * scale).round() / scale
}

/// Start an artifact document: `{"experiment": name}`, the first key of
/// every `BENCH_*.json`.
pub fn experiment(name: &str) -> Json {
    Json::obj().set("experiment", name)
}

/// The host's available parallelism, recorded so a perf diff across
/// machines is legible.
pub fn available_parallelism() -> u64 {
    std::thread::available_parallelism().map_or(1, |p| p.get()) as u64
}

/// Render `doc` (pretty-printed, trailing newline) to `path`, creating
/// parent directories as needed.
pub fn write_artifact(path: &str, doc: &Json) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(doc.render_pretty().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden output: the exact bytes a bench artifact serializes to.
    /// Every `BENCH_*.json` writer routes through this encoder, so this
    /// one test pins the format for all of them.
    #[test]
    fn artifact_encoding_is_pinned() {
        let doc = experiment("sample-sweep").set("rows", 65536u64).set(
            "results",
            vec![
                Json::obj()
                    .set("shards", 1u64)
                    .set("seconds", rounded(0.123456789, 6))
                    .set("qps", rounded(1234.5678, 1)),
                Json::obj()
                    .set("shards", 2u64)
                    .set("seconds", rounded(0.05, 6))
                    .set("qps", rounded(2000.0, 1)),
            ],
        );
        let golden = "{\n  \"experiment\": \"sample-sweep\",\n  \"rows\": 65536,\n  \"results\": [\n    {\n      \"shards\": 1,\n      \"seconds\": 0.123457,\n      \"qps\": 1234.6\n    },\n    {\n      \"shards\": 2,\n      \"seconds\": 0.05,\n      \"qps\": 2000.0\n    }\n  ]\n}\n";
        assert_eq!(doc.render_pretty(), golden);
        // And the committed artifact parses back losslessly.
        assert_eq!(Json::parse(golden).unwrap(), doc);
    }

    #[test]
    fn rounding_matches_the_old_format_strings() {
        assert_eq!(rounded(0.123456789, 6), 0.123457);
        assert_eq!(rounded(1234.5678, 1), 1234.6);
        assert_eq!(rounded(2.345, 2), 2.35);
    }
}
