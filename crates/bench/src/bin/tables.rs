//! Render every experiment table (the EXPERIMENTS.md generator).
//!
//! Usage:
//!   cargo run --release -p pitract-bench --bin tables          # all
//!   cargo run --release -p pitract-bench --bin tables e7 e11   # selected

use pitract_bench::all_experiments;

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).map(|s| s.to_lowercase()).collect();
    println!("Π-tractability experiment harness — one table per paper claim\n");
    for (id, run) in all_experiments() {
        if !filter.is_empty() && !filter.iter().any(|f| f == id) {
            continue;
        }
        let table = run();
        println!("{}", table.render());
    }
}
