//! # pitract-bench — the experiment harness
//!
//! One experiment per checkable claim of the paper (the index lives in
//! DESIGN.md §4 and EXPERIMENTS.md). Each `run_eXX()` function builds its
//! workload, measures with deterministic step meters (and wall clock where
//! meaningful), classifies growth curves with `pitract_core::fit`, and
//! returns a printable [`table::Table`]. The `tables` binary renders all of
//! them; `benches/experiments.rs` adds Criterion wall-clock measurements of
//! the same operations.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod artifact;
pub mod experiments;
pub mod table;

/// Named constructor type for one experiment runner.
pub type ExperimentFn = fn() -> table::Table;

/// All experiment runners in id order, for the binary and for tests.
pub fn all_experiments() -> Vec<(&'static str, ExperimentFn)> {
    use experiments::*;
    vec![
        ("e1", run_e01 as ExperimentFn),
        ("e2", run_e02),
        ("e3", run_e03),
        ("e4", run_e04),
        ("e5", run_e05),
        ("e6", run_e06),
        ("e7", run_e07),
        ("e8", run_e08),
        ("e9", run_e09),
        ("e10", run_e10),
        ("e11", run_e11),
        ("e12", run_e12),
        ("e13", run_e13),
        ("e14", run_e14),
        ("e15", run_e15),
        ("e16", run_e16),
        ("e17", run_e17),
        ("e18", run_e18),
        ("e19", run_e19),
        ("e20", run_e20),
        ("e21", run_e21),
        ("obs", run_obs_overhead),
    ]
}
