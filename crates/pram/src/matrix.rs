//! Packed Boolean matrices and O(log² n)-depth transitive closure.
//!
//! Example 3 of the paper notes that reachability (the NL-complete GAP
//! problem) lies in NC, hence is Π-tractable even *without* clever indexing.
//! The standard witness is transitive closure by repeated squaring of the
//! adjacency matrix: each Boolean product has O(log n) depth (an OR tree
//! over the middle index), and `⌈log₂ n⌉` squarings reach the closure, so
//! the whole computation has O(log² n) depth with polynomial work — NC².
//!
//! Rows are packed 64 bits to a word, so the sequential implementation is
//! also fast in practice; the *accounted* work counts word operations.

use crate::machine::Cost;

/// A square Boolean matrix with rows packed into `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// The n×n all-zero matrix.
    pub fn zero(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        BitMatrix {
            n,
            words_per_row,
            bits: vec![0; n * words_per_row],
        }
    }

    /// The n×n identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = BitMatrix::zero(n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Build from a directed edge list over `n` vertices. Out-of-range
    /// edges panic (caller input bug, not a runtime condition).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut m = BitMatrix::zero(n);
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
            m.set(u, v, true);
        }
        m
    }

    /// Dimension n.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Read entry (i, j).
    pub fn get(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.n && j < self.n);
        let word = self.bits[i * self.words_per_row + j / 64];
        (word >> (j % 64)) & 1 == 1
    }

    /// Write entry (i, j).
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        debug_assert!(i < self.n && j < self.n);
        let slot = &mut self.bits[i * self.words_per_row + j / 64];
        if value {
            *slot |= 1 << (j % 64);
        } else {
            *slot &= !(1 << (j % 64));
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.bits.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Bitwise OR with another matrix of the same dimension.
    pub fn or_assign(&mut self, other: &BitMatrix) {
        assert_eq!(self.n, other.n, "dimension mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Boolean matrix product `self · other`, with PRAM accounting:
    /// for each of the n² output entries the OR over the middle index is a
    /// reduction tree of depth ⌈log₂ n⌉; all entries evaluate in parallel.
    /// The implementation itself ORs packed rows for speed.
    pub fn multiply(&self, other: &BitMatrix) -> (BitMatrix, Cost) {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let n = self.n;
        let mut out = BitMatrix::zero(n);
        let mut word_ops = 0u64;
        for i in 0..n {
            let out_row = i * self.words_per_row;
            for k in 0..n {
                if self.get(i, k) {
                    let other_row = k * self.words_per_row;
                    for w in 0..self.words_per_row {
                        out.bits[out_row + w] |= other.bits[other_row + w];
                        word_ops += 1;
                    }
                }
            }
        }
        let depth = (n.max(2) as f64).log2().ceil() as u64 + 1;
        (
            out,
            Cost {
                work: word_ops.max(n as u64),
                depth,
            },
        )
    }

    /// Reflexive-transitive closure by repeated squaring: `R ← (A ∨ I)`,
    /// then `R ← R·R` for ⌈log₂ n⌉ rounds. Depth O(log² n), work
    /// polynomial — the NC² reachability witness.
    pub fn transitive_closure(&self) -> (BitMatrix, Cost) {
        let n = self.n;
        if n == 0 {
            return (self.clone(), Cost::ZERO);
        }
        let mut r = self.clone();
        r.or_assign(&BitMatrix::identity(n));
        let mut cost = Cost::flat((n * self.words_per_row) as u64);
        let rounds = (n.max(2) as f64).log2().ceil() as u32;
        for _ in 0..rounds {
            let (sq, c) = r.multiply(&r);
            r = sq;
            cost = cost.then(c);
        }
        (r, cost)
    }

    /// Reachability query against a closure matrix: one O(1) probe. This is
    /// the paper's "answer all reachability queries on G in O(1) time by
    /// using the matrix" (Example 3).
    pub fn reachable(&self, u: usize, v: usize) -> bool {
        self.get(u, v)
    }
}

/// Reference sequential closure (DFS from every vertex) used by tests to
/// validate the squaring closure.
pub fn closure_by_dfs(n: usize, edges: &[(usize, usize)]) -> BitMatrix {
    let mut adj = vec![Vec::new(); n];
    for &(u, v) in edges {
        adj[u].push(v);
    }
    let mut out = BitMatrix::zero(n);
    for s in 0..n {
        let mut stack = vec![s];
        let mut seen = vec![false; n];
        seen[s] = true;
        while let Some(u) = stack.pop() {
            out.set(s, u, true);
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::assert_depth_within;
    use pitract_core::cost::CostClass;

    #[test]
    fn get_set_roundtrip_across_word_boundaries() {
        let mut m = BitMatrix::zero(130);
        for &(i, j) in &[(0, 0), (0, 63), (0, 64), (0, 129), (129, 127), (64, 65)] {
            assert!(!m.get(i, j));
            m.set(i, j, true);
            assert!(m.get(i, j));
            m.set(i, j, false);
            assert!(!m.get(i, j));
        }
    }

    #[test]
    fn identity_has_exactly_n_ones() {
        let m = BitMatrix::identity(77);
        assert_eq!(m.count_ones(), 77);
        assert!(m.get(5, 5));
        assert!(!m.get(5, 6));
    }

    #[test]
    fn multiply_matches_definition_on_small_matrix() {
        // 0 -> 1 -> 2: A² should contain exactly 0 -> 2.
        let a = BitMatrix::from_edges(3, &[(0, 1), (1, 2)]);
        let (sq, _) = a.multiply(&a);
        assert!(sq.get(0, 2));
        assert_eq!(sq.count_ones(), 1);
    }

    #[test]
    fn closure_on_a_path_reaches_everything_forward() {
        let n = 10;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let a = BitMatrix::from_edges(n, &edges);
        let (tc, _) = a.transitive_closure();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(tc.reachable(i, j), i <= j, "({i},{j})");
            }
        }
    }

    #[test]
    fn closure_matches_dfs_reference_on_random_graphs() {
        // Deterministic pseudo-random edges (LCG) over several sizes.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [1usize, 2, 5, 17, 40, 64, 65] {
            let m = n * 2;
            let edges: Vec<(usize, usize)> = (0..m)
                .map(|_| ((rnd() as usize) % n, (rnd() as usize) % n))
                .collect();
            let a = BitMatrix::from_edges(n, &edges);
            let (tc, _) = a.transitive_closure();
            let expect = closure_by_dfs(n, &edges);
            assert_eq!(tc, expect, "n={n} edges={edges:?}");
        }
    }

    #[test]
    fn closure_depth_is_log_squared() {
        for n in [8usize, 64, 256, 512] {
            let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
            let a = BitMatrix::from_edges(n, &edges);
            let (_, cost) = a.transitive_closure();
            assert_depth_within(cost, CostClass::PolyLog(2), n as u64, 2.0);
        }
    }

    #[test]
    fn closure_work_is_polynomial() {
        let n = 128;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let (_, cost) = BitMatrix::from_edges(n, &edges).transitive_closure();
        assert!(cost.work_poly_bounded(n as u64, 3, 2.0));
    }

    #[test]
    fn empty_matrix_closure_is_empty() {
        let m = BitMatrix::zero(0);
        let (tc, cost) = m.transitive_closure();
        assert_eq!(tc.dim(), 0);
        assert_eq!(cost, Cost::ZERO);
    }

    #[test]
    fn cycle_closure_is_complete_within_component() {
        let a = BitMatrix::from_edges(4, &[(0, 1), (1, 2), (2, 0)]);
        let (tc, _) = a.transitive_closure();
        for i in 0..3 {
            for j in 0..3 {
                assert!(tc.reachable(i, j), "({i},{j}) inside the cycle");
            }
        }
        assert!(!tc.reachable(0, 3));
        assert!(tc.reachable(3, 3), "closure is reflexive");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_rejects_out_of_range() {
        BitMatrix::from_edges(2, &[(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn multiply_rejects_dimension_mismatch() {
        let a = BitMatrix::zero(2);
        let b = BitMatrix::zero(3);
        let _ = a.multiply(&b);
    }
}
