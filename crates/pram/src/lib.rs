//! # pitract-pram — a work/depth PRAM substrate for NC claims
//!
//! Definition 1 of the Π-tractability paper requires query answering to be
//! in **NC**: solvable in `O(log^O(1) n)` time on a PRAM with `n^O(1)`
//! processors. Claims about a PRAM cannot be checked by wall-clock
//! measurements on a laptop; they are claims about **work** (total
//! operations) and **depth** (longest chain of dependent operations), since
//! by Brent's theorem a computation with work `W` and depth `D` runs in
//! `W/p + D` time on `p` processors.
//!
//! This crate therefore implements the classic NC toolkit *with explicit
//! work/depth accounting*:
//!
//! * [`machine::Cost`] — the `(work, depth)` semiring: sequential
//!   composition adds both; parallel composition adds work and takes the
//!   max depth.
//! * [`primitives`] — `par_map`, tree `par_reduce`, Blelloch `par_scan`
//!   (prefix sums), `par_filter`: O(log n)-depth building blocks.
//! * [`sort`] — parallel merge sort (rank-based parallel merge):
//!   O(log² n) depth.
//! * [`listrank`] — pointer jumping list ranking: O(log n) rounds.
//! * [`matrix`] — packed Boolean matrices, O(log n)-depth multiply, and
//!   transitive closure by repeated squaring: O(log² n) depth — the
//!   standard witness that reachability (Example 3 of the paper, the
//!   NL-complete GAP problem) is in NC.
//!
//! Every algorithm returns its result **and** its [`machine::Cost`], and the
//! test suite asserts the polylog depth bounds mechanically — this is how
//! the workspace *checks*, rather than assumes, the "NC side" of each
//! Π-tractability scheme (experiment E14).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod connectivity;
pub mod listrank;
pub mod machine;
pub mod matrix;
pub mod primitives;
pub mod sort;

pub use machine::{brent_time, Cost};
