//! Parallel merge sort with rank-based merging — O(log² n) depth.
//!
//! Sorting is the preprocessing step of the paper's Section 4(2) ("searching
//! in a list": sort once, binary-search forever). Sequentially that costs
//! O(n log n); here we also provide the NC version, because the paper's
//! framework allows the *preprocessing itself* to be parallelized when even
//! linear sequential passes are too slow.
//!
//! The merge of two sorted runs places every element directly at its output
//! rank: an element of `A` lands at `i + |{j : B[j] < A[i]}|`, an element of
//! `B` at `j + |{i : A[i] ≤ B[j]}|` (the asymmetry makes the merge stable
//! and the destination map a bijection). Each rank is one binary search —
//! O(log n) depth with all searches in parallel — and there are O(log n)
//! merge passes, giving O(log² n) total depth and O(n log² n) work.

use crate::machine::Cost;

/// Merge two sorted slices by parallel ranking. Returns the merged vector
/// and the cost: depth O(log(|a|+|b|)), work O((|a|+|b|)·log).
pub fn par_merge<T: Ord + Clone>(a: &[T], b: &[T]) -> (Vec<T>, Cost) {
    let n = a.len() + b.len();
    if n == 0 {
        return (Vec::new(), Cost::ZERO);
    }
    let mut out: Vec<Option<T>> = vec![None; n];
    let mut max_search = 0u64;
    let mut work = 0u64;

    for (i, x) in a.iter().enumerate() {
        // Strictly-less rank in b.
        let r = b.partition_point(|y| y < x);
        let steps = (b.len().max(1) as f64).log2().ceil() as u64 + 1;
        work += steps;
        max_search = max_search.max(steps);
        out[i + r] = Some(x.clone());
    }
    for (j, y) in b.iter().enumerate() {
        // Less-or-equal rank in a.
        let r = a.partition_point(|x| x <= y);
        let steps = (a.len().max(1) as f64).log2().ceil() as u64 + 1;
        work += steps;
        max_search = max_search.max(steps);
        out[r + j] = Some(y.clone());
    }

    let cost = Cost {
        work: work + n as u64, // searches plus the parallel scatter
        depth: max_search + 1,
    };
    (
        out.into_iter()
            .map(|o| o.expect("rank map is a bijection"))
            .collect(),
        cost,
    )
}

/// Bottom-up parallel merge sort. Depth O(log² n), work O(n log² n).
pub fn par_merge_sort<T: Ord + Clone>(xs: &[T]) -> (Vec<T>, Cost) {
    let n = xs.len();
    if n <= 1 {
        return (xs.to_vec(), Cost::flat(n as u64));
    }
    let mut runs: Vec<Vec<T>> = xs.iter().map(|x| vec![x.clone()]).collect();
    let mut cost = Cost::flat(n as u64); // initial run creation

    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut pass_cost = Cost::ZERO;
        let mut iter = runs.into_iter();
        while let (Some(a), b) = (iter.next(), iter.next()) {
            match b {
                Some(b) => {
                    let (merged, c) = par_merge(&a, &b);
                    pass_cost = pass_cost.join(c); // merges run side by side
                    next.push(merged);
                }
                None => next.push(a),
            }
        }
        cost = cost.then(pass_cost); // passes run one after another
        runs = next;
    }
    (runs.pop().expect("nonempty"), cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::assert_depth_within;
    use pitract_core::cost::CostClass;

    #[test]
    fn merge_interleaves_correctly() {
        let (m, _) = par_merge(&[1, 3, 5], &[2, 4, 6]);
        assert_eq!(m, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn merge_handles_duplicates_across_runs() {
        let (m, _) = par_merge(&[1, 2, 2, 3], &[2, 2, 4]);
        assert_eq!(m, vec![1, 2, 2, 2, 2, 3, 4]);
    }

    #[test]
    fn merge_with_empty_side() {
        let (m, _) = par_merge(&[] as &[u32], &[1, 2]);
        assert_eq!(m, vec![1, 2]);
        let (m, _) = par_merge(&[1, 2], &[]);
        assert_eq!(m, vec![1, 2]);
        let (m, c) = par_merge(&[] as &[u32], &[]);
        assert!(m.is_empty());
        assert_eq!(c, Cost::ZERO);
    }

    #[test]
    fn sort_matches_std_sort() {
        let cases: Vec<Vec<i64>> = vec![
            vec![],
            vec![1],
            vec![2, 1],
            vec![5, 4, 3, 2, 1],
            vec![1, 1, 1, 1],
            vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5],
            (0..1000).rev().collect(),
            (0..999).map(|i| (i * 7919) % 101).collect(),
        ];
        for xs in cases {
            let (sorted, _) = par_merge_sort(&xs);
            let mut expect = xs.clone();
            expect.sort();
            assert_eq!(sorted, expect, "input {xs:?}");
        }
    }

    #[test]
    fn sort_depth_is_polylog() {
        for n in [16u64, 256, 1024, 8192] {
            let xs: Vec<u64> = (0..n).map(|i| (i * 2654435761) % n).collect();
            let (_, cost) = par_merge_sort(&xs);
            assert_depth_within(cost, CostClass::PolyLog(2), n, 3.0);
        }
    }

    #[test]
    fn sort_work_is_near_n_log2_n() {
        let n = 4096u64;
        let xs: Vec<u64> = (0..n).rev().collect();
        let (_, cost) = par_merge_sort(&xs);
        let budget = 4.0 * (n as f64) * (n as f64).log2().powi(2);
        assert!(
            (cost.work as f64) <= budget,
            "work {} exceeds O(n log^2 n) budget {budget}",
            cost.work
        );
    }

    #[test]
    fn sort_is_deterministic_on_equal_keys() {
        // With Ord on tuples we can watch stability indirectly: pairs with
        // equal first component keep ascending second component because the
        // full tuple is compared; the real stability property is exercised
        // by the rank asymmetry in par_merge_handles_duplicates test.
        let xs = vec![(2, 'b'), (1, 'a'), (2, 'a'), (1, 'b')];
        let (sorted, _) = par_merge_sort(&xs);
        assert_eq!(sorted, vec![(1, 'a'), (1, 'b'), (2, 'a'), (2, 'b')]);
    }
}
