//! O(log n)-depth parallel building blocks: map, tree reduce, Blelloch scan,
//! filter (pack).
//!
//! These are the primitives every NC algorithm in the workspace is built
//! from. Each returns its result together with its [`Cost`]; the accounting
//! conventions are:
//!
//! * applying a user function to one element costs what the function
//!   reports (or `Cost::UNIT` in the `_unit` variants);
//! * a parallel step over `n` elements joins the element costs (max depth);
//! * a combining tree over `n` elements adds `⌈log₂ n⌉` levels of depth.

use crate::machine::Cost;

/// Apply `f` to every element in parallel. Depth = max element depth;
/// work = sum of element works.
pub fn par_map<T, U>(xs: &[T], f: impl Fn(&T) -> (U, Cost)) -> (Vec<U>, Cost) {
    let mut out = Vec::with_capacity(xs.len());
    let mut cost = Cost::ZERO;
    for x in xs {
        let (u, c) = f(x);
        out.push(u);
        cost = cost.join(c);
    }
    (out, cost)
}

/// [`par_map`] with unit-cost element functions.
pub fn par_map_unit<T, U>(xs: &[T], f: impl Fn(&T) -> U) -> (Vec<U>, Cost) {
    let mut out = Vec::with_capacity(xs.len());
    for x in xs {
        out.push(f(x));
    }
    (out, Cost::flat(xs.len() as u64))
}

/// Tree reduction with an associative operator: depth `⌈log₂ n⌉`, work
/// `n − 1` applications (each charged one unit).
///
/// Returns `identity` for the empty slice.
pub fn par_reduce<T: Clone>(xs: &[T], identity: T, op: impl Fn(&T, &T) -> T) -> (T, Cost) {
    if xs.is_empty() {
        return (identity, Cost::ZERO);
    }
    let mut level: Vec<T> = xs.to_vec();
    let mut cost = Cost::ZERO;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let pairs = level.len() / 2;
        for i in 0..pairs {
            next.push(op(&level[2 * i], &level[2 * i + 1]));
        }
        if level.len() % 2 == 1 {
            next.push(level[level.len() - 1].clone());
        }
        // One parallel level: `pairs` unit operations side by side.
        cost = cost.then(Cost::flat(pairs as u64));
        level = next;
    }
    (level.pop().expect("nonempty"), cost)
}

/// Exclusive prefix sums (Blelloch scan) over an associative operator with
/// identity: returns `out[i] = xs[0] ⊕ … ⊕ xs[i-1]` and the total ⊕ of all
/// elements. Work O(n), depth O(log n) (up-sweep plus down-sweep).
pub fn par_scan<T: Clone>(xs: &[T], identity: T, op: impl Fn(&T, &T) -> T) -> (Vec<T>, T, Cost) {
    let n = xs.len();
    if n == 0 {
        return (Vec::new(), identity, Cost::ZERO);
    }
    // Pad to a power of two for a clean tree; padding elements are the
    // identity and charge no work.
    let size = n.next_power_of_two();
    let mut tree: Vec<T> = Vec::with_capacity(size);
    tree.extend(xs.iter().cloned());
    tree.resize(size, identity.clone());

    let mut cost = Cost::ZERO;

    // Up-sweep: tree[i] becomes the sum of its block.
    // Represent the implicit tree as levels of a working array.
    let mut levels: Vec<Vec<T>> = vec![tree];
    while levels.last().expect("nonempty").len() > 1 {
        let prev = levels.last().expect("nonempty");
        let mut next = Vec::with_capacity(prev.len() / 2);
        for i in 0..prev.len() / 2 {
            next.push(op(&prev[2 * i], &prev[2 * i + 1]));
        }
        cost = cost.then(Cost::flat((prev.len() / 2) as u64));
        levels.push(next);
    }

    // Down-sweep: propagate left-sums back down.
    // carry[i] at a level = sum of everything strictly left of block i.
    let mut carry: Vec<T> = vec![identity.clone()];
    for level_idx in (0..levels.len() - 1).rev() {
        let level = &levels[level_idx];
        let mut next_carry = Vec::with_capacity(level.len());
        for (block, c) in carry.iter().enumerate() {
            // Left child keeps the carry; right child adds the left child.
            next_carry.push(c.clone());
            if 2 * block + 1 < level.len() {
                next_carry.push(op(c, &level[2 * block]));
            }
        }
        cost = cost.then(Cost::flat(carry.len() as u64));
        carry = next_carry;
    }

    let total = op(&carry[n - 1], &levels[0][n - 1]);
    carry.truncate(n);
    (carry, total, cost)
}

/// Parallel filter (pack): keep elements satisfying `pred`, preserving
/// order. Implemented as flag → scan → scatter: work O(n), depth O(log n).
pub fn par_filter<T: Clone>(xs: &[T], pred: impl Fn(&T) -> bool) -> (Vec<T>, Cost) {
    let (flags, flag_cost) = par_map_unit(xs, |x| u64::from(pred(x)));
    let (offsets, total, scan_cost) = par_scan(&flags, 0u64, |a, b| a + b);
    let mut out: Vec<Option<T>> = vec![None; total as usize];
    for (i, x) in xs.iter().enumerate() {
        if flags[i] == 1 {
            out[offsets[i] as usize] = Some(x.clone());
        }
    }
    let scatter_cost = Cost::flat(xs.len() as u64);
    let cost = flag_cost.then(scan_cost).then(scatter_cost);
    (
        out.into_iter()
            .map(|o| o.expect("scan placed it"))
            .collect(),
        cost,
    )
}

/// Index of a maximal element under `key`, by tree reduction. Depth
/// O(log n). Returns `None` on empty input.
pub fn par_argmax<T, K: Ord + Clone>(xs: &[T], key: impl Fn(&T) -> K) -> (Option<usize>, Cost) {
    if xs.is_empty() {
        return (None, Cost::ZERO);
    }
    let pairs: Vec<(usize, K)> = xs.iter().enumerate().map(|(i, x)| (i, key(x))).collect();
    let init = pairs[0].clone();
    let (best, cost) = par_reduce(
        &pairs,
        init,
        |a, b| {
            if b.1 > a.1 {
                b.clone()
            } else {
                a.clone()
            }
        },
    );
    (Some(best.0), cost.then(Cost::flat(xs.len() as u64)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::assert_depth_within;
    use pitract_core::cost::CostClass;

    #[test]
    fn par_map_unit_has_depth_one() {
        let (ys, cost) = par_map_unit(&[1, 2, 3, 4], |x| x * 2);
        assert_eq!(ys, vec![2, 4, 6, 8]);
        assert_eq!(cost.depth, 1);
        assert_eq!(cost.work, 4);
    }

    #[test]
    fn par_reduce_sums_correctly_with_log_depth() {
        for n in [1usize, 2, 3, 7, 8, 100, 1000, 4096] {
            let xs: Vec<u64> = (0..n as u64).collect();
            let (sum, cost) = par_reduce(&xs, 0, |a, b| a + b);
            assert_eq!(sum, (n as u64) * (n as u64 - 1) / 2, "n={n}");
            assert_depth_within(cost, CostClass::Log, n as u64, 2.0);
            assert!(cost.work < 2 * n as u64 + 2);
        }
    }

    #[test]
    fn par_reduce_empty_returns_identity() {
        let (sum, cost) = par_reduce(&[] as &[u64], 42, |a, b| a + b);
        assert_eq!(sum, 42);
        assert_eq!(cost, Cost::ZERO);
    }

    #[test]
    fn par_scan_matches_sequential_prefix_sums() {
        for n in [1usize, 2, 3, 5, 8, 9, 64, 100, 1000] {
            let xs: Vec<u64> = (1..=n as u64).collect();
            let (pre, total, cost) = par_scan(&xs, 0, |a, b| a + b);
            let mut expect = Vec::with_capacity(n);
            let mut acc = 0;
            for x in &xs {
                expect.push(acc);
                acc += x;
            }
            assert_eq!(pre, expect, "n={n}");
            assert_eq!(total, acc, "n={n}");
            assert_depth_within(cost, CostClass::Log, n as u64, 4.0);
        }
    }

    #[test]
    fn par_scan_empty() {
        let (pre, total, cost) = par_scan(&[] as &[u64], 0, |a, b| a + b);
        assert!(pre.is_empty());
        assert_eq!(total, 0);
        assert_eq!(cost, Cost::ZERO);
    }

    #[test]
    fn par_scan_work_is_linear() {
        let n = 4096u64;
        let xs: Vec<u64> = (0..n).collect();
        let (_, _, cost) = par_scan(&xs, 0, |a, b| a + b);
        assert!(
            cost.work <= 4 * n,
            "scan work {} should be O(n) for n={n}",
            cost.work
        );
    }

    #[test]
    fn par_filter_keeps_order_and_log_depth() {
        let xs: Vec<u64> = (0..1000).collect();
        let (evens, cost) = par_filter(&xs, |x| x % 2 == 0);
        assert_eq!(evens.len(), 500);
        assert!(evens.windows(2).all(|w| w[0] < w[1]));
        assert!(evens.iter().all(|x| x % 2 == 0));
        assert_depth_within(cost, CostClass::Log, 1000, 6.0);
    }

    #[test]
    fn par_filter_empty_and_none_match() {
        let (none, _) = par_filter(&[1u64, 3, 5], |x| x % 2 == 0);
        assert!(none.is_empty());
        let (empty, cost) = par_filter(&[] as &[u64], |_| true);
        assert!(empty.is_empty());
        assert_eq!(cost.work, 0);
    }

    #[test]
    fn par_argmax_finds_first_max() {
        let xs = vec![3u64, 9, 2, 9, 1];
        let (idx, cost) = par_argmax(&xs, |x| *x);
        // Ties resolve to the earlier index because later elements only win
        // with a strictly greater key.
        assert_eq!(idx, Some(1));
        assert_depth_within(cost, CostClass::Log, xs.len() as u64, 4.0);
        let (none, _) = par_argmax(&[] as &[u64], |x| *x);
        assert_eq!(none, None);
    }

    #[test]
    fn scan_with_non_commutative_monoid() {
        // String concatenation: exercises associativity without
        // commutativity, which the down-sweep ordering must respect.
        let xs: Vec<String> = ["a", "b", "c", "d", "e"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (pre, total, _) = par_scan(&xs, String::new(), |a, b| format!("{a}{b}"));
        assert_eq!(pre, vec!["", "a", "ab", "abc", "abcd"]);
        assert_eq!(total, "abcde");
    }
}
