//! Parallel connected components by label propagation with pointer
//! doubling — the NC counterpart of the sequential BFS/union-find pass.
//!
//! Each node carries a component label (initially itself). A round:
//!
//! 1. **Hook:** every edge pulls both endpoint labels down to their
//!    minimum (one parallel step over the edges);
//! 2. **Compress:** every label chain is halved by pointer jumping
//!    (`label[v] ← label[label[v]]`), repeated ⌈log₂ n⌉ times.
//!
//! Because compression lets labels traverse chains whose length doubles
//! per round, O(log n) rounds suffice, giving O(log² n) depth with
//! O((n + m) log² n) work — comfortably NC, which is why undirected
//! connectivity queries (the source problem of the BDS reduction) are
//! Π-tractable even counting their *preprocessing* as parallel work.

use crate::machine::Cost;

/// Result of the parallel components computation.
#[derive(Debug, Clone)]
pub struct Components {
    /// Smallest node id in each node's component (the canonical label).
    pub label: Vec<usize>,
    /// Hook+compress rounds executed until fixpoint.
    pub rounds: u32,
}

impl Components {
    /// Are `u` and `v` in the same component? O(1).
    pub fn connected(&self, u: usize, v: usize) -> bool {
        self.label[u] == self.label[v]
    }

    /// Number of distinct components.
    pub fn count(&self) -> usize {
        let mut seen = vec![false; self.label.len()];
        let mut count = 0;
        for &l in &self.label {
            if !seen[l] {
                seen[l] = true;
                count += 1;
            }
        }
        count
    }
}

/// Compute connected components of an undirected graph given as an edge
/// list over `n` nodes. Returns the labeling and the PRAM cost.
pub fn parallel_components(n: usize, edges: &[(usize, usize)]) -> (Components, Cost) {
    for &(u, v) in edges {
        assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
    }
    let mut label: Vec<usize> = (0..n).collect();
    let mut cost = Cost::flat(n as u64);
    let compress_steps = (n.max(2) as f64).log2().ceil() as usize;

    let mut rounds = 0u32;
    loop {
        rounds += 1;
        let before = label.clone();

        // Hook: all edges in parallel (min is commutative/associative, so
        // the sequential emulation of a CRCW-min write is faithful).
        for &(u, v) in edges {
            let m = label[u].min(label[v]);
            label[u] = m;
            label[v] = m;
        }
        cost = cost.then(Cost::flat(edges.len() as u64));

        // Compress: pointer-double log n times.
        for _ in 0..compress_steps {
            let snapshot = label.clone();
            for v in 0..n {
                label[v] = snapshot[snapshot[v]];
            }
            cost = cost.then(Cost::flat(n as u64));
        }

        if label == before {
            break;
        }
        assert!(
            rounds as usize <= 2 * compress_steps + 4,
            "label propagation failed to converge in O(log n) rounds"
        );
    }

    (Components { label, rounds }, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::assert_depth_within;
    use pitract_core::cost::CostClass;

    /// Sequential reference: BFS components.
    fn reference(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            adj[u].push(v);
            adj[v].push(u);
        }
        let mut label = vec![usize::MAX; n];
        for s in 0..n {
            if label[s] != usize::MAX {
                continue;
            }
            let mut stack = vec![s];
            label[s] = s;
            while let Some(u) = stack.pop() {
                for &w in &adj[u] {
                    if label[w] == usize::MAX {
                        label[w] = s;
                        stack.push(w);
                    }
                }
            }
        }
        label
    }

    #[test]
    fn matches_bfs_on_random_graphs() {
        let mut state = 0xC01Du64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as usize
        };
        for n in [1usize, 2, 10, 64, 200] {
            for density in [0usize, 1, 3] {
                let edges: Vec<(usize, usize)> =
                    (0..n * density).map(|_| (rnd() % n, rnd() % n)).collect();
                let (comp, _) = parallel_components(n, &edges);
                let expect = reference(n, &edges);
                for u in 0..n {
                    for v in 0..n {
                        assert_eq!(
                            comp.connected(u, v),
                            expect[u] == expect[v],
                            "n={n} density={density} pair ({u},{v})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn canonical_labels_are_component_minima() {
        let edges = [(4usize, 2usize), (2, 7), (1, 5)];
        let (comp, _) = parallel_components(8, &edges);
        assert_eq!(comp.label[7], 2);
        assert_eq!(comp.label[4], 2);
        assert_eq!(comp.label[5], 1);
        assert_eq!(comp.label[0], 0);
        assert_eq!(comp.count(), 5); // {2,4,7} {1,5} {0} {3} {6}
    }

    #[test]
    fn path_graph_converges_in_log_rounds_with_polylog_depth() {
        // The worst case for plain label propagation (diameter = n); the
        // doubling compression must crush it in O(log n) rounds.
        for n in [64usize, 512, 4096] {
            let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
            let (comp, cost) = parallel_components(n, &edges);
            assert_eq!(comp.count(), 1);
            assert!(
                (comp.rounds as f64) <= (n as f64).log2() + 4.0,
                "n={n}: {} rounds",
                comp.rounds
            );
            assert_depth_within(cost, CostClass::PolyLog(2), n as u64, 3.0);
        }
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let (comp, cost) = parallel_components(0, &[]);
        assert_eq!(comp.count(), 0);
        assert!(cost.depth <= 1);
        let (comp, _) = parallel_components(5, &[]);
        assert_eq!(comp.count(), 5);
        assert!(comp.connected(3, 3));
        assert!(!comp.connected(0, 1));
    }

    #[test]
    fn self_loops_are_harmless() {
        let (comp, _) = parallel_components(3, &[(1, 1), (0, 2)]);
        assert!(comp.connected(0, 2));
        assert!(!comp.connected(0, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edges_rejected() {
        parallel_components(2, &[(0, 5)]);
    }
}
