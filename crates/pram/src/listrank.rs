//! List ranking by pointer jumping — the textbook O(log n)-round NC
//! algorithm.
//!
//! Given a linked list as a successor array, compute every node's distance
//! to the tail. Sequentially this is a trivial O(n) walk — but the walk has
//! depth O(n), i.e. it is *not* in NC. Pointer jumping halves every
//! remaining distance per round (`next[i] ← next[next[i]]`), so `⌈log₂ n⌉`
//! rounds of O(n) parallel work suffice: depth O(log n), work O(n log n).
//!
//! In this workspace list ranking is used by the BDS experiment (E7): the
//! preprocessed breadth-depth order is a list, and rank queries over it are
//! the paper's "is u visited before v" queries.

use crate::machine::Cost;

/// Error cases for [`rank_list`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListError {
    /// A successor index was out of bounds.
    BadIndex {
        /// Node holding the bad pointer.
        node: usize,
        /// The out-of-range successor value.
        target: usize,
    },
    /// The structure contains a cycle (pointer jumping cannot terminate).
    Cyclic,
}

/// Compute `rank[i]` = number of links from node `i` to the tail of its
/// list (tail has rank 0), by pointer jumping.
///
/// `next[i]` is the successor of node `i`, or `None` at a tail. Multiple
/// disjoint lists are allowed. Cycles are detected and reported.
pub fn rank_list(next: &[Option<usize>]) -> Result<(Vec<u64>, Cost), ListError> {
    let n = next.len();
    if n == 0 {
        return Ok((Vec::new(), Cost::ZERO));
    }
    for (node, &succ) in next.iter().enumerate() {
        if let Some(target) = succ {
            if target >= n {
                return Err(ListError::BadIndex { node, target });
            }
        }
    }

    let mut rank: Vec<u64> = next.iter().map(|s| u64::from(s.is_some())).collect();
    let mut jump: Vec<Option<usize>> = next.to_vec();
    let mut cost = Cost::flat(n as u64);

    // ⌈log₂ n⌉ + 1 rounds always suffice for acyclic lists.
    let rounds = (n.max(2) as f64).log2().ceil() as usize + 1;
    for _ in 0..rounds {
        let mut changed = false;
        let prev_rank = rank.clone();
        let prev_jump = jump.clone();
        for i in 0..n {
            if let Some(j) = prev_jump[i] {
                rank[i] = prev_rank[i] + prev_rank[j];
                jump[i] = prev_jump[j];
                changed = true;
            }
        }
        // One parallel round: n unit updates, constant depth.
        cost = cost.then(Cost::flat(n as u64));
        if !changed {
            break;
        }
    }

    if jump.iter().any(Option::is_some) {
        return Err(ListError::Cyclic);
    }
    Ok((rank, cost))
}

/// Reconstruct the visit order of a single list from its head, using ranks:
/// position in the list = `rank[head] - rank[i]`. O(n) work, O(1) depth
/// after ranking.
pub fn order_from_ranks(head: usize, rank: &[u64]) -> Vec<usize> {
    let len = rank[head] as usize + 1;
    let mut order = vec![usize::MAX; len];
    for (i, &r) in rank.iter().enumerate() {
        let pos = rank[head].checked_sub(r).map(|d| d as usize);
        if let Some(pos) = pos {
            if pos < len && order[pos] == usize::MAX {
                order[pos] = i;
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::assert_depth_within;
    use pitract_core::cost::CostClass;

    /// Build the successor array of a single chain visiting `perm` in order.
    fn chain(perm: &[usize]) -> Vec<Option<usize>> {
        let mut next = vec![None; perm.len()];
        for w in perm.windows(2) {
            next[w[0]] = Some(w[1]);
        }
        next
    }

    #[test]
    fn ranks_of_a_straight_chain() {
        // 0 -> 1 -> 2 -> 3
        let (rank, _) = rank_list(&chain(&[0, 1, 2, 3])).unwrap();
        assert_eq!(rank, vec![3, 2, 1, 0]);
    }

    #[test]
    fn ranks_of_a_shuffled_chain() {
        // 2 -> 0 -> 3 -> 1
        let (rank, _) = rank_list(&chain(&[2, 0, 3, 1])).unwrap();
        assert_eq!(rank[2], 3);
        assert_eq!(rank[0], 2);
        assert_eq!(rank[3], 1);
        assert_eq!(rank[1], 0);
    }

    #[test]
    fn multiple_disjoint_lists() {
        // 0 -> 1 ; 2 -> 3 -> 4
        let mut next = vec![None; 5];
        next[0] = Some(1);
        next[2] = Some(3);
        next[3] = Some(4);
        let (rank, _) = rank_list(&next).unwrap();
        assert_eq!(rank, vec![1, 0, 2, 1, 0]);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(rank_list(&[]).unwrap().0, Vec::<u64>::new());
        assert_eq!(rank_list(&[None]).unwrap().0, vec![0]);
    }

    #[test]
    fn depth_is_logarithmic() {
        for n in [16usize, 128, 1024, 8192] {
            let perm: Vec<usize> = (0..n).collect();
            let (_, cost) = rank_list(&chain(&perm)).unwrap();
            // Pointer jumping: O(log n) rounds of constant depth.
            assert_depth_within(cost, CostClass::Log, n as u64, 3.0);
            // A sequential walk would have depth n; make sure we beat it.
            assert!(cost.depth < n as u64 / 2);
        }
    }

    #[test]
    fn cycle_is_detected() {
        let mut next = vec![None; 3];
        next[0] = Some(1);
        next[1] = Some(2);
        next[2] = Some(0);
        assert_eq!(rank_list(&next).unwrap_err(), ListError::Cyclic);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        assert_eq!(rank_list(&[Some(0)]).unwrap_err(), ListError::Cyclic);
    }

    #[test]
    fn bad_index_is_reported() {
        assert_eq!(
            rank_list(&[Some(5)]).unwrap_err(),
            ListError::BadIndex { node: 0, target: 5 }
        );
    }

    #[test]
    fn order_reconstruction_matches_chain() {
        let perm = vec![4, 2, 0, 1, 3];
        let (rank, _) = rank_list(&chain(&perm)).unwrap();
        assert_eq!(order_from_ranks(4, &rank), perm);
    }
}
