//! The `(work, depth)` cost algebra and Brent's scheduling theorem.
//!
//! A PRAM computation is summarized by its **work** `W` (total elementary
//! operations across all processors) and **depth** `D` (length of the
//! longest dependency chain; equivalently, time with unboundedly many
//! processors). A computation is in NC iff `D = O(log^k n)` and
//! `W = n^O(1)` — exactly the query-answering budget of Definition 1.
//!
//! [`Cost`] forms a near-semiring: [`Cost::then`] (sequential composition)
//! adds both components; [`Cost::join`] (parallel composition) adds work and
//! maxes depth. [`brent_time`] converts `(W, D)` into running time on `p`
//! processors — `⌈W/p⌉ + D` — which the E14 experiment uses to show the
//! "seconds instead of days" arithmetic of the paper's introduction.

use pitract_core::cost::CostClass;

/// Work/depth summary of a (simulated) parallel computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// Total elementary operations performed.
    pub work: u64,
    /// Longest chain of dependent operations (parallel time).
    pub depth: u64,
}

impl Cost {
    /// The zero cost (identity for both compositions).
    pub const ZERO: Cost = Cost { work: 0, depth: 0 };

    /// One elementary operation.
    pub const UNIT: Cost = Cost { work: 1, depth: 1 };

    /// A cost with the given work performed fully in parallel (depth 1).
    pub fn flat(work: u64) -> Cost {
        Cost {
            work,
            depth: u64::from(work > 0),
        }
    }

    /// A purely sequential cost (depth = work).
    pub fn sequential(work: u64) -> Cost {
        Cost { work, depth: work }
    }

    /// Sequential composition: `self` then `other`.
    #[must_use]
    pub fn then(self, other: Cost) -> Cost {
        Cost {
            work: self.work + other.work,
            depth: self.depth + other.depth,
        }
    }

    /// Parallel composition: `self` alongside `other`.
    #[must_use]
    pub fn join(self, other: Cost) -> Cost {
        Cost {
            work: self.work + other.work,
            depth: self.depth.max(other.depth),
        }
    }

    /// Parallel composition of many branches.
    pub fn join_all(costs: impl IntoIterator<Item = Cost>) -> Cost {
        costs.into_iter().fold(Cost::ZERO, Cost::join)
    }

    /// Is the depth within `c·bound(n) + c` for the given class? This is the
    /// executable form of "the answering step is in NC" for a concrete run.
    pub fn depth_within(self, class: CostClass, n: u64, c: f64) -> bool {
        (self.depth as f64) <= c * class.bound(n) + c
    }

    /// Is the work polynomial-bounded: `work ≤ c·n^d + c`?
    pub fn work_poly_bounded(self, n: u64, d: u32, c: f64) -> bool {
        (self.work as f64) <= c * (n.max(2) as f64).powi(d as i32) + c
    }
}

/// Brent's theorem: a computation with work `W` and depth `D` can be run on
/// `p` processors in at most `⌈W/p⌉ + D` steps.
pub fn brent_time(cost: Cost, processors: u64) -> u64 {
    let p = processors.max(1);
    cost.work.div_ceil(p) + cost.depth
}

/// Panicking depth assertion with a readable message, used throughout the
/// workspace's NC-side tests.
pub fn assert_depth_within(cost: Cost, class: CostClass, n: u64, c: f64) {
    let bound = c * class.bound(n) + c;
    assert!(
        (cost.depth as f64) <= bound,
        "NC depth bound violated: depth {} on n={n}, but {class} allows {bound:.1} (work was {})",
        cost.depth,
        cost.work
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn then_adds_both_components() {
        let a = Cost { work: 5, depth: 2 };
        let b = Cost { work: 7, depth: 3 };
        assert_eq!(a.then(b), Cost { work: 12, depth: 5 });
    }

    #[test]
    fn join_adds_work_maxes_depth() {
        let a = Cost { work: 5, depth: 2 };
        let b = Cost { work: 7, depth: 3 };
        assert_eq!(a.join(b), Cost { work: 12, depth: 3 });
    }

    #[test]
    fn zero_is_identity() {
        let a = Cost { work: 4, depth: 4 };
        assert_eq!(a.then(Cost::ZERO), a);
        assert_eq!(a.join(Cost::ZERO), a);
        assert_eq!(Cost::ZERO.then(a), a);
    }

    #[test]
    fn flat_and_sequential_shapes() {
        assert_eq!(Cost::flat(10), Cost { work: 10, depth: 1 });
        assert_eq!(Cost::flat(0), Cost::ZERO);
        assert_eq!(
            Cost::sequential(10),
            Cost {
                work: 10,
                depth: 10
            }
        );
    }

    #[test]
    fn join_all_over_branches() {
        let branches = vec![
            Cost { work: 1, depth: 1 },
            Cost { work: 2, depth: 5 },
            Cost { work: 3, depth: 2 },
        ];
        assert_eq!(Cost::join_all(branches), Cost { work: 6, depth: 5 });
    }

    #[test]
    fn brent_time_interpolates_between_serial_and_parallel() {
        let c = Cost {
            work: 1000,
            depth: 10,
        };
        assert_eq!(brent_time(c, 1), 1010);
        assert_eq!(brent_time(c, 1000), 11);
        // More processors than work: depth dominates.
        assert_eq!(brent_time(c, 1_000_000), 11);
        // Guard against p = 0.
        assert_eq!(brent_time(c, 0), 1010);
    }

    #[test]
    fn depth_within_checks_nc_budget() {
        let c = Cost {
            work: 1 << 20,
            depth: 40,
        };
        assert!(c.depth_within(CostClass::PolyLog(2), 1 << 20, 1.0));
        assert!(!c.depth_within(CostClass::Constant, 1 << 20, 1.0));
    }

    #[test]
    fn work_poly_bounded_checks_processor_budget() {
        let c = Cost {
            work: 10_000,
            depth: 1,
        };
        assert!(c.work_poly_bounded(100, 2, 1.5));
        assert!(!c.work_poly_bounded(100, 1, 1.5));
    }

    #[test]
    #[should_panic(expected = "NC depth bound violated")]
    fn assert_depth_within_panics() {
        assert_depth_within(Cost::sequential(1000), CostClass::Log, 1000, 2.0);
    }
}
