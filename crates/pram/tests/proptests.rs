//! Property-based tests for the PRAM substrate: every parallel algorithm
//! agrees with its sequential reference, and depth bounds hold on
//! arbitrary inputs — the NC claims under adversarial data.

use pitract_core::cost::CostClass;
use pitract_pram::listrank::{order_from_ranks, rank_list};
use pitract_pram::machine::{brent_time, Cost};
use pitract_pram::matrix::{closure_by_dfs, BitMatrix};
use pitract_pram::primitives::{par_filter, par_map_unit, par_reduce, par_scan};
use pitract_pram::sort::{par_merge, par_merge_sort};
use proptest::prelude::*;

proptest! {
    #[test]
    fn scan_matches_sequential(xs in prop::collection::vec(0u64..1000, 0..200)) {
        let (prefix, total, cost) = par_scan(&xs, 0u64, |a, b| a + b);
        let mut acc = 0u64;
        for (i, &x) in xs.iter().enumerate() {
            prop_assert_eq!(prefix[i], acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
        if !xs.is_empty() {
            prop_assert!(cost.depth_within(CostClass::Log, xs.len() as u64, 4.0));
        }
    }

    #[test]
    fn reduce_matches_fold(xs in prop::collection::vec(any::<u32>(), 0..300)) {
        let (m, cost) = par_reduce(&xs, 0u32, |a, b| (*a).max(*b));
        prop_assert_eq!(m, xs.iter().copied().max().unwrap_or(0));
        prop_assert!(cost.depth <= 12, "depth {} for n={}", cost.depth, xs.len());
    }

    #[test]
    fn filter_matches_retain(xs in prop::collection::vec(-100i64..100, 0..200)) {
        let (kept, _) = par_filter(&xs, |x| *x > 0);
        let expect: Vec<i64> = xs.iter().copied().filter(|x| *x > 0).collect();
        prop_assert_eq!(kept, expect);
    }

    #[test]
    fn merge_matches_std(mut a in prop::collection::vec(0i64..100, 0..50),
                         mut b in prop::collection::vec(0i64..100, 0..50)) {
        a.sort_unstable();
        b.sort_unstable();
        let (merged, _) = par_merge(&a, &b);
        let mut expect = a.clone();
        expect.extend_from_slice(&b);
        expect.sort();
        prop_assert_eq!(merged, expect);
    }

    #[test]
    fn sort_matches_std(xs in prop::collection::vec(any::<i32>(), 0..300)) {
        let (sorted, cost) = par_merge_sort(&xs);
        let mut expect = xs.clone();
        expect.sort();
        prop_assert_eq!(sorted, expect);
        if xs.len() > 1 {
            prop_assert!(cost.depth_within(CostClass::PolyLog(2), xs.len() as u64, 4.0));
        }
    }

    /// List ranking on a random permutation chain equals walk distances.
    #[test]
    fn list_ranking_matches_walk(perm in prop::collection::vec(0usize..64, 1..64)) {
        // Dedup to build a valid permutation prefix.
        let mut seen = std::collections::HashSet::new();
        let perm: Vec<usize> = perm.into_iter().filter(|v| seen.insert(*v)).collect();
        prop_assume!(!perm.is_empty());
        let n = perm.len();
        // Relabel to 0..n.
        let mut relabel = std::collections::HashMap::new();
        for &v in &perm {
            let id = relabel.len();
            relabel.insert(v, id);
        }
        let chain: Vec<usize> = perm.iter().map(|v| relabel[v]).collect();
        let mut next = vec![None; n];
        for w in chain.windows(2) {
            next[w[0]] = Some(w[1]);
        }
        let (ranks, cost) = rank_list(&next).expect("valid chain");
        for (pos, &node) in chain.iter().enumerate() {
            prop_assert_eq!(ranks[node] as usize, n - 1 - pos);
        }
        prop_assert!(cost.depth_within(CostClass::Log, n as u64, 4.0));
        prop_assert_eq!(order_from_ranks(chain[0], &ranks), chain);
    }

    /// Squaring closure equals DFS closure on arbitrary digraphs, with
    /// polylog depth.
    #[test]
    fn closure_matches_dfs(n in 1usize..40,
                           edges in prop::collection::vec((0usize..40, 0usize..40), 0..100)) {
        let edges: Vec<(usize, usize)> = edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let m = BitMatrix::from_edges(n, &edges);
        let (tc, cost) = m.transitive_closure();
        prop_assert_eq!(tc, closure_by_dfs(n, &edges));
        prop_assert!(cost.depth_within(CostClass::PolyLog(2), n as u64, 4.0));
    }

    /// Brent time is monotone in processors and sandwiched between depth
    /// and work + depth.
    #[test]
    fn brent_bounds(work in 0u64..1_000_000, depth in 0u64..1000, p1 in 1u64..1024, p2 in 1u64..1024) {
        let c = Cost { work, depth };
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        prop_assert!(brent_time(c, hi) <= brent_time(c, lo));
        prop_assert!(brent_time(c, hi) >= depth);
        prop_assert!(brent_time(c, 1) == work + depth);
    }

    /// Cost algebra laws: `then` is associative, `join` is associative and
    /// commutative, ZERO is the unit of both.
    #[test]
    fn cost_algebra_laws(aw in 0u64..1000, ad in 0u64..1000,
                         bw in 0u64..1000, bd in 0u64..1000,
                         cw in 0u64..1000, cd in 0u64..1000) {
        let a = Cost { work: aw, depth: ad };
        let b = Cost { work: bw, depth: bd };
        let c = Cost { work: cw, depth: cd };
        prop_assert_eq!(a.then(b).then(c), a.then(b.then(c)));
        prop_assert_eq!(a.join(b).join(c), a.join(b.join(c)));
        prop_assert_eq!(a.join(b), b.join(a));
        prop_assert_eq!(a.then(Cost::ZERO), a);
        prop_assert_eq!(a.join(Cost::ZERO), a);
    }

    /// par_map_unit charges exactly n work at depth ≤ 1.
    #[test]
    fn map_unit_cost_shape(xs in prop::collection::vec(any::<u16>(), 0..100)) {
        let (ys, cost) = par_map_unit(&xs, |x| *x as u32 + 1);
        prop_assert_eq!(ys.len(), xs.len());
        prop_assert_eq!(cost.work, xs.len() as u64);
        prop_assert!(cost.depth <= 1);
    }
}
