//! Exporters: Prometheus text exposition and the snapshot ⇄ JSON mapping.
//!
//! Both consume the same [`MetricsSnapshot`], so a scrape endpoint, a
//! debug dump, and a bench artifact can never disagree about the numbers.
//! Series names may carry an inline label set
//! (`engine_plans_total{path="full-scan"}`); the Prometheus exporter
//! splits base name from labels so `# TYPE` metadata is emitted once per
//! family, and histogram series get the labels merged with their `le`
//! bucket label.

use crate::json::{Json, JsonError};
use crate::metrics::{bucket_upper_bound, HistogramSnapshot, MetricsSnapshot, HISTOGRAM_BUCKETS};

/// Split `name{labels}` into `(base, Some(labels))`, or `(name, None)`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match (name.find('{'), name.ends_with('}')) {
        (Some(open), true) => (&name[..open], Some(&name[open + 1..name.len() - 1])),
        _ => (name, None),
    }
}

/// Render a snapshot in the Prometheus text exposition format (v0.0.4):
/// counters and gauges as single samples, histograms as cumulative
/// `_bucket{le=…}` series (buckets emitted up to the highest occupied
/// bound, then `+Inf`) plus `_sum` and `_count`. Output is deterministic:
/// series appear in snapshot (sorted-name) order.
pub fn to_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    let mut type_line = |out: &mut String, base: &str, kind: &str| {
        if last_family != base {
            out.push_str("# TYPE ");
            out.push_str(base);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            last_family = base.to_string();
        }
    };

    for (name, value) in &snapshot.counters {
        let (base, _) = split_labels(name);
        type_line(&mut out, base, "counter");
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    for (name, value) in &snapshot.gauges {
        let (base, _) = split_labels(name);
        type_line(&mut out, base, "gauge");
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    for (name, hist) in &snapshot.histograms {
        let (base, labels) = split_labels(name);
        type_line(&mut out, base, "histogram");
        let highest = hist
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| (i + 1).min(HISTOGRAM_BUCKETS - 1));
        let mut cumulative = 0u64;
        for i in 0..highest {
            cumulative += hist.buckets.get(i).copied().unwrap_or(0);
            let bound = bucket_upper_bound(i).unwrap_or(u64::MAX);
            push_bucket_line(&mut out, base, labels, &bound.to_string(), cumulative);
        }
        push_bucket_line(&mut out, base, labels, "+Inf", hist.count);
        push_suffixed_line(&mut out, base, labels, "_sum", hist.sum);
        push_suffixed_line(&mut out, base, labels, "_count", hist.count);
    }
    out
}

fn push_bucket_line(out: &mut String, base: &str, labels: Option<&str>, le: &str, value: u64) {
    out.push_str(base);
    out.push_str("_bucket{");
    if let Some(labels) = labels {
        out.push_str(labels);
        out.push(',');
    }
    out.push_str("le=\"");
    out.push_str(le);
    out.push_str("\"} ");
    out.push_str(&value.to_string());
    out.push('\n');
}

fn push_suffixed_line(
    out: &mut String,
    base: &str,
    labels: Option<&str>,
    suffix: &str,
    value: u64,
) {
    out.push_str(base);
    out.push_str(suffix);
    if let Some(labels) = labels {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

impl HistogramSnapshot {
    /// JSON form: `{"count": …, "sum": …, "buckets": […]}` with trailing
    /// zero buckets trimmed for compactness.
    pub fn to_json(&self) -> Json {
        let trimmed = self
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1);
        Json::obj()
            .set("count", self.count)
            .set("sum", self.sum)
            .set("buckets", self.buckets[..trimmed].to_vec())
    }

    /// Inverse of [`HistogramSnapshot::to_json`]; trimmed buckets are
    /// padded back to [`HISTOGRAM_BUCKETS`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let count = v
            .get("count")
            .and_then(Json::as_u64)
            .ok_or_else(|| JsonError::schema("histogram.count"))?;
        let sum = v
            .get("sum")
            .and_then(Json::as_u64)
            .ok_or_else(|| JsonError::schema("histogram.sum"))?;
        let raw = v
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or_else(|| JsonError::schema("histogram.buckets"))?;
        if raw.len() > HISTOGRAM_BUCKETS {
            return Err(JsonError::schema("histogram.buckets length"));
        }
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        for (i, item) in raw.iter().enumerate() {
            buckets[i] = item
                .as_u64()
                .ok_or_else(|| JsonError::schema("histogram bucket value"))?;
        }
        Ok(HistogramSnapshot {
            count,
            sum,
            buckets,
        })
    }
}

impl MetricsSnapshot {
    /// JSON form: `{"counters": {…}, "gauges": {…}, "histograms": {…}}`,
    /// keys in snapshot (sorted) order. Lossless: see
    /// [`MetricsSnapshot::from_json`].
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set(
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(name, v)| (name.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            )
            .set(
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(name, v)| (name.clone(), Json::from(*v)))
                        .collect(),
                ),
            )
            .set(
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(name, h)| (name.clone(), h.to_json()))
                        .collect(),
                ),
            )
    }

    /// Inverse of [`MetricsSnapshot::to_json`]. Any shape mismatch yields
    /// a typed schema error; a valid round trip is equality-exact.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let section = |key: &'static str| -> Result<&[(String, Json)], JsonError> {
            match v.get(key) {
                Some(Json::Obj(pairs)) => Ok(pairs.as_slice()),
                _ => Err(JsonError::schema(key)),
            }
        };
        let counters = section("counters")?
            .iter()
            .map(|(name, v)| {
                v.as_u64()
                    .map(|v| (name.clone(), v))
                    .ok_or_else(|| JsonError::schema("counter value"))
            })
            .collect::<Result<_, _>>()?;
        let gauges = section("gauges")?
            .iter()
            .map(|(name, v)| {
                v.as_i64()
                    .map(|v| (name.clone(), v))
                    .ok_or_else(|| JsonError::schema("gauge value"))
            })
            .collect::<Result<_, _>>()?;
        let histograms = section("histograms")?
            .iter()
            .map(|(name, v)| HistogramSnapshot::from_json(v).map(|h| (name.clone(), h)))
            .collect::<Result<_, _>>()?;
        Ok(MetricsSnapshot {
            counters,
            gauges,
            histograms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn prometheus_emits_one_type_line_per_family() {
        let reg = MetricsRegistry::new();
        reg.counter("engine_plans_total{path=\"full-scan\"}").add(2);
        reg.counter("engine_plans_total{path=\"point-probe\"}")
            .add(5);
        let text = to_prometheus(&reg.snapshot());
        assert_eq!(text.matches("# TYPE engine_plans_total counter").count(), 1);
        assert!(text.contains("engine_plans_total{path=\"full-scan\"} 2\n"));
        assert!(text.contains("engine_plans_total{path=\"point-probe\"} 5\n"));
    }

    #[test]
    fn prometheus_histogram_is_cumulative() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_micros");
        h.record(1);
        h.record(2);
        h.record(2);
        h.record(5);
        let text = to_prometheus(&reg.snapshot());
        assert!(text.contains("lat_micros_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("lat_micros_bucket{le=\"2\"} 3\n"));
        assert!(text.contains("lat_micros_bucket{le=\"4\"} 3\n"));
        assert!(text.contains("lat_micros_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("lat_micros_sum 10\n"));
        assert!(text.contains("lat_micros_count 4\n"));
    }

    #[test]
    fn labeled_histogram_merges_le_label() {
        let reg = MetricsRegistry::new();
        reg.histogram("h{shard=\"3\"}").record(1);
        let text = to_prometheus(&reg.snapshot());
        assert!(text.contains("h_bucket{shard=\"3\",le=\"1\"} 1\n"));
        assert!(text.contains("h_sum{shard=\"3\"} 1\n"));
        assert!(text.contains("h_count{shard=\"3\"} 1\n"));
    }

    #[test]
    fn snapshot_json_roundtrip_is_lossless() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total").add(u64::MAX);
        reg.gauge("g").set(-7);
        reg.histogram("h").record(1_000_000);
        let snap = reg.snapshot();
        let rendered = snap.to_json().render_pretty();
        let back = MetricsSnapshot::from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn from_json_rejects_wrong_shapes() {
        for src in [
            "{}",
            "{\"counters\":{},\"gauges\":{}}",
            "{\"counters\":{\"c\":-1},\"gauges\":{},\"histograms\":{}}",
            "{\"counters\":{},\"gauges\":{},\"histograms\":{\"h\":{}}}",
            "{\"counters\":{},\"gauges\":{},\"histograms\":{\"h\":{\"count\":1,\"sum\":1,\"buckets\":[\"x\"]}}}",
        ] {
            let v = Json::parse(src).unwrap();
            assert!(MetricsSnapshot::from_json(&v).is_err(), "src={src}");
        }
    }
}
