//! # pitract-obs — self-measurement for a Π-bounded engine
//!
//! The paper's thesis is that query cost should scale with the *accessed or
//! changed* fraction of big data, not with `|D|`. That claim is only worth
//! anything in production if the system can account for itself live: steps
//! metered per batch, `|ΔD|` work per write, fsync latency on the WAL commit
//! path, undo-ring retention under pinned readers. This crate is the common
//! export path for all of that evidence — zero dependencies, no panics on
//! the export path, and a no-op default so the uninstrumented hot path pays
//! a single branch.
//!
//! Layers, bottom to top:
//!
//! * [`metrics`] — atomic [`Counter`]s, [`Gauge`]s, and fixed-log-bucket
//!   [`Histogram`]s behind a thread-safe [`MetricsRegistry`];
//!   [`MetricsSnapshot`] is the point-in-time view every exporter consumes.
//! * [`trace`] — [`TraceBuffer`], a bounded drop-oldest ring of typed
//!   [`TraceEvent`]s (name + `u64` fields), drainable without stopping
//!   writers.
//! * [`recorder`] — [`Recorder`], the cheap cloneable handle threaded
//!   through constructors. `Recorder::default()` is disabled: every
//!   operation short-circuits on one `Option` branch. [`Span`] / [`span!`]
//!   time a scope into a histogram and the trace ring.
//! * [`json`] — a small total JSON value model ([`Json`]): encoder with
//!   stable key order plus a typed, panic-free parser, following the store
//!   codec's discipline. Bench artifacts and metric snapshots share this
//!   encoder.
//! * [`export`] — [`to_prometheus`], the text exposition format, and the
//!   snapshot ⇄ JSON mapping.
//!
//! ## Example
//!
//! ```
//! use pitract_obs::{to_prometheus, MetricsSnapshot, Recorder};
//!
//! let rec = Recorder::new(); // enabled; `Recorder::default()` is a no-op
//! rec.counter("wal_appends_total").add(3);
//! rec.histogram("wal_fsync_micros").record(180);
//! {
//!     let _span = pitract_obs::span!(rec, "pool_batch_micros");
//!     // ... timed work ...
//! }
//! let snap = rec.snapshot();
//! let text = to_prometheus(&snap);
//! assert!(text.contains("wal_appends_total 3"));
//! // The JSON export round-trips without loss.
//! let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
//! assert_eq!(back, snap);
//! ```

#![warn(missing_docs)]
// Serving-stack panic hygiene (PR 9): no panicking escape hatches in
// non-test code. Individual invariant sites opt out locally with an
// `#[allow]` paired with a `// lint:allow(...)` justification that the
// `pitract-lint` pass checks.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(clippy::dbg_macro)]

pub mod export;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod trace;

pub use export::to_prometheus;
pub use json::{Json, JsonError, JsonErrorKind};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    HISTOGRAM_BUCKETS,
};
pub use recorder::{Recorder, Span};
pub use trace::{TraceBuffer, TraceEvent};
