//! A small total JSON value model: encoder + panic-free typed parser.
//!
//! This is the one JSON encoder in the workspace — metric snapshots,
//! bench artifacts (`BENCH_*.json`), and the example dumps all render
//! through it, so their formatting is pinned by a single golden test.
//! Discipline mirrors the store codec: the parser is **total** (arbitrary
//! input returns a typed [`JsonError`], never a panic, with a bounded
//! nesting depth so adversarial input cannot blow the stack) and the
//! encoder is deterministic (object keys keep insertion order; callers
//! that want sorted output insert sorted).
//!
//! Numbers preserve integer exactness: integral literals parse to
//! [`Json::UInt`]/[`Json::Int`] (full 64-bit range, no `f64` rounding),
//! everything else to [`Json::Float`]. Non-finite floats have no JSON
//! representation and encode as `null`.

use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 128;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integral number, exact over the full `u64` range.
    UInt(u64),
    /// Negative integral number.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion-ordered `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// Failure class.
    pub kind: JsonErrorKind,
}

/// Failure classes for [`JsonError`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonErrorKind {
    /// Input ended mid-value.
    UnexpectedEof,
    /// A byte that cannot start or continue the expected token.
    UnexpectedChar(char),
    /// Valid value followed by trailing non-whitespace.
    TrailingData,
    /// Nesting deeper than the supported maximum.
    DepthExceeded,
    /// Malformed number literal.
    InvalidNumber,
    /// Malformed `\` escape or `\u` sequence.
    InvalidEscape,
    /// Structural expectation failed (e.g. missing `:` or `,`).
    Expected(&'static str),
    /// A well-formed document whose shape didn't match the decoder's
    /// expectation (used by typed `from_json` decoders).
    Schema(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            JsonErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            JsonErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            JsonErrorKind::TrailingData => write!(f, "trailing data after value"),
            JsonErrorKind::DepthExceeded => write!(f, "nesting deeper than {MAX_DEPTH}"),
            JsonErrorKind::InvalidNumber => write!(f, "invalid number literal"),
            JsonErrorKind::InvalidEscape => write!(f, "invalid string escape"),
            JsonErrorKind::Expected(what) => write!(f, "expected {what}"),
            JsonErrorKind::Schema(what) => write!(f, "schema mismatch: {what}"),
        }?;
        write!(f, " at byte {}", self.offset)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// A schema-mismatch error (offset 0; the document itself was valid).
    pub fn schema(what: impl Into<String>) -> Self {
        JsonError {
            offset: 0,
            kind: JsonErrorKind::Schema(what.into()),
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Json::UInt(v as u64)
        } else {
            Json::Int(v)
        }
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An empty object, to be filled with [`Json::set`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append/replace `key` in an object (no-op on non-objects). Returns
    /// `self` for builder-style chaining.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        if let Json::Obj(pairs) = &mut self {
            let value = value.into();
            if let Some(pair) = pairs.iter_mut().find(|(k, _)| k == key) {
                pair.1 = value;
            } else {
                pairs.push((key.to_string(), value));
            }
        }
        self
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value widened to `u64` if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Numeric value narrowed to `i64` if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::UInt(v) => i64::try_from(*v).ok(),
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Any numeric value as `f64` (lossy for large integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Array items.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Multi-line rendering indented by two spaces per level — the format
    /// every `BENCH_*.json` artifact is written in.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // `{:?}` keeps a fractional part or exponent, so the
                    // value reparses as Float, not as an integer.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, i, lvl| {
                    items[i].write(out, indent, lvl);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, level, '{', '}', pairs.len(), |out, i, lvl| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, lvl);
                });
            }
        }
    }

    /// Parse a complete JSON document. Total: any byte sequence yields
    /// either a value or a typed [`JsonError`].
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos < p.bytes.len() {
            return Err(p.err(JsonErrorKind::TrailingData));
        }
        Ok(value)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        item(out, i, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, kind: JsonErrorKind) -> JsonError {
        JsonError {
            offset: self.pos,
            kind,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else if self.peek().is_none() {
            Err(self.err(JsonErrorKind::UnexpectedEof))
        } else {
            Err(self.err(JsonErrorKind::Expected(what)))
        }
    }

    fn literal(&mut self, word: &'static str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(JsonErrorKind::Expected(word)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(JsonErrorKind::DepthExceeded));
        }
        match self.peek() {
            None => Err(self.err(JsonErrorKind::UnexpectedEof)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(JsonErrorKind::UnexpectedChar(other as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                None => return Err(self.err(JsonErrorKind::UnexpectedEof)),
                Some(_) => return Err(self.err(JsonErrorKind::Expected("',' or ']'"))),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err(JsonErrorKind::Expected("object key")));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':', "':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                None => return Err(self.err(JsonErrorKind::UnexpectedEof)),
                Some(_) => return Err(self.err(JsonErrorKind::Expected("',' or '}'"))),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote/escape.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, and we only stopped at ASCII
                // boundaries, so this slice is valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err(JsonErrorKind::InvalidEscape))?,
                );
            }
            match self.peek() {
                None => return Err(self.err(JsonErrorKind::UnexpectedEof)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err(JsonErrorKind::InvalidEscape)),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let Some(b) = self.peek() else {
            return Err(self.err(JsonErrorKind::UnexpectedEof));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let scalar = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require a trailing \uXXXX low half.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        if self.peek() != Some(b'u') {
                            return Err(self.err(JsonErrorKind::InvalidEscape));
                        }
                        self.pos += 1;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err(JsonErrorKind::InvalidEscape));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err(JsonErrorKind::InvalidEscape));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err(JsonErrorKind::InvalidEscape));
                } else {
                    hi
                };
                out.push(
                    char::from_u32(scalar).ok_or_else(|| self.err(JsonErrorKind::InvalidEscape))?,
                );
            }
            _ => return Err(self.err(JsonErrorKind::InvalidEscape)),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err(JsonErrorKind::UnexpectedEof));
            };
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err(JsonErrorKind::InvalidEscape))?;
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let int_digits = self.digit_run();
        if int_digits == 0 {
            return Err(self.err(JsonErrorKind::InvalidNumber));
        }
        // Leading zeros are invalid JSON ("01") except for a lone zero.
        if int_digits > 1 && self.bytes[start + usize::from(negative)] == b'0' {
            return Err(self.err(JsonErrorKind::InvalidNumber));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if self.digit_run() == 0 {
                return Err(self.err(JsonErrorKind::InvalidNumber));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digit_run() == 0 {
                return Err(self.err(JsonErrorKind::InvalidNumber));
            }
        }
        // The scanned range is ASCII digits/sign/dot/exp by construction.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err(JsonErrorKind::InvalidNumber))?;
        if integral {
            if negative {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(if v >= 0 {
                        Json::UInt(v as u64)
                    } else {
                        Json::Int(v)
                    });
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            // Integral but outside 64-bit range: fall through to float.
        }
        let v = text
            .parse::<f64>()
            .map_err(|_| self.err(JsonErrorKind::InvalidNumber))?;
        if v.is_finite() {
            Ok(Json::Float(v))
        } else {
            Err(self.err(JsonErrorKind::InvalidNumber))
        }
    }

    fn digit_run(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for src in [
            "null",
            "true",
            "false",
            "0",
            "18446744073709551615",
            "-42",
            "-9223372036854775808",
            "1.5",
            "\"hi \\\"there\\\"\"",
            "[]",
            "{}",
            "[1,2,[3]]",
            "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v = Json::parse(src).unwrap();
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "src={src}");
        }
    }

    #[test]
    fn integer_exactness_preserved() {
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(
            Json::parse("-9223372036854775808").unwrap(),
            Json::Int(i64::MIN)
        );
        // 2^64 doesn't fit u64 → float fallback, still parses.
        assert!(matches!(
            Json::parse("18446744073709551616").unwrap(),
            Json::Float(_)
        ));
    }

    #[test]
    fn float_render_reparses_as_float() {
        let v = Json::Float(1.0);
        assert_eq!(v.render(), "1.0");
        assert!(matches!(Json::parse("1.0").unwrap(), Json::Float(_)));
        assert_eq!(Json::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::parse("\"a\\u00e9b \\ud83d\\ude00 \\n\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "aéb 😀 \n");
        let rendered = Json::Str("tab\tnl\nquote\"".into()).render();
        assert_eq!(
            Json::parse(&rendered).unwrap().as_str().unwrap(),
            "tab\tnl\nquote\""
        );
    }

    #[test]
    fn malformed_inputs_yield_typed_errors() {
        for src in [
            "",
            "tru",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "\"\\q\"",
            "\"\\ud800\"",
            "[1]2",
            "nulll",
            "-",
            "\u{7f}",
        ] {
            let err = Json::parse(src).unwrap_err();
            let _ = err.to_string(); // Display is total too
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(4000) + &"]".repeat(4000);
        let err = Json::parse(&deep).unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::DepthExceeded);
    }

    #[test]
    fn builder_and_accessors() {
        let v = Json::obj()
            .set("n", 3u64)
            .set("name", "e19")
            .set("xs", vec![1u64, 2, 3])
            .set("rate", 1.25);
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("name").unwrap().as_str(), Some("e19"));
        assert_eq!(v.get("xs").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("rate").unwrap().as_f64(), Some(1.25));
        let replaced = v.set("n", 4u64);
        assert_eq!(replaced.get("n").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn pretty_rendering_shape() {
        let v = Json::obj().set("a", 1u64).set("b", Json::Arr(vec![]));
        assert_eq!(v.render_pretty(), "{\n  \"a\": 1,\n  \"b\": []\n}\n");
    }
}
