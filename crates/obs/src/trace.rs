//! Bounded drop-oldest ring of typed trace events.
//!
//! A [`TraceBuffer`] holds the last `capacity` [`TraceEvent`]s. Writers
//! claim a monotonically increasing ticket with one atomic `fetch_add` and
//! write into slot `ticket % capacity`, overwriting whatever older event
//! lived there — so a full ring drops the *oldest* events, never blocks a
//! writer behind a slow reader, and never panics under overflow. Draining
//! takes every occupied slot and returns events in append (ticket) order.
//!
//! Events are deliberately flat — a `&'static str` name plus `u64` fields —
//! so recording allocates only the field vector and the ring never touches
//! the heap per push beyond that.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One trace event: a static name and a small set of numeric fields,
/// e.g. `("wal_torn_tail_truncated", [("torn_bytes", 17), ("dropped_records", 1)])`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name; static so hot-path recording never formats strings.
    pub name: &'static str,
    /// Named numeric payload fields.
    pub fields: Vec<(&'static str, u64)>,
}

impl TraceEvent {
    /// Build an event from a field slice.
    pub fn new(name: &'static str, fields: &[(&'static str, u64)]) -> Self {
        TraceEvent {
            name,
            fields: fields.to_vec(),
        }
    }

    /// Look up a field value by name.
    pub fn field(&self, name: &str) -> Option<u64> {
        self.fields
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }
}

struct Slot {
    ticket: u64,
    event: TraceEvent,
}

/// Bounded drop-oldest ring of [`TraceEvent`]s. Push is wait-free up to
/// the per-slot lock (uncontended except when a writer laps a drain);
/// drain is O(capacity) and returns events in append order.
pub struct TraceBuffer {
    slots: Box<[Mutex<Option<Slot>>]>,
    next: AtomicU64,
    dropped: AtomicU64,
}

impl std::fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("capacity", &self.slots.len())
            .field("pushed", &self.next.load(Ordering::Relaxed))
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl TraceBuffer {
    /// A ring holding at most `capacity` events (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceBuffer {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Append an event, overwriting the oldest one if the ring is full.
    pub fn push(&self, event: TraceEvent) {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let idx = (ticket % self.slots.len() as u64) as usize;
        // A slot mutex is only contended when drain and a lapping writer
        // meet; a poisoned slot (panic mid-write cannot happen here, but a
        // poisoned drain could) just swallows the event.
        if let Ok(mut slot) = self.slots[idx].lock() {
            if slot.is_some() {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            *slot = Some(Slot { ticket, event });
        }
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.lock().map(|g| g.is_some()).unwrap_or(false))
            .count()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events overwritten before anyone drained them.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Take every retained event, returned in append order. Writers may
    /// keep pushing concurrently; their events land in the next drain.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut taken: Vec<Slot> = Vec::new();
        for slot in self.slots.iter() {
            if let Ok(mut guard) = slot.lock() {
                if let Some(s) = guard.take() {
                    taken.push(s);
                }
            }
        }
        taken.sort_by_key(|s| s.ticket);
        taken.into_iter().map(|s| s.event).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, v: u64) -> TraceEvent {
        TraceEvent::new(name, &[("v", v)])
    }

    #[test]
    fn drain_returns_append_order() {
        let ring = TraceBuffer::new(8);
        for i in 0..5 {
            ring.push(ev("e", i));
        }
        let drained = ring.drain();
        let vs: Vec<u64> = drained.iter().map(|e| e.field("v").unwrap()).collect();
        assert_eq!(vs, [0, 1, 2, 3, 4]);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overflow_drops_oldest() {
        let ring = TraceBuffer::new(4);
        for i in 0..10 {
            ring.push(ev("e", i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        let vs: Vec<u64> = ring.drain().iter().map(|e| e.field("v").unwrap()).collect();
        assert_eq!(vs, [6, 7, 8, 9]);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let ring = TraceBuffer::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(ev("a", 1));
        ring.push(ev("b", 2));
        let drained = ring.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].name, "b");
    }
}
