//! The [`Recorder`] handle threaded through instrumented constructors.
//!
//! A `Recorder` is either **enabled** — owning a [`MetricsRegistry`] and a
//! [`TraceBuffer`] behind one `Arc` — or **disabled** (`Recorder::default()`),
//! in which case every operation short-circuits on a single `Option` branch
//! and no clock is read, no string formatted, nothing allocated. That is
//! the contract that lets the WAL commit path, the pool dispatch loop, and
//! the MVCC write path carry instrumentation unconditionally.
//!
//! [`Span`] (usually via [`span!`](crate::span!)) times a scope: on drop it
//! records elapsed microseconds into the histogram named after the span
//! *and* pushes a [`TraceEvent`] carrying the duration plus any caller
//! fields into the trace ring.

use std::sync::Arc;
use std::time::Instant;

use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
use crate::trace::{TraceBuffer, TraceEvent};

/// Default trace-ring capacity for [`Recorder::new`].
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

#[derive(Debug)]
struct RecorderInner {
    registry: MetricsRegistry,
    trace: TraceBuffer,
}

/// Cheap cloneable observability handle. Disabled by default; all clones
/// of an enabled recorder share one registry and one trace ring.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    inner: Option<Arc<RecorderInner>>,
}

impl Recorder {
    /// An enabled recorder with the default trace capacity.
    pub fn new() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled recorder whose trace ring holds `capacity` events.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Recorder {
            inner: Some(Arc::new(RecorderInner {
                registry: MetricsRegistry::new(),
                trace: TraceBuffer::new(capacity),
            })),
        }
    }

    /// The disabled (no-op) recorder; same as `Recorder::default()`.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Whether this recorder records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The underlying registry, if enabled.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|i| &i.registry)
    }

    /// The underlying trace ring, if enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.inner.as_deref().map(|i| &i.trace)
    }

    /// Counter handle for `name` (no-op handle when disabled). Intern the
    /// handle once in a constructor rather than calling this per event.
    pub fn counter(&self, name: &str) -> Counter {
        self.registry()
            .map_or_else(Counter::noop, |r| r.counter(name))
    }

    /// Gauge handle for `name` (no-op handle when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry().map_or_else(Gauge::noop, |r| r.gauge(name))
    }

    /// Histogram handle for `name` (no-op handle when disabled).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.registry()
            .map_or_else(Histogram::noop, |r| r.histogram(name))
    }

    /// Push a typed trace event (dropped silently when disabled).
    pub fn event(&self, name: &'static str, fields: &[(&'static str, u64)]) {
        if let Some(inner) = &self.inner {
            inner.trace.push(TraceEvent::new(name, fields));
        }
    }

    /// Start a timing span named `name`. When the span drops it records
    /// elapsed µs into histogram `name` and pushes a trace event. On a
    /// disabled recorder the span is inert and reads no clock.
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            inner: self.inner.clone(),
            name,
            fields: Vec::new(),
            start: self.inner.as_ref().map(|_| Instant::now()),
        }
    }

    /// Point-in-time copy of every registered series (empty if disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry()
            .map_or_else(MetricsSnapshot::default, |r| r.snapshot())
    }

    /// Take all retained trace events in append order (empty if disabled).
    pub fn drain_trace(&self) -> Vec<TraceEvent> {
        self.trace().map_or_else(Vec::new, |t| t.drain())
    }
}

/// RAII timing scope returned by [`Recorder::span`]. Attach extra numeric
/// fields with [`Span::field`]; they ride on the emitted trace event.
#[derive(Debug)]
pub struct Span {
    inner: Option<Arc<RecorderInner>>,
    name: &'static str,
    fields: Vec<(&'static str, u64)>,
    start: Option<Instant>,
}

impl Span {
    /// Attach a numeric field to the trace event this span will emit.
    pub fn field(&mut self, name: &'static str, value: u64) {
        if self.inner.is_some() {
            self.fields.push((name, value));
        }
    }

    /// End the span now, returning elapsed microseconds (0 when inert).
    pub fn finish(mut self) -> u64 {
        self.close()
    }

    fn close(&mut self) -> u64 {
        let (Some(inner), Some(start)) = (self.inner.take(), self.start.take()) else {
            return 0;
        };
        let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        inner.registry.histogram(self.name).record(micros);
        let mut fields = std::mem::take(&mut self.fields);
        fields.push(("micros", micros));
        inner.trace.push(TraceEvent {
            name: self.name,
            fields,
        });
        micros
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// Time a scope into a histogram and the trace ring:
///
/// ```
/// use pitract_obs::{span, Recorder};
/// let rec = Recorder::new();
/// {
///     let _s = span!(rec, "pool_batch_micros", "queries" => 8);
/// }
/// assert_eq!(rec.snapshot().histogram("pool_batch_micros").unwrap().count, 1);
/// assert_eq!(rec.drain_trace()[0].field("queries"), Some(8));
/// ```
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr) => {
        $rec.span($name)
    };
    ($rec:expr, $name:expr, $($key:literal => $val:expr),+ $(,)?) => {{
        let mut s = $rec.span($name);
        $(s.field($key, $val);)+
        s
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::default();
        assert!(!rec.is_enabled());
        rec.counter("c").inc();
        rec.event("e", &[("x", 1)]);
        let span = rec.span("s");
        assert_eq!(span.finish(), 0);
        assert!(rec.snapshot().is_empty());
        assert!(rec.drain_trace().is_empty());
    }

    #[test]
    fn span_records_histogram_and_event() {
        let rec = Recorder::new();
        {
            let mut s = rec.span("op_micros");
            s.field("items", 3);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.histogram("op_micros").unwrap().count, 1);
        let events = rec.drain_trace();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "op_micros");
        assert_eq!(events[0].field("items"), Some(3));
        assert!(events[0].field("micros").is_some());
    }

    #[test]
    fn clones_share_state() {
        let rec = Recorder::new();
        let clone = rec.clone();
        clone.counter("shared_total").add(2);
        assert_eq!(rec.snapshot().counter("shared_total"), Some(2));
    }

    #[test]
    fn finish_prevents_double_record() {
        let rec = Recorder::new();
        let s = rec.span("once");
        s.finish();
        assert_eq!(rec.snapshot().histogram("once").unwrap().count, 1);
        assert_eq!(rec.drain_trace().len(), 1);
    }
}
