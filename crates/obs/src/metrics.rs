//! Atomic metric primitives and the registry that names them.
//!
//! Three instrument kinds, all lock-free on the record path:
//!
//! * [`Counter`] — monotonically non-decreasing `u64` (events, bytes).
//! * [`Gauge`] — signed point-in-time value (queue depth, live pins).
//! * [`Histogram`] — fixed base-2 log buckets over `u64` samples
//!   (latencies in µs, batch sizes). Bucket `i` holds samples with
//!   `2^(i-1) < v ≤ 2^i`, so boundaries are *exact at powers of two* and
//!   merging two histograms is plain bucket-wise addition.
//!
//! Handles are cheap clones of an `Option<Arc<cell>>`; the `None` (no-op)
//! form costs one branch per operation, which is what lets instrumented
//! constructors default to disabled without a measurable hot-path tax.
//!
//! Series names follow Prometheus conventions and may carry a label set
//! inline: `engine_plans_total{path="full-scan"}`. The registry treats the
//! whole string as the key; the exporter splits base name from labels.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Number of histogram buckets. Bucket `i < 63` covers samples `v` with
/// `v ≤ 2^i` (and `v > 2^(i-1)` for `i > 0`); the last bucket is `+Inf`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Index of the bucket a sample lands in.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        // ceil(log2(v)) — exact at powers of two: 2^k lands in bucket k.
        let idx = 64 - (v - 1).leading_zeros() as usize;
        idx.min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i`, or `None` for the `+Inf` bucket.
pub fn bucket_upper_bound(i: usize) -> Option<u64> {
    (i < HISTOGRAM_BUCKETS - 1).then(|| 1u64 << i)
}

#[derive(Debug, Default)]
pub(crate) struct CounterCell {
    value: AtomicU64,
}

#[derive(Debug, Default)]
pub(crate) struct GaugeCell {
    value: AtomicI64,
}

#[derive(Debug)]
pub(crate) struct HistogramCell {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Monotonic event counter. Cloning shares the underlying cell; the
/// default value is a no-op handle.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Option<Arc<CounterCell>>,
}

impl Counter {
    /// A disabled handle: every operation is a single-branch no-op.
    pub const fn noop() -> Self {
        Counter { cell: None }
    }

    pub(crate) fn from_cell(cell: Arc<CounterCell>) -> Self {
        Counter { cell: Some(cell) }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raise the counter to `total` if it is currently below it (no-op
    /// otherwise). This is how externally-accumulated totals — a stats
    /// struct that kept its own atomic — publish into the registry while
    /// keeping the series monotonic.
    #[inline]
    pub fn raise_to(&self, total: u64) {
        if let Some(cell) = &self.cell {
            cell.value.fetch_max(total, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.value.load(Ordering::Relaxed))
    }
}

/// Signed point-in-time gauge. Cloning shares the cell; default is no-op.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Option<Arc<GaugeCell>>,
}

impl Gauge {
    /// A disabled handle.
    pub const fn noop() -> Self {
        Gauge { cell: None }
    }

    pub(crate) fn from_cell(cell: Arc<GaugeCell>) -> Self {
        Gauge { cell: Some(cell) }
    }

    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.cell {
            cell.value.store(v, Ordering::Relaxed);
        }
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.cell {
            cell.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> i64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.value.load(Ordering::Relaxed))
    }
}

/// Base-2 log-bucket histogram of `u64` samples. Cloning shares the cell;
/// default is no-op.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// A disabled handle.
    pub const fn noop() -> Self {
        Histogram { cell: None }
    }

    pub(crate) fn from_cell(cell: Arc<HistogramCell>) -> Self {
        Histogram { cell: Some(cell) }
    }

    /// Whether this handle records anywhere (false for the no-op form).
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum.fetch_add(v, Ordering::Relaxed);
            cell.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a duration in microseconds (saturating).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        if self.cell.is_some() {
            self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
        }
    }

    /// Point-in-time copy of the counts (empty snapshot for no-op).
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.cell {
            None => HistogramSnapshot::default(),
            Some(cell) => cell.snapshot(),
        }
    }
}

impl HistogramCell {
    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Point-in-time copy of one histogram: total count, total sum, and the
/// per-bucket (non-cumulative) counts, `buckets.len() == HISTOGRAM_BUCKETS`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Per-bucket sample counts (not cumulative; the exporter cumulates).
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Record a sample into this snapshot (used to build expected values
    /// in tests and to fold sequential baselines).
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.buckets[bucket_index(v)] += 1;
    }

    /// Bucket-wise merge. Associative and commutative: histograms recorded
    /// on different threads or shards combine into the same totals in any
    /// order.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Upper bound of the bucket holding the `q`-th sample
    /// (`q` clamped to `0.0..=1.0`): a conservative quantile estimate,
    /// exact to within one power-of-two bucket. Returns 0 when empty and
    /// `u64::MAX` when the rank lands in the open top bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Thread-safe, name-keyed home for every instrument. Lookup registers on
/// first use; handles obtained from the same name share one cell. Names
/// are kept in sorted order so exports are deterministic.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<CounterCell>>>,
    gauges: RwLock<BTreeMap<String, Arc<GaugeCell>>>,
    histograms: RwLock<BTreeMap<String, Arc<HistogramCell>>>,
}

/// Register-or-get a cell by name in one of the kind maps. A poisoned
/// lock (a panic while holding the registry write lock) degrades to a
/// no-op handle rather than propagating the panic into the caller.
fn intern<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Option<Arc<T>> {
    if let Ok(read) = map.read() {
        if let Some(cell) = read.get(name) {
            return Some(Arc::clone(cell));
        }
    }
    let mut write = map.write().ok()?;
    Some(Arc::clone(
        write.entry(name.to_string()).or_insert_with(Arc::default),
    ))
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter handle for `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        intern(&self.counters, name).map_or_else(Counter::noop, Counter::from_cell)
    }

    /// Gauge handle for `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        intern(&self.gauges, name).map_or_else(Gauge::noop, Gauge::from_cell)
    }

    /// Histogram handle for `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        intern(&self.histograms, name).map_or_else(Histogram::noop, Histogram::from_cell)
    }

    /// Point-in-time copy of every registered series, names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self.counters.read().map_or_else(
            |_| Vec::new(),
            |m| {
                m.iter()
                    .map(|(k, v)| (k.clone(), v.value.load(Ordering::Relaxed)))
                    .collect()
            },
        );
        let gauges = self.gauges.read().map_or_else(
            |_| Vec::new(),
            |m| {
                m.iter()
                    .map(|(k, v)| (k.clone(), v.value.load(Ordering::Relaxed)))
                    .collect()
            },
        );
        let histograms = self.histograms.read().map_or_else(
            |_| Vec::new(),
            |m| m.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect(),
        );
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// One consistent-enough view of every registered series: the single
/// source of truth behind the Prometheus and JSON exporters and the
/// unified replacement for ad-hoc per-subsystem stats structs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// True when no series are registered at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Value of a counter by exact series name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of a gauge by exact series name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram snapshot by exact series name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_exact_at_powers() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), Some(1));
        assert_eq!(bucket_upper_bound(10), Some(1024));
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), None);
    }

    #[test]
    fn quantile_returns_bucket_upper_bounds() {
        let mut h = HistogramSnapshot::default();
        assert_eq!(h.quantile(0.99), 0, "empty histogram");
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.record(v);
        }
        // Nine of ten samples sit in the first bucket (≤ 1); the tenth
        // lands in the bucket whose upper bound is 1024.
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(0.9), 1);
        assert_eq!(h.quantile(0.99), 1024);
        assert_eq!(h.quantile(1.0), 1024);
        let mut top = HistogramSnapshot::default();
        top.record(u64::MAX);
        assert_eq!(top.quantile(0.5), u64::MAX, "open top bucket");
    }

    #[test]
    fn registry_shares_cells_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total");
        let b = reg.counter("x_total");
        a.add(2);
        b.inc();
        assert_eq!(reg.counter("x_total").get(), 3);
        let g = reg.gauge("depth");
        g.set(5);
        g.dec();
        assert_eq!(reg.gauge("depth").get(), 4);
    }

    #[test]
    fn noop_handles_do_nothing() {
        let c = Counter::noop();
        c.inc();
        c.raise_to(10);
        assert_eq!(c.get(), 0);
        let h = Histogram::noop();
        h.record(99);
        assert_eq!(h.snapshot().count, 0);
        assert!(!h.is_enabled());
    }

    #[test]
    fn raise_to_is_monotonic() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("published_total");
        c.raise_to(10);
        c.raise_to(7);
        assert_eq!(c.get(), 10);
        c.raise_to(12);
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn snapshot_lists_sorted_names() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total").inc();
        reg.counter("a_total").inc();
        reg.histogram("h").record(3);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a_total", "b_total"]);
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        assert_eq!(snap.histogram("h").unwrap().sum, 3);
    }
}
