//! Property tests for the metrics histogram and the trace ring.
//!
//! Three contracts the rest of the stack leans on:
//!
//! 1. **Bucketing**: every sample lands in exactly one log-2 bucket whose
//!    upper bound is the smallest power of two ≥ the sample — powers of
//!    two sit exactly on their own boundary, never one bucket up.
//! 2. **Merge algebra**: snapshot merge is associative and commutative,
//!    which is what lets per-thread and per-shard histograms fold into
//!    one in any order; consequently recording concurrently from 8
//!    threads produces bit-identical totals to recording sequentially.
//! 3. **Trace ring**: pushing past capacity never panics, drops oldest
//!    first, and `drain` always returns surviving events in append order.

use pitract_obs::{HistogramSnapshot, MetricsRegistry, TraceBuffer, TraceEvent};
use proptest::prelude::*;

/// Fold values into a fresh snapshot sequentially — the oracle the
/// concurrent and merge properties compare against.
fn folded(values: &[u64]) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::default();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// One sample occupies exactly one bucket, and that bucket's upper
    /// bound is the smallest power of two ≥ the sample (so powers of two
    /// land exactly on their own boundary).
    #[test]
    fn single_sample_lands_on_the_tight_power_of_two(raw in any::<u64>(), shift in 0u32..64) {
        // Mix raw draws with exact powers of two: boundaries are the
        // interesting inputs and uniform u64 would almost never hit one.
        let v = if raw % 2 == 0 { raw >> (shift % 64) } else { 1u64 << (shift % 64) };
        let h = folded(&[v]);
        prop_assert_eq!(h.count, 1);
        prop_assert_eq!(h.sum, v);
        prop_assert_eq!(h.buckets.iter().sum::<u64>(), 1);
        let ub = h.quantile(1.0);
        prop_assert!(ub >= v.max(1), "upper bound {ub} below sample {v}");
        if ub != u64::MAX {
            prop_assert!(ub.is_power_of_two(), "bound {ub} not a power of two");
            prop_assert!(ub / 2 < v.max(1), "bound {ub} not tight for {v}");
        }
    }

    /// Merge is associative and commutative, and totals are preserved.
    /// (Samples drawn u32-sized — real series are micros and record
    /// counts — so the summed oracle can't overflow in debug builds.)
    #[test]
    fn merge_is_associative_and_commutative(
        a32 in prop::collection::vec(any::<u32>(), 0..32),
        b32 in prop::collection::vec(any::<u32>(), 0..32),
        c32 in prop::collection::vec(any::<u32>(), 0..32),
    ) {
        let widen = |v: &[u32]| v.iter().map(|&x| u64::from(x)).collect::<Vec<_>>();
        let (a, b, c) = (widen(&a32), widen(&b32), widen(&c32));
        let (ha, hb, hc) = (folded(&a), folded(&b), folded(&c));
        prop_assert_eq!(ha.merge(&hb).merge(&hc), ha.merge(&hb.merge(&hc)));
        prop_assert_eq!(ha.merge(&hb), hb.merge(&ha));
        let all = ha.merge(&hb).merge(&hc);
        prop_assert_eq!(all.count, (a.len() + b.len() + c.len()) as u64);
        prop_assert_eq!(all.sum, a.iter().chain(&b).chain(&c).sum::<u64>());
    }

    /// Eight threads hammering one registry histogram produce exactly the
    /// sequential fold — no lost updates, no torn buckets.
    #[test]
    fn concurrent_recording_equals_sequential(
        values32 in prop::collection::vec(any::<u32>(), 1..64)
    ) {
        let values: Vec<u64> = values32.iter().map(|&v| u64::from(v)).collect();
        let reg = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for chunk in values.chunks(values.len().div_ceil(8)) {
                let h = reg.histogram("lat_micros");
                scope.spawn(move || {
                    for &v in chunk {
                        h.record(v);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        prop_assert_eq!(snap.histogram("lat_micros"), Some(&folded(&values)));
    }

    /// The ring accepts any number of pushes without panicking, keeps the
    /// newest `capacity` events, counts the dropped remainder, and drains
    /// survivors in append order.
    #[test]
    fn trace_ring_drops_oldest_and_drains_in_order(
        capacity in 1usize..16,
        pushes in 0usize..64,
    ) {
        let ring = TraceBuffer::new(capacity);
        for seq in 0..pushes {
            ring.push(TraceEvent::new("tick", &[("seq", seq as u64)]));
        }
        prop_assert_eq!(ring.len(), pushes.min(capacity));
        prop_assert_eq!(ring.dropped(), pushes.saturating_sub(capacity) as u64);
        let drained = ring.drain();
        let expect_first = pushes.saturating_sub(capacity) as u64;
        for (i, event) in drained.iter().enumerate() {
            prop_assert_eq!(event.field("seq"), Some(expect_first + i as u64));
        }
        prop_assert!(ring.is_empty(), "drain leaves the ring empty");
    }
}

/// Golden Prometheus export: the exact text for a small, fixed registry —
/// pins series ordering, `# TYPE` lines, label quoting, bucket
/// cumulation, and the `+Inf` terminator.
#[test]
fn prometheus_text_is_pinned() {
    let reg = MetricsRegistry::new();
    reg.counter("wal_appends_total").add(3);
    reg.counter("engine_plans_total{path=\"point-probe\"}")
        .add(2);
    reg.gauge("pool_inflight").set(1);
    let h = reg.histogram("wal_fsync_micros");
    h.record(1);
    h.record(2);
    h.record(2);
    h.record(900);
    let text = pitract_obs::to_prometheus(&reg.snapshot());
    assert_eq!(
        text,
        "# TYPE engine_plans_total counter\n\
         engine_plans_total{path=\"point-probe\"} 2\n\
         # TYPE wal_appends_total counter\n\
         wal_appends_total 3\n\
         # TYPE pool_inflight gauge\n\
         pool_inflight 1\n\
         # TYPE wal_fsync_micros histogram\n\
         wal_fsync_micros_bucket{le=\"1\"} 1\n\
         wal_fsync_micros_bucket{le=\"2\"} 3\n\
         wal_fsync_micros_bucket{le=\"4\"} 3\n\
         wal_fsync_micros_bucket{le=\"8\"} 3\n\
         wal_fsync_micros_bucket{le=\"16\"} 3\n\
         wal_fsync_micros_bucket{le=\"32\"} 3\n\
         wal_fsync_micros_bucket{le=\"64\"} 3\n\
         wal_fsync_micros_bucket{le=\"128\"} 3\n\
         wal_fsync_micros_bucket{le=\"256\"} 3\n\
         wal_fsync_micros_bucket{le=\"512\"} 3\n\
         wal_fsync_micros_bucket{le=\"1024\"} 4\n\
         wal_fsync_micros_bucket{le=\"+Inf\"} 4\n\
         wal_fsync_micros_sum 905\n\
         wal_fsync_micros_count 4\n"
    );
}
