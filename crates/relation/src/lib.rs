//! # pitract-relation — the relational substrate of Example 1
//!
//! The paper opens with the class **Q₁ of point-selection queries**: does
//! relation `D` contain a tuple `t` with `t[A] = c`? Its running argument —
//! a linear scan of 1 PB takes 1.9 days, a B⁺-tree probe takes seconds —
//! is the E1 experiment, and this crate supplies everything it needs:
//!
//! * [`value::Value`] / [`schema::Schema`] — a small typed value and
//!   schema layer (ints and strings; enough for every workload the paper
//!   sketches, with validation at row-insert time).
//! * [`relation::Relation`] — row-store relations with scan-based
//!   (no-preprocessing) query evaluation, metered per comparison.
//! * [`query::SelectionQuery`] — the Boolean query classes of Section
//!   4(1): point selections, range selections, and conjunctions.
//! * [`indexed::IndexedRelation`] — the preprocessed form: per-column
//!   B⁺-tree secondary indexes with O(log n) Boolean answers and
//!   incremental maintenance under inserts/deletes (the paper's
//!   "incremental preprocessing" requirement).
//! * [`views::ViewSet`] — Section 4(6) "query answering using views":
//!   materialized selection views, a query-rewriting function λ(·) that
//!   routes queries to a covering view, and incremental view maintenance.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod indexed;
pub mod join;
pub mod query;
pub mod relation;
pub mod schema;
pub mod value;
pub mod views;

pub use indexed::{IndexedError, IndexedRelation};
pub use query::SelectionQuery;
pub use relation::Relation;
pub use schema::{ColType, Schema};
pub use value::Value;
