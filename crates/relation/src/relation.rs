//! Row-store relations with scan-based query evaluation.
//!
//! [`Relation::eval_scan_metered`] is the paper's "naive evaluation of Q₁
//! would require a linear scan of D" — the baseline curve of E1, metered
//! per tuple comparison so tests and benches can certify the O(n) shape.

use crate::query::SelectionQuery;
use crate::schema::Schema;
use crate::value::Value;
use pitract_core::cost::Meter;

/// A typed, row-ordered relation instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

impl Relation {
    /// Empty relation over a schema.
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Build from rows, validating each against the schema.
    pub fn from_rows(schema: Schema, rows: Vec<Vec<Value>>) -> Result<Self, String> {
        let mut r = Relation::new(schema);
        for row in rows {
            r.insert(row)?;
        }
        Ok(r)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row by position.
    pub fn row(&self, i: usize) -> &[Value] {
        &self.rows[i]
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Insert a validated tuple; returns its row id.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<usize, String> {
        self.schema.admits(&row)?;
        self.rows.push(row);
        Ok(self.rows.len() - 1)
    }

    /// Delete all tuples matching a predicate; returns how many were
    /// removed. Row ids after the first removal shift (row stores compact).
    pub fn delete_where(&mut self, pred: impl Fn(&[Value]) -> bool) -> usize {
        let before = self.rows.len();
        self.rows.retain(|r| !pred(r));
        before - self.rows.len()
    }

    /// Boolean query evaluation by full scan — the no-preprocessing
    /// baseline. O(n) per query.
    pub fn eval_scan(&self, q: &SelectionQuery) -> bool {
        self.rows.iter().any(|r| q.matches(r))
    }

    /// Metered scan: one tick per tuple inspected (early exit on the first
    /// witness, like a real executor).
    pub fn eval_scan_metered(&self, q: &SelectionQuery, meter: &Meter) -> bool {
        for r in &self.rows {
            meter.tick();
            if q.matches(r) {
                return true;
            }
        }
        false
    }

    /// Count matching tuples (used by workload statistics).
    pub fn count_where(&self, q: &SelectionQuery) -> usize {
        self.rows.iter().filter(|r| q.matches(r)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColType;

    fn sample() -> Relation {
        let schema = Schema::new(&[("id", ColType::Int), ("city", ColType::Str)]);
        Relation::from_rows(
            schema,
            vec![
                vec![Value::Int(1), Value::str("oslo")],
                vec![Value::Int(2), Value::str("rome")],
                vec![Value::Int(3), Value::str("rome")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn insert_validates() {
        let mut r = sample();
        assert!(r.insert(vec![Value::Int(4), Value::str("kyiv")]).is_ok());
        assert!(r
            .insert(vec![Value::str("bad"), Value::str("kyiv")])
            .is_err());
        assert!(r.insert(vec![Value::Int(5)]).is_err());
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn scan_answers_point_queries() {
        let r = sample();
        assert!(r.eval_scan(&SelectionQuery::point(0, 2i64)));
        assert!(!r.eval_scan(&SelectionQuery::point(0, 9i64)));
        assert!(r.eval_scan(&SelectionQuery::point(1, "rome")));
    }

    #[test]
    fn scan_answers_range_and_conjunction() {
        let r = sample();
        assert!(r.eval_scan(&SelectionQuery::range_closed(0, 2i64, 5i64)));
        assert!(!r.eval_scan(&SelectionQuery::range_closed(0, 10i64, 20i64)));
        let q = SelectionQuery::and(
            SelectionQuery::point(1, "rome"),
            SelectionQuery::range_closed(0, 3i64, 3i64),
        );
        assert!(r.eval_scan(&q));
        let q2 = SelectionQuery::and(
            SelectionQuery::point(1, "oslo"),
            SelectionQuery::point(0, 2i64),
        );
        assert!(!r.eval_scan(&q2), "no single tuple witnesses both");
    }

    #[test]
    fn metered_scan_counts_tuples_until_witness() {
        let r = sample();
        let meter = Meter::new();
        r.eval_scan_metered(&SelectionQuery::point(0, 1i64), &meter);
        assert_eq!(meter.take(), 1, "first row already matches");
        r.eval_scan_metered(&SelectionQuery::point(0, 999i64), &meter);
        assert_eq!(meter.take(), 3, "miss scans everything");
    }

    #[test]
    fn delete_where_compacts() {
        let mut r = sample();
        let removed = r.delete_where(|row| row[1] == Value::str("rome"));
        assert_eq!(removed, 2);
        assert_eq!(r.len(), 1);
        assert!(!r.eval_scan(&SelectionQuery::point(1, "rome")));
    }

    #[test]
    fn count_where_counts_all_matches() {
        let r = sample();
        assert_eq!(r.count_where(&SelectionQuery::point(1, "rome")), 2);
        assert_eq!(
            r.count_where(&SelectionQuery::range_closed(0, 1i64, 3i64)),
            3
        );
    }
}
