//! Query answering using views — Section 4(6) of the paper.
//!
//! "Given a query Q ∈ Q and a set V of view definitions, reformulate Q into
//! Q′ such that Q and Q′ are equivalent and Q′ refers only to V and its
//! extensions V(D)." The paper's tractability conditions: (a) the views are
//! materialized in PTIME (here: one scan per view), and (b) Q(D) is
//! computed from V(D) alone — which is fast exactly when V(D) ≪ D, the
//! effect E9 measures.
//!
//! Views here are single-column range selections (the shape that covers
//! the paper's Q₁ and range classes); covering is decided syntactically by
//! bound containment — the rewriting function λ of the remark below
//! Definition 1 is [`ViewSet::rewrite`], which returns both the chosen
//! view and the (unchanged) residual query to run against it.

use crate::query::SelectionQuery;
use crate::relation::Relation;
use crate::value::Value;
use pitract_core::cost::Meter;
use std::ops::Bound;

/// A materialized single-column range view: `V = σ_{lo ≤ col ≤ hi}(D)`.
#[derive(Debug, Clone)]
pub struct MaterializedView {
    name: String,
    col: usize,
    lo: Bound<Value>,
    hi: Bound<Value>,
    /// The extension V(D), kept as plain rows (scans over it are already
    /// |V(D)|-bounded; callers wanting polylog probes can index the view).
    rows: Vec<Vec<Value>>,
}

impl MaterializedView {
    /// Define and materialize a view over a base relation (one PTIME scan).
    pub fn materialize(
        name: impl Into<String>,
        base: &Relation,
        col: usize,
        lo: Bound<Value>,
        hi: Bound<Value>,
    ) -> Self {
        let def = SelectionQuery::Range {
            col,
            lo: lo.clone(),
            hi: hi.clone(),
        };
        let rows = base
            .rows()
            .iter()
            .filter(|r| def.matches(r))
            .cloned()
            .collect();
        MaterializedView {
            name: name.into(),
            col,
            lo,
            hi,
            rows,
        }
    }

    /// View name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of materialized tuples |V(D)|.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the extension empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The view definition as a query.
    pub fn definition(&self) -> SelectionQuery {
        SelectionQuery::Range {
            col: self.col,
            lo: self.lo.clone(),
            hi: self.hi.clone(),
        }
    }

    /// Does this view's region contain the query's region (same column)?
    /// A contained query can be answered from the extension alone.
    pub fn covers(&self, q: &SelectionQuery) -> bool {
        match q {
            SelectionQuery::Point { col, value } => {
                *col == self.col && self.definition().matches_value(value)
            }
            SelectionQuery::Range { col, lo, hi } => {
                *col == self.col
                    && bound_ge(lo, &self.lo) // query lower bound at/above view's
                    && bound_le(hi, &self.hi) // query upper bound at/below view's
            }
            // Conjunctions are covered when either conjunct is: the view
            // retains whole tuples, so the residual conjunct can still be
            // verified on the materialized rows.
            SelectionQuery::And(a, b) => self.covers(a) || self.covers(b),
        }
    }

    /// Evaluate a covered query against the extension, metered per tuple.
    pub fn answer_metered(&self, q: &SelectionQuery, meter: &Meter) -> bool {
        for row in &self.rows {
            meter.tick();
            if q.matches(row) {
                return true;
            }
        }
        false
    }

    /// Incremental view maintenance: apply a base-relation insert.
    pub fn on_insert(&mut self, row: &[Value]) {
        if self.definition().matches(row) {
            self.rows.push(row.to_vec());
        }
    }

    /// Incremental view maintenance: apply a base-relation delete.
    pub fn on_delete(&mut self, row: &[Value]) {
        if let Some(pos) = self.rows.iter().position(|r| r[..] == *row) {
            self.rows.swap_remove(pos);
        }
    }
}

impl SelectionQuery {
    /// Does a single value fall inside this (single-column) query's region?
    /// Only meaningful for `Point`/`Range`; conjunctions recurse.
    pub(crate) fn matches_value(&self, v: &Value) -> bool {
        match self {
            SelectionQuery::Point { value, .. } => v == value,
            SelectionQuery::Range { lo, hi, .. } => {
                (match lo {
                    Bound::Unbounded => true,
                    Bound::Included(l) => v >= l,
                    Bound::Excluded(l) => v > l,
                }) && (match hi {
                    Bound::Unbounded => true,
                    Bound::Included(h) => v <= h,
                    Bound::Excluded(h) => v < h,
                })
            }
            SelectionQuery::And(a, b) => a.matches_value(v) && b.matches_value(v),
        }
    }
}

/// Is lower bound `a` at-or-above lower bound `b`?
fn bound_ge(a: &Bound<Value>, b: &Bound<Value>) -> bool {
    match (a, b) {
        (_, Bound::Unbounded) => true,
        (Bound::Unbounded, _) => false,
        (Bound::Included(x), Bound::Included(y)) => x >= y,
        (Bound::Excluded(x), Bound::Included(y)) => x >= y,
        (Bound::Included(x), Bound::Excluded(y)) => x > y,
        (Bound::Excluded(x), Bound::Excluded(y)) => x >= y,
    }
}

/// Is upper bound `a` at-or-below upper bound `b`?
fn bound_le(a: &Bound<Value>, b: &Bound<Value>) -> bool {
    match (a, b) {
        (_, Bound::Unbounded) => true,
        (Bound::Unbounded, _) => false,
        (Bound::Included(x), Bound::Included(y)) => x <= y,
        (Bound::Excluded(x), Bound::Included(y)) => x <= y,
        (Bound::Included(x), Bound::Excluded(y)) => x < y,
        (Bound::Excluded(x), Bound::Excluded(y)) => x <= y,
    }
}

/// The outcome of view-based rewriting.
#[derive(Debug)]
pub enum Rewrite<'a> {
    /// Query answered from this view (λ(Q) = Q targeted at the view).
    Covered(&'a MaterializedView),
    /// No view covers the query; the caller must fall back to the base.
    NoCoveringView,
}

/// A set of materialized views with rewriting and maintenance.
#[derive(Debug, Default)]
pub struct ViewSet {
    views: Vec<MaterializedView>,
}

impl ViewSet {
    /// Empty view set.
    pub fn new() -> Self {
        ViewSet::default()
    }

    /// Register a materialized view.
    pub fn add(&mut self, view: MaterializedView) {
        self.views.push(view);
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// The rewriting function λ: pick the smallest covering view.
    pub fn rewrite(&self, q: &SelectionQuery) -> Rewrite<'_> {
        self.views
            .iter()
            .filter(|v| v.covers(q))
            .min_by_key(|v| v.len())
            .map_or(Rewrite::NoCoveringView, Rewrite::Covered)
    }

    /// Answer using views only; `Err` when no view covers the query (the
    /// caller decides whether to scan the base or reject).
    #[allow(clippy::result_unit_err)] // Err carries no info beyond "not covered"
    pub fn answer_metered(&self, q: &SelectionQuery, meter: &Meter) -> Result<bool, ()> {
        match self.rewrite(q) {
            Rewrite::Covered(v) => Ok(v.answer_metered(q, meter)),
            Rewrite::NoCoveringView => Err(()),
        }
    }

    /// How many views' extensions would a row change (their definitions
    /// match it)? Used by |CHANGED|-accounted maintenance.
    pub fn affected_by(&self, row: &[Value]) -> usize {
        self.views
            .iter()
            .filter(|v| v.definition().matches(row))
            .count()
    }

    /// Propagate a base insert to every view.
    pub fn on_insert(&mut self, row: &[Value]) {
        for v in &mut self.views {
            v.on_insert(row);
        }
    }

    /// Propagate a base delete to every view.
    pub fn on_delete(&mut self, row: &[Value]) {
        for v in &mut self.views {
            v.on_delete(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, Schema};

    fn base(n: i64) -> Relation {
        let schema = Schema::new(&[("id", ColType::Int), ("tier", ColType::Str)]);
        let rows = (0..n)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(if i % 100 == 0 { "gold" } else { "basic" }),
                ]
            })
            .collect();
        Relation::from_rows(schema, rows).unwrap()
    }

    fn id_view(rel: &Relation, lo: i64, hi: i64) -> MaterializedView {
        MaterializedView::materialize(
            format!("ids_{lo}_{hi}"),
            rel,
            0,
            Bound::Included(Value::Int(lo)),
            Bound::Included(Value::Int(hi)),
        )
    }

    #[test]
    fn materialization_selects_the_region() {
        let rel = base(1000);
        let v = id_view(&rel, 100, 199);
        assert_eq!(v.len(), 100);
    }

    #[test]
    fn covering_is_bound_containment() {
        let rel = base(1000);
        let v = id_view(&rel, 100, 199);
        assert!(v.covers(&SelectionQuery::point(0, 150i64)));
        assert!(!v.covers(&SelectionQuery::point(0, 50i64)));
        assert!(v.covers(&SelectionQuery::range_closed(0, 120i64, 130i64)));
        assert!(!v.covers(&SelectionQuery::range_closed(0, 180i64, 220i64)));
        assert!(!v.covers(&SelectionQuery::point(1, "gold")), "wrong column");
        // Conjunction covered through its first conjunct.
        assert!(v.covers(&SelectionQuery::and(
            SelectionQuery::point(0, 150i64),
            SelectionQuery::point(1, "basic"),
        )));
    }

    #[test]
    fn view_answers_agree_with_base_scans() {
        let rel = base(2000);
        let v = id_view(&rel, 0, 999);
        let meter = Meter::new();
        let queries = [
            SelectionQuery::point(0, 500i64),
            SelectionQuery::range_closed(0, 10i64, 20i64),
            SelectionQuery::and(
                SelectionQuery::point(0, 100i64),
                SelectionQuery::point(1, "gold"),
            ),
            SelectionQuery::and(
                SelectionQuery::point(0, 101i64),
                SelectionQuery::point(1, "gold"),
            ),
        ];
        for q in &queries {
            assert!(v.covers(q), "{q:?}");
            assert_eq!(v.answer_metered(q, &meter), rel.eval_scan(q), "{q:?}");
        }
    }

    #[test]
    fn view_scan_is_cheaper_than_base_scan() {
        let rel = base(10_000);
        let v = id_view(&rel, 0, 99);
        let meter = Meter::new();
        // A miss inside the region: the view scans 100 rows, base 10 000.
        let q = SelectionQuery::and(
            SelectionQuery::range_closed(0, 0i64, 99i64),
            SelectionQuery::point(1, "platinum"),
        );
        v.answer_metered(&q, &meter);
        let view_cost = meter.take();
        rel.eval_scan_metered(&q, &meter);
        let base_cost = meter.take();
        assert!(view_cost <= 100);
        assert_eq!(base_cost, 10_000);
    }

    #[test]
    fn viewset_rewrites_to_smallest_covering_view() {
        let rel = base(1000);
        let mut vs = ViewSet::new();
        vs.add(id_view(&rel, 0, 999));
        vs.add(id_view(&rel, 100, 199));
        let q = SelectionQuery::point(0, 150i64);
        match vs.rewrite(&q) {
            Rewrite::Covered(v) => assert_eq!(v.name(), "ids_100_199"),
            Rewrite::NoCoveringView => panic!("query should be covered"),
        }
        let uncovered = SelectionQuery::point(0, 5000i64);
        // 5000 is outside every region? ids_0_999 covers points 0..=999 only.
        assert!(matches!(vs.rewrite(&uncovered), Rewrite::NoCoveringView));
    }

    #[test]
    fn viewset_answer_falls_back_with_err() {
        let rel = base(100);
        let mut vs = ViewSet::new();
        vs.add(id_view(&rel, 0, 49));
        let meter = Meter::new();
        assert_eq!(
            vs.answer_metered(&SelectionQuery::point(0, 10i64), &meter),
            Ok(true)
        );
        assert_eq!(
            vs.answer_metered(&SelectionQuery::point(0, 90i64), &meter),
            Err(())
        );
    }

    #[test]
    fn incremental_maintenance_tracks_base_changes() {
        let rel = base(100);
        let mut vs = ViewSet::new();
        vs.add(id_view(&rel, 0, 49));
        let meter = Meter::new();

        let new_row = vec![Value::Int(25), Value::str("gold")];
        vs.on_insert(&new_row);
        let q = SelectionQuery::and(
            SelectionQuery::point(0, 25i64),
            SelectionQuery::point(1, "gold"),
        );
        assert_eq!(vs.answer_metered(&q, &meter), Ok(true));

        vs.on_delete(&new_row);
        assert_eq!(vs.answer_metered(&q, &meter), Ok(false));

        // Inserts outside the region don't grow the view.
        let outside = vec![Value::Int(90), Value::str("gold")];
        vs.on_insert(&outside);
        assert_eq!(
            vs.answer_metered(&SelectionQuery::point(0, 90i64), &meter),
            Err(()),
            "outside rows must not sneak into covered answering"
        );
    }

    #[test]
    fn unbounded_view_covers_everything_on_its_column() {
        let rel = base(100);
        let v = MaterializedView::materialize("all", &rel, 0, Bound::Unbounded, Bound::Unbounded);
        assert_eq!(v.len(), 100);
        assert!(v.covers(&SelectionQuery::point(0, -5i64)));
        assert!(v.covers(&SelectionQuery::range_closed(0, 0i64, 1_000_000i64)));
    }
}
