//! Typed values: the cell contents of relations.
//!
//! Two types suffice for every workload in the paper's examples (numeric
//! measures and categorical/string attributes). `Value` has a total order
//! (integers before strings) so it can key B⁺-trees and sorted indexes;
//! schema validation keeps real columns homogeneous, making the
//! cross-variant order a tie-breaker that never fires in practice.

use pitract_core::encode::Encode;
use std::fmt;

/// A typed cell value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl Encode for Value {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(i) => {
                out.push(0);
                i.encode_into(out);
            }
            Value::Str(s) => {
                out.push(1);
                s.encode_into(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitract_core::encode::Encode;

    #[test]
    fn ordering_within_types_is_natural() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::str("a") < Value::str("ab"));
    }

    #[test]
    fn ints_sort_before_strings() {
        assert!(Value::Int(i64::MAX) < Value::str(""));
    }

    #[test]
    fn accessors_and_conversions() {
        let v: Value = 42i64.into();
        assert_eq!(v.as_int(), Some(42));
        assert_eq!(v.as_str(), None);
        let s: Value = "hi".into();
        assert_eq!(s.as_str(), Some("hi"));
        assert_eq!(s.as_int(), None);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::str("x").to_string(), "\"x\"");
    }

    #[test]
    fn encodings_distinguish_variants() {
        // Int 0 must not collide with an empty string.
        assert_ne!(Value::Int(0).encoded(), Value::str("").encoded());
        assert_eq!(Value::Int(7).encoded(), Value::Int(7).encoded());
    }
}
