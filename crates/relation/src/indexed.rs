//! The preprocessed relation of Example 1: per-column B⁺-tree secondary
//! indexes.
//!
//! `Π(D)` here is [`IndexedRelation::build`]: for each chosen attribute a
//! B⁺-tree maps column values to posting lists of row ids. After that:
//!
//! * point selections answer in O(log n) (one tree descent — the posting
//!   list's existence *is* the Boolean answer);
//! * range selections answer in O(log n) (descend to the range start and
//!   test non-emptiness);
//! * conjunctions route through one indexed conjunct and verify candidates
//!   (selectivity-dependent, like a real executor — E1 only claims the
//!   polylog bound for the single-column classes the paper defines).
//!
//! The indexes are **maintained incrementally** under inserts and deletes
//! (Section 1's incremental-preprocessing requirement): each update costs
//! O(log n + posting-list edit), not a rebuild.

use crate::query::SelectionQuery;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::value::Value;
use pitract_core::cost::Meter;
use pitract_index::bptree::BPlusTree;
use std::collections::HashMap;
use std::ops::Bound;

/// A relation plus B⁺-tree secondary indexes on selected columns.
#[derive(Debug)]
pub struct IndexedRelation {
    schema: Schema,
    /// Tombstone row storage: deletes never shift surviving row ids, so
    /// posting lists stay valid.
    rows: Vec<Option<Vec<Value>>>,
    live: usize,
    indexes: HashMap<usize, BPlusTree<Value, Vec<usize>>>,
}

impl IndexedRelation {
    /// Preprocess a relation by building indexes on `cols`. O(n log n) per
    /// indexed column.
    pub fn build(relation: &Relation, cols: &[usize]) -> Self {
        let mut ir = IndexedRelation {
            schema: relation.schema().clone(),
            rows: Vec::with_capacity(relation.len()),
            live: 0,
            indexes: cols.iter().map(|&c| (c, BPlusTree::new())).collect(),
        };
        for row in relation.rows() {
            ir.insert(row.clone()).expect("source relation is valid");
        }
        ir
    }

    /// Schema of the underlying relation.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Which columns are indexed?
    pub fn indexed_columns(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.indexes.keys().copied().collect();
        cols.sort_unstable();
        cols
    }

    /// Insert a tuple, maintaining every index. Returns the row id.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<usize, String> {
        self.schema.admits(&row)?;
        let id = self.rows.len();
        for (&col, tree) in &mut self.indexes {
            let key = row[col].clone();
            match tree.get_mut(&key) {
                Some(posting) => posting.push(id),
                None => {
                    tree.insert(key, vec![id]);
                }
            }
        }
        self.rows.push(Some(row));
        self.live += 1;
        Ok(id)
    }

    /// Delete a tuple by row id, maintaining every index. Returns the
    /// removed tuple, or `None` if the id was already deleted/invalid.
    pub fn delete(&mut self, id: usize) -> Option<Vec<Value>> {
        let row = self.rows.get_mut(id)?.take()?;
        for (&col, tree) in &mut self.indexes {
            let key = &row[col];
            let emptied = match tree.get_mut(key) {
                Some(posting) => {
                    posting.retain(|&r| r != id);
                    posting.is_empty()
                }
                None => false,
            };
            if emptied {
                // Prune empty posting lists so "key present in tree" keeps
                // meaning "at least one live tuple has this value".
                tree.remove(key);
            }
        }
        self.live -= 1;
        Some(row)
    }

    /// Live row ids whose `col` equals `value` (empty if none or column
    /// unindexed — callers should check [`IndexedRelation::indexed_columns`]).
    pub fn row_ids_eq(&self, col: usize, value: &Value) -> Vec<usize> {
        self.indexes
            .get(&col)
            .and_then(|t| t.get(value))
            .cloned()
            .unwrap_or_default()
    }

    /// Answer a Boolean selection query, preferring indexes and falling
    /// back to a scan. The meter prices every comparison / probe.
    pub fn answer_metered(&self, q: &SelectionQuery, meter: &Meter) -> bool {
        match q {
            SelectionQuery::Point { col, value } => match self.indexes.get(col) {
                Some(tree) => tree.get_metered(value, meter).is_some(),
                None => self.scan_metered(q, meter),
            },
            SelectionQuery::Range { col, lo, hi } => match self.indexes.get(col) {
                Some(tree) => {
                    // One descent to the range start; non-emptiness of the
                    // pruned tree range is the answer. Charge the descent.
                    meter.add(tree_descent_cost(tree));
                    tree.any_in_range(as_ref_bound(lo), as_ref_bound(hi))
                }
                None => self.scan_metered(q, meter),
            },
            SelectionQuery::And(a, b) => {
                // Route through an indexed point conjunct when available,
                // verifying candidates against the full predicate.
                if let SelectionQuery::Point { col, value } = a.as_ref() {
                    if self.indexes.contains_key(col) {
                        let ids = self.row_ids_eq(*col, value);
                        meter.add(tree_descent_cost(&self.indexes[col]));
                        return ids.iter().any(|&id| {
                            meter.tick();
                            self.rows[id].as_ref().is_some_and(|row| b.matches(row))
                        });
                    }
                }
                if let SelectionQuery::Point { col, value } = b.as_ref() {
                    if self.indexes.contains_key(col) {
                        let ids = self.row_ids_eq(*col, value);
                        meter.add(tree_descent_cost(&self.indexes[col]));
                        return ids.iter().any(|&id| {
                            meter.tick();
                            self.rows[id].as_ref().is_some_and(|row| a.matches(row))
                        });
                    }
                }
                self.scan_metered(q, meter)
            }
        }
    }

    /// Unmetered convenience wrapper.
    pub fn answer(&self, q: &SelectionQuery) -> bool {
        self.answer_metered(q, &Meter::new())
    }

    fn scan_metered(&self, q: &SelectionQuery, meter: &Meter) -> bool {
        for row in self.rows.iter().flatten() {
            meter.tick();
            if q.matches(row) {
                return true;
            }
        }
        false
    }

    /// Export the live tuples as a plain relation (test/diagnostic aid).
    pub fn to_relation(&self) -> Relation {
        let rows: Vec<Vec<Value>> = self.rows.iter().flatten().cloned().collect();
        Relation::from_rows(self.schema.clone(), rows).expect("rows were validated on insert")
    }
}

/// Approximate comparison cost of one descent, charged to the meter for
/// operations (like range probes) that use the unmetered tree API.
fn tree_descent_cost(tree: &BPlusTree<Value, Vec<usize>>) -> u64 {
    let n = tree.len().max(2) as f64;
    (n.log2().ceil() as u64).max(1) * 2
}

fn as_ref_bound(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
        Bound::Unbounded => Bound::Unbounded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColType;
    use pitract_core::cost::{assert_steps_within, CostClass};

    fn schema() -> Schema {
        Schema::new(&[("id", ColType::Int), ("city", ColType::Str)])
    }

    fn big_relation(n: i64) -> Relation {
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::Int(i), Value::str(format!("city{}", i % 10))])
            .collect();
        Relation::from_rows(schema(), rows).unwrap()
    }

    #[test]
    fn indexed_answers_match_scan_answers() {
        let rel = big_relation(500);
        let ir = IndexedRelation::build(&rel, &[0, 1]);
        let queries = vec![
            SelectionQuery::point(0, 250i64),
            SelectionQuery::point(0, 9999i64),
            SelectionQuery::point(1, "city3"),
            SelectionQuery::point(1, "nowhere"),
            SelectionQuery::range_closed(0, 100i64, 110i64),
            SelectionQuery::range_closed(0, 600i64, 700i64),
            SelectionQuery::and(
                SelectionQuery::point(1, "city7"),
                SelectionQuery::range_closed(0, 0i64, 20i64),
            ),
        ];
        for q in queries {
            assert_eq!(ir.answer(&q), rel.eval_scan(&q), "{q:?}");
        }
    }

    #[test]
    fn point_probe_is_logarithmic() {
        let n = 1i64 << 15;
        let ir = IndexedRelation::build(&big_relation(n), &[0]);
        let meter = Meter::new();
        for v in [0i64, n / 2, n - 1, n + 5] {
            meter.take();
            ir.answer_metered(&SelectionQuery::point(0, v), &meter);
            assert_steps_within(meter.steps(), CostClass::Log, n as u64, 4.0);
        }
    }

    #[test]
    fn range_probe_is_logarithmic() {
        let n = 1i64 << 15;
        let ir = IndexedRelation::build(&big_relation(n), &[0]);
        let meter = Meter::new();
        meter.take();
        ir.answer_metered(&SelectionQuery::range_closed(0, 5i64, 50i64), &meter);
        assert_steps_within(meter.steps(), CostClass::Log, n as u64, 4.0);
    }

    #[test]
    fn unindexed_column_falls_back_to_scan() {
        let rel = big_relation(100);
        let ir = IndexedRelation::build(&rel, &[0]);
        let meter = Meter::new();
        ir.answer_metered(&SelectionQuery::point(1, "absent"), &meter);
        assert_eq!(meter.steps(), 100, "miss on unindexed column scans all");
    }

    #[test]
    fn inserts_are_visible_and_indexed() {
        let mut ir = IndexedRelation::build(&big_relation(10), &[0]);
        assert!(!ir.answer(&SelectionQuery::point(0, 100i64)));
        ir.insert(vec![Value::Int(100), Value::str("x")]).unwrap();
        assert!(ir.answer(&SelectionQuery::point(0, 100i64)));
        assert_eq!(ir.len(), 11);
    }

    #[test]
    fn deletes_remove_from_queries_and_prune_postings() {
        // 20 rows: each city value appears twice (rows i and i+10).
        let mut ir = IndexedRelation::build(&big_relation(20), &[0, 1]);
        // Row ids equal initial positions; delete id 3 (id value 3).
        let removed = ir.delete(3).expect("row 3 exists");
        assert_eq!(removed[0], Value::Int(3));
        assert!(!ir.answer(&SelectionQuery::point(0, 3i64)));
        assert_eq!(ir.len(), 19);
        // Double delete is a no-op.
        assert!(ir.delete(3).is_none());
        // Duplicate-valued column: row 13 still holds "city3".
        assert!(ir.answer(&SelectionQuery::point(1, "city3")));
    }

    #[test]
    fn delete_last_duplicate_removes_key() {
        let rel = Relation::from_rows(
            schema(),
            vec![
                vec![Value::Int(1), Value::str("solo")],
                vec![Value::Int(2), Value::str("pair")],
                vec![Value::Int(3), Value::str("pair")],
            ],
        )
        .unwrap();
        let mut ir = IndexedRelation::build(&rel, &[1]);
        ir.delete(0);
        assert!(!ir.answer(&SelectionQuery::point(1, "solo")));
        ir.delete(1);
        assert!(
            ir.answer(&SelectionQuery::point(1, "pair")),
            "row 2 remains"
        );
        ir.delete(2);
        assert!(!ir.answer(&SelectionQuery::point(1, "pair")));
        assert!(ir.is_empty());
    }

    #[test]
    fn conjunction_routes_through_index_and_verifies() {
        let rel = big_relation(1000);
        let ir = IndexedRelation::build(&rel, &[1]);
        let meter = Meter::new();
        let q = SelectionQuery::and(
            SelectionQuery::point(1, "city4"),
            SelectionQuery::range_closed(0, 700i64, 710i64),
        );
        let got = ir.answer_metered(&q, &meter);
        assert_eq!(got, rel.eval_scan(&q));
        // 100 candidates share city4; far fewer than a 1000-row scan.
        assert!(
            meter.steps() < 200,
            "conjunction probe cost {} suggests a full scan",
            meter.steps()
        );
    }

    #[test]
    fn to_relation_roundtrips_live_rows() {
        let mut ir = IndexedRelation::build(&big_relation(5), &[0]);
        ir.delete(2);
        let rel = ir.to_relation();
        assert_eq!(rel.len(), 4);
        assert!(!rel.eval_scan(&SelectionQuery::point(0, 2i64)));
    }

    #[test]
    fn row_ids_eq_returns_live_ids() {
        let ir = IndexedRelation::build(&big_relation(30), &[1]);
        let ids = ir.row_ids_eq(1, &Value::str("city2"));
        assert_eq!(ids, vec![2, 12, 22]);
        assert!(ir.row_ids_eq(0, &Value::Int(1)).is_empty(), "unindexed col");
    }
}
