//! The preprocessed relation of Example 1: per-column B⁺-tree secondary
//! indexes.
//!
//! `Π(D)` here is [`IndexedRelation::build`]: for each chosen attribute a
//! B⁺-tree maps column values to posting lists of row ids. After that:
//!
//! * point selections answer in O(log n) (one tree descent — the posting
//!   list's existence *is* the Boolean answer);
//! * range selections answer in O(log n) (descend to the range start and
//!   test non-emptiness);
//! * conjunctions route through one indexed conjunct and verify candidates
//!   (selectivity-dependent, like a real executor — E1 only claims the
//!   polylog bound for the single-column classes the paper defines).
//!
//! The indexes are **maintained incrementally** under inserts and deletes
//! (Section 1's incremental-preprocessing requirement): each update costs
//! O(log n + posting-list edit), not a rebuild.

use crate::query::SelectionQuery;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::value::Value;
use pitract_core::cost::Meter;
use pitract_index::bptree::BPlusTree;
use std::collections::HashMap;
use std::fmt;
use std::ops::Bound;

/// One persisted secondary index: the column it covers plus its
/// ascending `(key, posting list)` entries.
pub type IndexEntries = (usize, Vec<(Value, Vec<usize>)>);

/// Everything that can go wrong building, updating, or reassembling an
/// [`IndexedRelation`].
///
/// `build`, `insert`, and `from_parts` used to return `Result<_, String>`
/// while every layer above (the engine's [`ShardedRelation`] and the
/// store's snapshot loader) had typed errors — so the bottom of the
/// build/insert path forced everything back into prose. Each failure
/// class is now a distinct variant with `From` conversions upward
/// (`EngineError::Indexed`, `StoreError::Indexed`), so callers can match
/// instead of parsing strings.
///
/// [`ShardedRelation`]: https://docs.rs/pitract-engine
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexedError {
    /// An index was requested on a column the schema does not have.
    ColumnOutOfRange {
        /// The offending column index.
        col: usize,
        /// The schema's arity.
        arity: usize,
    },
    /// A row failed schema validation (arity or column-type mismatch).
    RowRejected(String),
    /// `from_parts`: a column appears twice in the supplied indexes.
    DuplicateIndex {
        /// The duplicated column.
        col: usize,
    },
    /// `from_parts`: index keys were not strictly ascending.
    KeysNotAscending {
        /// The index's column.
        col: usize,
    },
    /// `from_parts`: an index key carried an empty posting list (live keys
    /// must post at least one row).
    EmptyPosting {
        /// The index's column.
        col: usize,
        /// Display form of the offending key.
        key: String,
    },
    /// `from_parts`: a posting list's row ids were not strictly ascending.
    PostingNotAscending {
        /// The index's column.
        col: usize,
        /// Display form of the offending key.
        key: String,
    },
    /// `from_parts`: a posting points at a row that is dead, out of range,
    /// or does not hold the posted key.
    DanglingPosting {
        /// The index's column.
        col: usize,
        /// The offending row id.
        id: usize,
    },
    /// `from_parts`: an index does not post exactly the live rows.
    PostingCountMismatch {
        /// The index's column.
        col: usize,
        /// Rows posted by the index.
        posted: usize,
        /// Live rows in the relation.
        live: usize,
    },
}

impl fmt::Display for IndexedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexedError::ColumnOutOfRange { col, arity } => {
                write!(f, "cannot index column {col}: schema has arity {arity}")
            }
            IndexedError::RowRejected(why) => write!(f, "row rejected by schema: {why}"),
            IndexedError::DuplicateIndex { col } => {
                write!(f, "duplicate index on column {col}")
            }
            IndexedError::KeysNotAscending { col } => {
                write!(f, "index on column {col}: keys not strictly ascending")
            }
            IndexedError::EmptyPosting { col, key } => {
                write!(f, "index on column {col}: empty posting for {key}")
            }
            IndexedError::PostingNotAscending { col, key } => {
                write!(
                    f,
                    "index on column {col}: posting ids for {key} not strictly ascending"
                )
            }
            IndexedError::DanglingPosting { col, id } => {
                write!(
                    f,
                    "index on column {col}: posting id {id} does not hold the posted key"
                )
            }
            IndexedError::PostingCountMismatch { col, posted, live } => {
                write!(
                    f,
                    "index on column {col} posts {posted} rows, relation has {live} live"
                )
            }
        }
    }
}

impl std::error::Error for IndexedError {}

/// A relation plus B⁺-tree secondary indexes on selected columns.
#[derive(Debug, Clone)]
pub struct IndexedRelation {
    schema: Schema,
    /// Tombstone row storage: deletes never shift surviving row ids, so
    /// posting lists stay valid.
    rows: Vec<Option<Vec<Value>>>,
    live: usize,
    indexes: HashMap<usize, BPlusTree<Value, Vec<usize>>>,
}

impl IndexedRelation {
    /// Preprocess a relation by building indexes on `cols`. O(n log n) per
    /// indexed column.
    ///
    /// Every entry of `cols` must name a column of the schema; an
    /// out-of-range column is reported as an error instead of panicking
    /// during index maintenance.
    pub fn build(relation: &Relation, cols: &[usize]) -> Result<Self, IndexedError> {
        let arity = relation.schema().arity();
        if let Some(&bad) = cols.iter().find(|&&c| c >= arity) {
            return Err(IndexedError::ColumnOutOfRange { col: bad, arity });
        }
        let mut ir = IndexedRelation {
            schema: relation.schema().clone(),
            rows: Vec::with_capacity(relation.len()),
            live: 0,
            indexes: cols.iter().map(|&c| (c, BPlusTree::new())).collect(),
        };
        for row in relation.rows() {
            ir.insert(row.clone()).expect("source relation is valid");
        }
        Ok(ir)
    }

    /// Schema of the underlying relation.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Which columns are indexed?
    pub fn indexed_columns(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.indexes.keys().copied().collect();
        cols.sort_unstable();
        cols
    }

    /// Insert a tuple, maintaining every index. Returns the row id.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<usize, IndexedError> {
        self.schema
            .admits(&row)
            .map_err(IndexedError::RowRejected)?;
        let id = self.rows.len();
        for (&col, tree) in &mut self.indexes {
            let key = row[col].clone();
            match tree.get_mut(&key) {
                Some(posting) => posting.push(id),
                None => {
                    tree.insert(key, vec![id]);
                }
            }
        }
        self.rows.push(Some(row));
        self.live += 1;
        Ok(id)
    }

    /// Delete a tuple by row id, maintaining every index. Returns the
    /// removed tuple, or `None` if the id was already deleted/invalid.
    pub fn delete(&mut self, id: usize) -> Option<Vec<Value>> {
        let row = self.rows.get_mut(id)?.take()?;
        for (&col, tree) in &mut self.indexes {
            let key = &row[col];
            let emptied = match tree.get_mut(key) {
                Some(posting) => {
                    posting.retain(|&r| r != id);
                    posting.is_empty()
                }
                None => false,
            };
            if emptied {
                // Prune empty posting lists so "key present in tree" keeps
                // meaning "at least one live tuple has this value".
                tree.remove(key);
            }
        }
        self.live -= 1;
        Some(row)
    }

    /// Live row ids whose `col` equals `value` (empty if none or column
    /// unindexed — callers should check [`IndexedRelation::indexed_columns`]).
    pub fn row_ids_eq(&self, col: usize, value: &Value) -> Vec<usize> {
        self.indexes
            .get(&col)
            .and_then(|t| t.get(value))
            .cloned()
            .unwrap_or_default()
    }

    /// The live tuple stored under `id`, or `None` if `id` was deleted or
    /// never assigned.
    pub fn row(&self, id: usize) -> Option<&[Value]> {
        self.rows.get(id).and_then(|r| r.as_deref())
    }

    /// Live row ids whose `col` falls in `[lo, hi]` (bounds as given),
    /// ascending. Empty if the column is unindexed.
    pub fn row_ids_in_range(&self, col: usize, lo: &Bound<Value>, hi: &Bound<Value>) -> Vec<usize> {
        let Some(tree) = self.indexes.get(&col) else {
            return Vec::new();
        };
        let mut ids: Vec<usize> = tree
            .range(as_ref_bound(lo), as_ref_bound(hi))
            .flat_map(|(_, posting)| posting.iter().copied())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Enumerate (ascending) the ids of all live rows matching `q`,
    /// routing through the same access paths as [`Self::answer_metered`]:
    /// point probe, range probe, index-nested-loop conjunction, scan.
    ///
    /// This is the enumeration mode of the serving layer: the Boolean
    /// answer is `!ids.is_empty()`, but callers that need the witnesses
    /// (e.g. row-id batch serving in `pitract-engine`) get them directly.
    pub fn matching_ids_metered(&self, q: &SelectionQuery, meter: &Meter) -> Vec<usize> {
        match q {
            SelectionQuery::Point { col, value } if self.indexes.contains_key(col) => {
                meter.add(tree_descent_cost(&self.indexes[col]));
                let ids = self.row_ids_eq(*col, value);
                meter.add(ids.len() as u64);
                ids
            }
            SelectionQuery::Range { col, lo, hi } if self.indexes.contains_key(col) => {
                meter.add(tree_descent_cost(&self.indexes[col]));
                let ids = self.row_ids_in_range(*col, lo, hi);
                meter.add(ids.len() as u64);
                ids
            }
            SelectionQuery::And(_, _) => match self.driving_conjunct(&q.conjuncts()) {
                Some(driving) => self
                    .driving_candidates(driving, meter)
                    .into_iter()
                    .filter(|&id| {
                        meter.tick();
                        self.rows[id].as_ref().is_some_and(|row| q.matches(row))
                    })
                    .collect(),
                None => self.scan_ids_metered(q, meter),
            },
            _ => self.scan_ids_metered(q, meter),
        }
    }

    /// The conjunct an index-nested-loop drives through: the first indexed
    /// point conjunct, else the first indexed range conjunct. This is the
    /// single routing policy shared by [`Self::answer_metered`] and
    /// [`Self::matching_ids_metered`] (and mirrored, with an agreement
    /// test, by the `pitract-engine` planner).
    fn driving_conjunct<'a>(&self, conjuncts: &[&'a SelectionQuery]) -> Option<&'a SelectionQuery> {
        conjuncts
            .iter()
            .find(|c| {
                matches!(c, SelectionQuery::Point { col, .. }
                    if self.indexes.contains_key(col))
            })
            .or_else(|| {
                conjuncts.iter().find(|c| {
                    matches!(c, SelectionQuery::Range { col, .. }
                        if self.indexes.contains_key(col))
                })
            })
            .copied()
    }

    /// Candidate row ids produced by probing the driving conjunct's index,
    /// charging one tree descent. Only called with a point/range conjunct
    /// returned by [`Self::driving_conjunct`].
    fn driving_candidates(&self, driving: &SelectionQuery, meter: &Meter) -> Vec<usize> {
        match driving {
            SelectionQuery::Point { col, value } => {
                meter.add(tree_descent_cost(&self.indexes[col]));
                self.row_ids_eq(*col, value)
            }
            SelectionQuery::Range { col, lo, hi } => {
                meter.add(tree_descent_cost(&self.indexes[col]));
                self.row_ids_in_range(*col, lo, hi)
            }
            SelectionQuery::And(_, _) => unreachable!("driving conjuncts are leaves"),
        }
    }

    fn scan_ids_metered(&self, q: &SelectionQuery, meter: &Meter) -> Vec<usize> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(id, slot)| {
                // Tombstoned slots are walked too — that is real work the
                // scan performs, so the meter charges it (and the planner
                // estimates scans against slot count, not live count).
                meter.tick();
                let row = slot.as_ref()?;
                q.matches(row).then_some(id)
            })
            .collect()
    }

    /// Answer a Boolean selection query, preferring indexes and falling
    /// back to a scan. The meter prices every comparison / probe.
    pub fn answer_metered(&self, q: &SelectionQuery, meter: &Meter) -> bool {
        match q {
            SelectionQuery::Point { col, value } => match self.indexes.get(col) {
                Some(tree) => tree.get_metered(value, meter).is_some(),
                None => self.scan_metered(q, meter),
            },
            SelectionQuery::Range { col, lo, hi } => match self.indexes.get(col) {
                Some(tree) => {
                    // One descent to the range start; non-emptiness of the
                    // pruned tree range is the answer. Charge the descent.
                    meter.add(tree_descent_cost(tree));
                    tree.any_in_range(as_ref_bound(lo), as_ref_bound(hi))
                }
                None => self.scan_metered(q, meter),
            },
            SelectionQuery::And(_, _) => {
                // Flatten the conjunction tree and route through any indexed
                // conjunct — point preferred over range — verifying every
                // candidate against the full predicate. Nested `And` shapes
                // and range-only conjunctions used to degrade to a scan.
                // The range path stays lazy (no candidate collection) so
                // the Boolean answer can exit on the first witness.
                match self.driving_conjunct(&q.conjuncts()) {
                    Some(SelectionQuery::Point { col, value }) => {
                        meter.add(tree_descent_cost(&self.indexes[col]));
                        let ids = self.row_ids_eq(*col, value);
                        ids.iter().any(|&id| {
                            meter.tick();
                            self.rows[id].as_ref().is_some_and(|row| q.matches(row))
                        })
                    }
                    Some(SelectionQuery::Range { col, lo, hi }) => {
                        let tree = &self.indexes[col];
                        meter.add(tree_descent_cost(tree));
                        for (_, posting) in tree.range(as_ref_bound(lo), as_ref_bound(hi)) {
                            for &id in posting {
                                meter.tick();
                                if self.rows[id].as_ref().is_some_and(|row| q.matches(row)) {
                                    return true;
                                }
                            }
                        }
                        false
                    }
                    _ => self.scan_metered(q, meter),
                }
            }
        }
    }

    /// Unmetered convenience wrapper.
    pub fn answer(&self, q: &SelectionQuery) -> bool {
        self.answer_metered(q, &Meter::new())
    }

    /// [`Self::answer_metered`] restricted to rows with id `< bound` —
    /// the visibility horizon of a snapshot reader: row ids are
    /// assigned in insertion order and never reused, so "the relation
    /// before a run of appends" is exactly the id prefix below the
    /// first appended id. Routes through the same access paths and
    /// short-circuits on the first *visible* witness; posting lists are
    /// ascending, so a point probe checks one id instead of walking the
    /// posting. `usize::MAX` makes every row visible.
    pub fn answer_metered_below(&self, q: &SelectionQuery, meter: &Meter, bound: usize) -> bool {
        match q {
            SelectionQuery::Point { col, value } => match self.indexes.get(col) {
                Some(tree) => tree
                    .get_metered(value, meter)
                    .is_some_and(|posting| posting.first().is_some_and(|&id| id < bound)),
                None => self.scan_metered_below(q, meter, bound),
            },
            SelectionQuery::Range { col, lo, hi } => match self.indexes.get(col) {
                Some(tree) => {
                    meter.add(tree_descent_cost(tree));
                    tree.range(as_ref_bound(lo), as_ref_bound(hi))
                        .any(|(_, posting)| {
                            meter.tick();
                            posting.first().is_some_and(|&id| id < bound)
                        })
                }
                None => self.scan_metered_below(q, meter, bound),
            },
            SelectionQuery::And(_, _) => match self.driving_conjunct(&q.conjuncts()) {
                Some(driving) => self
                    .driving_candidates(driving, meter)
                    .into_iter()
                    .take_while(|&id| id < bound)
                    .any(|id| {
                        meter.tick();
                        self.rows[id].as_ref().is_some_and(|row| q.matches(row))
                    }),
                None => self.scan_metered_below(q, meter, bound),
            },
        }
    }

    fn scan_metered_below(&self, q: &SelectionQuery, meter: &Meter, bound: usize) -> bool {
        for slot in self.rows.iter().take(bound) {
            meter.tick();
            if let Some(row) = slot {
                if q.matches(row) {
                    return true;
                }
            }
        }
        false
    }

    fn scan_metered(&self, q: &SelectionQuery, meter: &Meter) -> bool {
        for slot in &self.rows {
            // Every slot visited costs a step, tombstones included (the
            // scan cannot skip them without an index).
            meter.tick();
            if let Some(row) = slot {
                if q.matches(row) {
                    return true;
                }
            }
        }
        false
    }

    /// Export the live tuples as a plain relation (test/diagnostic aid).
    pub fn to_relation(&self) -> Relation {
        let rows: Vec<Vec<Value>> = self.rows.iter().flatten().cloned().collect();
        Relation::from_rows(self.schema.clone(), rows).expect("rows were validated on insert")
    }

    /// Raw row storage including tombstones (persistence accessor:
    /// serializing the slots verbatim is what keeps row ids stable across
    /// a save/load cycle).
    pub fn slots(&self) -> &[Option<Vec<Value>>] {
        &self.rows
    }

    /// Number of row slots ever assigned (live rows plus tombstones; the
    /// id space upper bound).
    pub fn slot_count(&self) -> usize {
        self.rows.len()
    }

    /// The `(key, posting list)` entries of one column's index in
    /// ascending key order, or `None` if the column is unindexed
    /// (persistence accessor).
    pub fn index_postings(&self, col: usize) -> Option<Vec<(&Value, &[usize])>> {
        let tree = self.indexes.get(&col)?;
        Some(tree.iter().map(|(k, v)| (k, v.as_slice())).collect())
    }

    /// Reassemble an `IndexedRelation` from previously exported parts —
    /// the warm-start fast path used by `pitract-store`. Each index is
    /// reconstructed with [`BPlusTree::bulk_load`] from its ascending
    /// `(key, posting list)` entries in O(n), instead of the O(n log n)
    /// per-key descents of [`IndexedRelation::build`].
    ///
    /// Validation keeps a structurally corrupt input from producing a
    /// relation that would answer differently (or panic) later: every
    /// live row must admit the schema, index columns must be in range,
    /// keys must be strictly ascending, and every posting must point at a
    /// live row holding that key.
    pub fn from_parts(
        schema: Schema,
        slots: Vec<Option<Vec<Value>>>,
        indexes: Vec<IndexEntries>,
    ) -> Result<Self, IndexedError> {
        for row in slots.iter().flatten() {
            schema.admits(row).map_err(IndexedError::RowRejected)?;
        }
        let live = slots.iter().flatten().count();
        let arity = schema.arity();
        let mut trees = HashMap::with_capacity(indexes.len());
        for (col, entries) in indexes {
            if col >= arity {
                return Err(IndexedError::ColumnOutOfRange { col, arity });
            }
            if entries.windows(2).any(|w| w[0].0 >= w[1].0) {
                return Err(IndexedError::KeysNotAscending { col });
            }
            let mut posted = 0usize;
            for (key, posting) in &entries {
                if posting.is_empty() {
                    return Err(IndexedError::EmptyPosting {
                        col,
                        key: key.to_string(),
                    });
                }
                if posting.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(IndexedError::PostingNotAscending {
                        col,
                        key: key.to_string(),
                    });
                }
                for &id in posting {
                    let lives = slots
                        .get(id)
                        .and_then(|slot| slot.as_ref())
                        .is_some_and(|row| &row[col] == key);
                    if !lives {
                        return Err(IndexedError::DanglingPosting { col, id });
                    }
                }
                posted += posting.len();
            }
            // Ascending distinct keys + ascending distinct ids per posting
            // + every posting pointing at a live row with its key + the
            // counts matching: the postings are exactly the live rows.
            if posted != live {
                return Err(IndexedError::PostingCountMismatch { col, posted, live });
            }
            if trees.insert(col, BPlusTree::bulk_load(entries)).is_some() {
                return Err(IndexedError::DuplicateIndex { col });
            }
        }
        Ok(IndexedRelation {
            schema,
            rows: slots,
            live,
            indexes: trees,
        })
    }
}

/// Approximate comparison cost of one descent, charged to the meter for
/// operations (like range probes) that use the unmetered tree API.
fn tree_descent_cost(tree: &BPlusTree<Value, Vec<usize>>) -> u64 {
    let n = tree.len().max(2) as f64;
    (n.log2().ceil() as u64).max(1) * 2
}

fn as_ref_bound(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
        Bound::Unbounded => Bound::Unbounded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColType;
    use pitract_core::cost::{assert_steps_within, CostClass};

    fn schema() -> Schema {
        Schema::new(&[("id", ColType::Int), ("city", ColType::Str)])
    }

    fn big_relation(n: i64) -> Relation {
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::Int(i), Value::str(format!("city{}", i % 10))])
            .collect();
        Relation::from_rows(schema(), rows).unwrap()
    }

    #[test]
    fn indexed_answers_match_scan_answers() {
        let rel = big_relation(500);
        let ir = IndexedRelation::build(&rel, &[0, 1]).unwrap();
        let queries = vec![
            SelectionQuery::point(0, 250i64),
            SelectionQuery::point(0, 9999i64),
            SelectionQuery::point(1, "city3"),
            SelectionQuery::point(1, "nowhere"),
            SelectionQuery::range_closed(0, 100i64, 110i64),
            SelectionQuery::range_closed(0, 600i64, 700i64),
            SelectionQuery::and(
                SelectionQuery::point(1, "city7"),
                SelectionQuery::range_closed(0, 0i64, 20i64),
            ),
        ];
        for q in queries {
            assert_eq!(ir.answer(&q), rel.eval_scan(&q), "{q:?}");
        }
    }

    #[test]
    fn point_probe_is_logarithmic() {
        let n = 1i64 << 15;
        let ir = IndexedRelation::build(&big_relation(n), &[0]).unwrap();
        let meter = Meter::new();
        for v in [0i64, n / 2, n - 1, n + 5] {
            meter.take();
            ir.answer_metered(&SelectionQuery::point(0, v), &meter);
            assert_steps_within(meter.steps(), CostClass::Log, n as u64, 4.0);
        }
    }

    #[test]
    fn range_probe_is_logarithmic() {
        let n = 1i64 << 15;
        let ir = IndexedRelation::build(&big_relation(n), &[0]).unwrap();
        let meter = Meter::new();
        meter.take();
        ir.answer_metered(&SelectionQuery::range_closed(0, 5i64, 50i64), &meter);
        assert_steps_within(meter.steps(), CostClass::Log, n as u64, 4.0);
    }

    #[test]
    fn unindexed_column_falls_back_to_scan() {
        let rel = big_relation(100);
        let ir = IndexedRelation::build(&rel, &[0]).unwrap();
        let meter = Meter::new();
        ir.answer_metered(&SelectionQuery::point(1, "absent"), &meter);
        assert_eq!(meter.steps(), 100, "miss on unindexed column scans all");
    }

    #[test]
    fn inserts_are_visible_and_indexed() {
        let mut ir = IndexedRelation::build(&big_relation(10), &[0]).unwrap();
        assert!(!ir.answer(&SelectionQuery::point(0, 100i64)));
        ir.insert(vec![Value::Int(100), Value::str("x")]).unwrap();
        assert!(ir.answer(&SelectionQuery::point(0, 100i64)));
        assert_eq!(ir.len(), 11);
    }

    #[test]
    fn deletes_remove_from_queries_and_prune_postings() {
        // 20 rows: each city value appears twice (rows i and i+10).
        let mut ir = IndexedRelation::build(&big_relation(20), &[0, 1]).unwrap();
        // Row ids equal initial positions; delete id 3 (id value 3).
        let removed = ir.delete(3).expect("row 3 exists");
        assert_eq!(removed[0], Value::Int(3));
        assert!(!ir.answer(&SelectionQuery::point(0, 3i64)));
        assert_eq!(ir.len(), 19);
        // Double delete is a no-op.
        assert!(ir.delete(3).is_none());
        // Duplicate-valued column: row 13 still holds "city3".
        assert!(ir.answer(&SelectionQuery::point(1, "city3")));
    }

    #[test]
    fn delete_last_duplicate_removes_key() {
        let rel = Relation::from_rows(
            schema(),
            vec![
                vec![Value::Int(1), Value::str("solo")],
                vec![Value::Int(2), Value::str("pair")],
                vec![Value::Int(3), Value::str("pair")],
            ],
        )
        .unwrap();
        let mut ir = IndexedRelation::build(&rel, &[1]).unwrap();
        ir.delete(0);
        assert!(!ir.answer(&SelectionQuery::point(1, "solo")));
        ir.delete(1);
        assert!(
            ir.answer(&SelectionQuery::point(1, "pair")),
            "row 2 remains"
        );
        ir.delete(2);
        assert!(!ir.answer(&SelectionQuery::point(1, "pair")));
        assert!(ir.is_empty());
    }

    #[test]
    fn conjunction_routes_through_index_and_verifies() {
        let rel = big_relation(1000);
        let ir = IndexedRelation::build(&rel, &[1]).unwrap();
        let meter = Meter::new();
        let q = SelectionQuery::and(
            SelectionQuery::point(1, "city4"),
            SelectionQuery::range_closed(0, 700i64, 710i64),
        );
        let got = ir.answer_metered(&q, &meter);
        assert_eq!(got, rel.eval_scan(&q));
        // 100 candidates share city4; far fewer than a 1000-row scan.
        assert!(
            meter.steps() < 200,
            "conjunction probe cost {} suggests a full scan",
            meter.steps()
        );
    }

    #[test]
    fn build_rejects_out_of_range_index_columns() {
        // Regression: this used to panic with index-out-of-bounds inside
        // insert's index maintenance instead of reporting the bad column —
        // and later reported it as a bare `String` instead of a typed
        // error callers can match on.
        let rel = big_relation(10);
        assert_eq!(
            IndexedRelation::build(&rel, &[2]).unwrap_err(),
            IndexedError::ColumnOutOfRange { col: 2, arity: 2 }
        );
        assert_eq!(
            IndexedRelation::build(&rel, &[0, 99]).unwrap_err(),
            IndexedError::ColumnOutOfRange { col: 99, arity: 2 }
        );
        assert!(
            IndexedRelation::build(&rel, &[]).is_ok(),
            "no indexes is fine"
        );
    }

    #[test]
    fn errors_are_typed_and_std() {
        // Regression (stringly-typed error path): build/insert/from_parts
        // all return `IndexedError` now, a real `std::error::Error` with
        // distinct, specific Display per failure class.
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&IndexedError::KeysNotAscending { col: 1 });

        let mut ir = IndexedRelation::build(&big_relation(5), &[0]).unwrap();
        let err = ir.insert(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(err, IndexedError::RowRejected(_)), "{err}");

        let cases = [
            IndexedError::ColumnOutOfRange { col: 9, arity: 2 }.to_string(),
            IndexedError::RowRejected("arity".into()).to_string(),
            IndexedError::DuplicateIndex { col: 1 }.to_string(),
            IndexedError::KeysNotAscending { col: 1 }.to_string(),
            IndexedError::EmptyPosting {
                col: 1,
                key: "k".into(),
            }
            .to_string(),
            IndexedError::PostingNotAscending {
                col: 1,
                key: "k".into(),
            }
            .to_string(),
            IndexedError::DanglingPosting { col: 1, id: 7 }.to_string(),
            IndexedError::PostingCountMismatch {
                col: 1,
                posted: 3,
                live: 5,
            }
            .to_string(),
        ];
        let mut distinct = cases.to_vec();
        distinct.sort();
        distinct.dedup();
        assert_eq!(distinct.len(), cases.len(), "every variant is distinct");
    }

    #[test]
    fn conjunction_routes_through_range_conjunct() {
        // Regression: with only the *range* side indexed, the conjunction
        // used to degrade to a full scan.
        let rel = big_relation(1000);
        let ir = IndexedRelation::build(&rel, &[0]).unwrap();
        let meter = Meter::new();
        let q = SelectionQuery::and(
            SelectionQuery::point(1, "city4"),
            SelectionQuery::range_closed(0, 700i64, 710i64),
        );
        let got = ir.answer_metered(&q, &meter);
        assert_eq!(got, rel.eval_scan(&q));
        // 11 candidates in [700, 710]; far fewer than a 1000-row scan.
        assert!(
            meter.steps() < 100,
            "range-conjunct probe cost {} suggests a full scan",
            meter.steps()
        );
    }

    #[test]
    fn conjunction_routes_through_nested_and_shapes() {
        // Regression: a nested And(And(p, _), _) hid the indexed point
        // conjunct from the old top-level-only routing.
        let rel = big_relation(1000);
        let ir = IndexedRelation::build(&rel, &[1]).unwrap();
        let meter = Meter::new();
        let nested = SelectionQuery::and(
            SelectionQuery::and(
                SelectionQuery::range_closed(0, 0i64, 999i64),
                SelectionQuery::point(1, "city4"),
            ),
            SelectionQuery::range_closed(0, 700i64, 710i64),
        );
        let got = ir.answer_metered(&nested, &meter);
        assert_eq!(got, rel.eval_scan(&nested));
        assert!(
            meter.steps() < 200,
            "nested-And probe cost {} suggests a full scan",
            meter.steps()
        );
    }

    #[test]
    fn matching_ids_agree_with_scan_on_every_path() {
        let rel = big_relation(200);
        let mut ir = IndexedRelation::build(&rel, &[0, 1]).unwrap();
        ir.delete(42);
        let queries = vec![
            SelectionQuery::point(0, 41i64),
            SelectionQuery::point(0, 42i64), // deleted row
            SelectionQuery::point(1, "city7"),
            SelectionQuery::range_closed(0, 40i64, 45i64),
            SelectionQuery::and(
                SelectionQuery::point(1, "city1"),
                SelectionQuery::range_closed(0, 0i64, 60i64),
            ),
        ];
        let meter = Meter::new();
        for q in queries {
            let got = ir.matching_ids_metered(&q, &meter);
            let expect: Vec<usize> = (0..ir.rows.len())
                .filter(|&id| ir.row(id).is_some_and(|row| q.matches(row)))
                .collect();
            assert_eq!(got, expect, "{q:?}");
            assert_eq!(!got.is_empty(), ir.answer(&q), "bool/ids disagree {q:?}");
        }
    }

    #[test]
    fn row_ids_in_range_are_sorted_and_live() {
        let mut ir = IndexedRelation::build(&big_relation(50), &[0]).unwrap();
        ir.delete(10);
        let ids = ir.row_ids_in_range(
            0,
            &Bound::Included(Value::Int(8)),
            &Bound::Excluded(Value::Int(13)),
        );
        assert_eq!(ids, vec![8, 9, 11, 12]);
        assert!(ir
            .row_ids_in_range(1, &Bound::Unbounded, &Bound::Unbounded)
            .is_empty());
    }

    #[test]
    fn to_relation_roundtrips_live_rows() {
        let mut ir = IndexedRelation::build(&big_relation(5), &[0]).unwrap();
        ir.delete(2);
        let rel = ir.to_relation();
        assert_eq!(rel.len(), 4);
        assert!(!rel.eval_scan(&SelectionQuery::point(0, 2i64)));
    }

    fn export_parts(ir: &IndexedRelation) -> (Schema, Vec<Option<Vec<Value>>>, Vec<IndexEntries>) {
        let indexes = ir
            .indexed_columns()
            .into_iter()
            .map(|c| {
                let entries = ir
                    .index_postings(c)
                    .expect("column is indexed")
                    .into_iter()
                    .map(|(k, v)| (k.clone(), v.to_vec()))
                    .collect();
                (c, entries)
            })
            .collect();
        (ir.schema().clone(), ir.slots().to_vec(), indexes)
    }

    #[test]
    fn from_parts_preserves_answers_and_ids() {
        let mut ir = IndexedRelation::build(&big_relation(100), &[0, 1]).unwrap();
        ir.delete(17);
        ir.delete(40);
        ir.insert(vec![Value::Int(777), Value::str("late")])
            .unwrap();
        let (schema, slots, indexes) = export_parts(&ir);
        let rebuilt = IndexedRelation::from_parts(schema, slots, indexes).unwrap();
        assert_eq!(rebuilt.len(), ir.len());
        assert_eq!(rebuilt.slot_count(), ir.slot_count());
        assert_eq!(rebuilt.indexed_columns(), ir.indexed_columns());
        let meter = Meter::new();
        for q in [
            SelectionQuery::point(0, 17i64),
            SelectionQuery::point(0, 777i64),
            SelectionQuery::range_closed(0, 10i64, 45i64),
            SelectionQuery::and(
                SelectionQuery::point(1, "city3"),
                SelectionQuery::range_closed(0, 0i64, 60i64),
            ),
        ] {
            assert_eq!(rebuilt.answer(&q), ir.answer(&q), "{q:?}");
            assert_eq!(
                rebuilt.matching_ids_metered(&q, &meter),
                ir.matching_ids_metered(&q, &meter),
                "{q:?}"
            );
        }
    }

    #[test]
    fn from_parts_rejects_corrupt_structures() {
        let ir = IndexedRelation::build(&big_relation(10), &[0]).unwrap();
        let (schema, slots, indexes) = export_parts(&ir);

        // Index column out of range.
        let bad = vec![(5usize, Vec::new())];
        assert_eq!(
            IndexedRelation::from_parts(schema.clone(), slots.clone(), bad).unwrap_err(),
            IndexedError::ColumnOutOfRange { col: 5, arity: 2 }
        );

        // Posting pointing at a dead/mismatched row.
        let mut bad = indexes.clone();
        bad[0].1[0].1 = vec![9999];
        assert_eq!(
            IndexedRelation::from_parts(schema.clone(), slots.clone(), bad).unwrap_err(),
            IndexedError::DanglingPosting { col: 0, id: 9999 }
        );

        // Keys out of order.
        let mut bad = indexes.clone();
        bad[0].1.swap(0, 1);
        assert_eq!(
            IndexedRelation::from_parts(schema.clone(), slots.clone(), bad).unwrap_err(),
            IndexedError::KeysNotAscending { col: 0 }
        );

        // A posting silently dropped (index incomplete).
        let mut bad = indexes.clone();
        bad[0].1.remove(3);
        assert_eq!(
            IndexedRelation::from_parts(schema.clone(), slots.clone(), bad).unwrap_err(),
            IndexedError::PostingCountMismatch {
                col: 0,
                posted: 9,
                live: 10,
            }
        );

        // The unmodified export still loads.
        assert!(IndexedRelation::from_parts(schema, slots, indexes).is_ok());
    }

    #[test]
    fn index_postings_are_ascending_and_complete() {
        let mut ir = IndexedRelation::build(&big_relation(30), &[1]).unwrap();
        ir.delete(2);
        let postings = ir.index_postings(1).unwrap();
        assert!(postings.windows(2).all(|w| w[0].0 < w[1].0), "keys sorted");
        let total: usize = postings.iter().map(|(_, p)| p.len()).sum();
        assert_eq!(total, ir.len(), "one posting per live row");
        assert!(ir.index_postings(0).is_none(), "unindexed column");
    }

    #[test]
    fn row_ids_eq_returns_live_ids() {
        let ir = IndexedRelation::build(&big_relation(30), &[1]).unwrap();
        let ids = ir.row_ids_eq(1, &Value::str("city2"));
        assert_eq!(ids, vec![2, 12, 22]);
        assert!(ir.row_ids_eq(0, &Value::Int(1)).is_empty(), "unindexed col");
    }
}
