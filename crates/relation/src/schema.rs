//! Relation schemas: named, typed columns.

use crate::value::Value;

/// Column type tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// 64-bit integers.
    Int,
    /// UTF-8 strings.
    Str,
}

impl ColType {
    /// Does a value inhabit this type?
    pub fn admits(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (ColType::Int, Value::Int(_)) | (ColType::Str, Value::Str(_))
        )
    }
}

/// A relation schema: ordered list of `(name, type)` columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<(String, ColType)>,
}

impl Schema {
    /// Build a schema; column names must be distinct and nonempty.
    pub fn new(columns: &[(&str, ColType)]) -> Self {
        let mut seen = std::collections::HashSet::new();
        for (name, _) in columns {
            assert!(!name.is_empty(), "empty column name");
            assert!(seen.insert(*name), "duplicate column name {name:?}");
        }
        Schema {
            columns: columns.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
        }
    }

    /// Number of columns (arity).
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column index by name.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Column name by index.
    pub fn name(&self, col: usize) -> &str {
        &self.columns[col].0
    }

    /// Column type by index.
    pub fn col_type(&self, col: usize) -> ColType {
        self.columns[col].1
    }

    /// Validate a tuple against the schema.
    pub fn admits(&self, tuple: &[Value]) -> Result<(), String> {
        if tuple.len() != self.arity() {
            return Err(format!(
                "arity mismatch: tuple has {} values, schema has {} columns",
                tuple.len(),
                self.arity()
            ));
        }
        for (i, v) in tuple.iter().enumerate() {
            if !self.columns[i].1.admits(v) {
                return Err(format!(
                    "type mismatch in column {:?}: value {v}",
                    self.columns[i].0
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Schema {
        Schema::new(&[("id", ColType::Int), ("name", ColType::Str)])
    }

    #[test]
    fn lookup_by_name_and_index() {
        let s = people();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.col("id"), Some(0));
        assert_eq!(s.col("name"), Some(1));
        assert_eq!(s.col("missing"), None);
        assert_eq!(s.name(1), "name");
        assert_eq!(s.col_type(0), ColType::Int);
    }

    #[test]
    fn admits_validates_arity_and_types() {
        let s = people();
        assert!(s.admits(&[Value::Int(1), Value::str("ada")]).is_ok());
        assert!(s.admits(&[Value::Int(1)]).is_err());
        assert!(s.admits(&[Value::str("x"), Value::str("y")]).is_err());
        assert!(s
            .admits(&[Value::Int(1), Value::str("a"), Value::Int(2)])
            .is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_rejected() {
        Schema::new(&[("a", ColType::Int), ("a", ColType::Str)]);
    }

    #[test]
    #[should_panic(expected = "empty column name")]
    fn empty_name_rejected() {
        Schema::new(&[("", ColType::Int)]);
    }
}
