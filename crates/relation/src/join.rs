//! Equi-joins and Boolean join queries.
//!
//! The paper's related-work section contrasts its preprocessing model with
//! the MapReduce/MPC literature on *join* evaluation [Afrati–Ullman,
//! Koutris–Suciu]. To let the workspace express those workloads too, this
//! module adds equi-joins over the typed relations:
//!
//! * [`hash_join`] — classic build/probe hash join producing the combined
//!   relation;
//! * [`join_exists`] — the Boolean form ("is the join non-empty?"), which
//!   fits the paper's Boolean-query convention and gets both a
//!   nested-loop baseline and the hash fast path, metered for comparison.

use crate::relation::Relation;
use crate::schema::{ColType, Schema};
use crate::value::Value;
use pitract_core::cost::Meter;
use std::collections::HashMap;

/// Schema of `left ⋈ right`: all left columns then all right columns,
/// right names prefixed on clash.
fn joined_schema(left: &Schema, right: &Schema) -> Schema {
    let mut cols: Vec<(String, ColType)> = Vec::with_capacity(left.arity() + right.arity());
    for i in 0..left.arity() {
        cols.push((left.name(i).to_string(), left.col_type(i)));
    }
    for i in 0..right.arity() {
        let mut name = right.name(i).to_string();
        if cols.iter().any(|(n, _)| *n == name) {
            name = format!("right.{name}");
        }
        cols.push((name, right.col_type(i)));
    }
    let refs: Vec<(&str, ColType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    Schema::new(&refs)
}

/// Hash equi-join `left ⋈_{left.lcol = right.rcol} right`: build a hash
/// table on the smaller side, probe with the larger. O(|L| + |R| + |out|)
/// expected.
pub fn hash_join(left: &Relation, lcol: usize, right: &Relation, rcol: usize) -> Relation {
    assert!(lcol < left.schema().arity(), "left column out of range");
    assert!(rcol < right.schema().arity(), "right column out of range");
    let schema = joined_schema(left.schema(), right.schema());

    // Build on the smaller input.
    let swap = right.len() < left.len();
    let (build_rel, build_col, probe_rel, probe_col) = if swap {
        (right, rcol, left, lcol)
    } else {
        (left, lcol, right, rcol)
    };

    let mut table: HashMap<&Value, Vec<usize>> = HashMap::new();
    for (id, row) in build_rel.rows().iter().enumerate() {
        table.entry(&row[build_col]).or_default().push(id);
    }

    let mut out = Vec::new();
    for probe_row in probe_rel.rows() {
        if let Some(matches) = table.get(&probe_row[probe_col]) {
            for &bid in matches {
                let build_row = build_rel.row(bid);
                let (lrow, rrow) = if swap {
                    (probe_row.as_slice(), build_row)
                } else {
                    (build_row, probe_row.as_slice())
                };
                let mut combined = Vec::with_capacity(lrow.len() + rrow.len());
                combined.extend_from_slice(lrow);
                combined.extend_from_slice(rrow);
                out.push(combined);
            }
        }
    }
    Relation::from_rows(schema, out).expect("joined rows match joined schema")
}

/// Boolean join query: does any pair of tuples match? Hash path: expected
/// O(|L| + |R|), metered per build insert and probe.
pub fn join_exists(
    left: &Relation,
    lcol: usize,
    right: &Relation,
    rcol: usize,
    meter: &Meter,
) -> bool {
    let mut keys: HashMap<&Value, ()> = HashMap::new();
    for row in left.rows() {
        meter.tick();
        keys.insert(&row[lcol], ());
    }
    for row in right.rows() {
        meter.tick();
        if keys.contains_key(&row[rcol]) {
            return true;
        }
    }
    false
}

/// The nested-loop baseline for [`join_exists`]: O(|L| · |R|), metered per
/// comparison — the "PTIME but quadratic" curve joins contribute to the
/// preprocessing story.
pub fn join_exists_nested_loop(
    left: &Relation,
    lcol: usize,
    right: &Relation,
    rcol: usize,
    meter: &Meter,
) -> bool {
    for lrow in left.rows() {
        for rrow in right.rows() {
            meter.tick();
            if lrow[lcol] == rrow[rcol] {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColType;

    fn users() -> Relation {
        let schema = Schema::new(&[("uid", ColType::Int), ("name", ColType::Str)]);
        Relation::from_rows(
            schema,
            vec![
                vec![Value::Int(1), Value::str("ada")],
                vec![Value::Int(2), Value::str("bob")],
                vec![Value::Int(3), Value::str("cleo")],
            ],
        )
        .unwrap()
    }

    fn orders() -> Relation {
        let schema = Schema::new(&[("oid", ColType::Int), ("uid", ColType::Int)]);
        Relation::from_rows(
            schema,
            vec![
                vec![Value::Int(10), Value::Int(2)],
                vec![Value::Int(11), Value::Int(2)],
                vec![Value::Int(12), Value::Int(9)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn hash_join_produces_matching_pairs() {
        let j = hash_join(&users(), 0, &orders(), 1);
        assert_eq!(j.len(), 2, "bob has two orders, uid 9 matches nobody");
        assert_eq!(j.schema().arity(), 4);
        for row in j.rows() {
            assert_eq!(row[0], row[3], "join key columns must agree");
            assert_eq!(row[1], Value::str("bob"));
        }
    }

    #[test]
    fn joined_schema_disambiguates_clashing_names() {
        let j = hash_join(&users(), 0, &orders(), 1);
        assert_eq!(j.schema().name(0), "uid");
        assert_eq!(j.schema().name(2), "oid");
        assert_eq!(j.schema().name(3), "right.uid");
    }

    #[test]
    fn hash_join_equals_nested_loop_semantics() {
        // Cross-validate join row multiset against the naive definition.
        let l = users();
        let r = orders();
        let j = hash_join(&l, 0, &r, 1);
        let mut expect = 0;
        for lr in l.rows() {
            for rr in r.rows() {
                if lr[0] == rr[1] {
                    expect += 1;
                }
            }
        }
        assert_eq!(j.len(), expect);
    }

    #[test]
    fn join_exists_agrees_with_baseline() {
        let meter = Meter::new();
        let l = users();
        let r = orders();
        assert_eq!(
            join_exists(&l, 0, &r, 1, &meter),
            join_exists_nested_loop(&l, 0, &r, 1, &meter)
        );
        // Disjoint key spaces: both say no.
        let schema = Schema::new(&[("k", ColType::Int)]);
        let a = Relation::from_rows(schema.clone(), vec![vec![Value::Int(1)]]).unwrap();
        let b = Relation::from_rows(schema, vec![vec![Value::Int(2)]]).unwrap();
        assert!(!join_exists(&a, 0, &b, 0, &meter));
        assert!(!join_exists_nested_loop(&a, 0, &b, 0, &meter));
    }

    #[test]
    fn hash_path_beats_nested_loop_on_misses() {
        let meter = Meter::new();
        let n = 300i64;
        let schema = Schema::new(&[("k", ColType::Int)]);
        let a = Relation::from_rows(
            schema.clone(),
            (0..n).map(|i| vec![Value::Int(i)]).collect(),
        )
        .unwrap();
        let b = Relation::from_rows(
            schema,
            (0..n).map(|i| vec![Value::Int(i + 10_000)]).collect(),
        )
        .unwrap();
        join_exists(&a, 0, &b, 0, &meter);
        let hash_cost = meter.take();
        join_exists_nested_loop(&a, 0, &b, 0, &meter);
        let nl_cost = meter.take();
        assert_eq!(hash_cost, 2 * n as u64);
        assert_eq!(nl_cost, (n * n) as u64);
    }

    #[test]
    fn join_with_empty_side_is_empty() {
        let schema = Schema::new(&[("k", ColType::Int)]);
        let empty = Relation::new(schema);
        let j = hash_join(&users(), 0, &empty, 0);
        assert!(j.is_empty());
        let meter = Meter::new();
        assert!(!join_exists(&users(), 0, &empty, 0, &meter));
    }

    #[test]
    fn string_keyed_joins() {
        let s1 = Schema::new(&[("name", ColType::Str)]);
        let s2 = Schema::new(&[("who", ColType::Str), ("x", ColType::Int)]);
        let a = Relation::from_rows(s1, vec![vec![Value::str("ada")], vec![Value::str("zoe")]])
            .unwrap();
        let b = Relation::from_rows(s2, vec![vec![Value::str("zoe"), Value::Int(7)]]).unwrap();
        let j = hash_join(&a, 0, &b, 0);
        assert_eq!(j.len(), 1);
        assert_eq!(j.row(0)[2], Value::Int(7));
    }
}
