//! Boolean selection query classes — Section 4(1) of the paper.
//!
//! * **Point selection** (the class Q₁ of Example 1): is there a tuple with
//!   `t[A] = c`?
//! * **Range selection**: is there a tuple with `c₁ ≤ t[A] ≤ c₂`?
//! * **Conjunction**: both of the above on (possibly) different columns —
//!   closed under the rewriting used by the views case study.
//!
//! Queries reference columns by index; [`SelectionQuery::validate`] checks
//! them against a schema before evaluation, so malformed queries fail
//! loudly instead of silently returning false.

use crate::schema::Schema;
use crate::value::Value;
use std::ops::Bound;

/// A Boolean selection query.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectionQuery {
    /// `∃t : t[col] = value`.
    Point {
        /// Column index.
        col: usize,
        /// The constant `c`.
        value: Value,
    },
    /// `∃t : lo ≤ t[col] ≤ hi` (bounds as given).
    Range {
        /// Column index.
        col: usize,
        /// Lower bound.
        lo: Bound<Value>,
        /// Upper bound.
        hi: Bound<Value>,
    },
    /// Both sub-queries are witnessed **by the same tuple**.
    And(Box<SelectionQuery>, Box<SelectionQuery>),
}

impl SelectionQuery {
    /// Convenience constructor: point selection.
    pub fn point(col: usize, value: impl Into<Value>) -> Self {
        SelectionQuery::Point {
            col,
            value: value.into(),
        }
    }

    /// Convenience constructor: closed-interval range selection.
    pub fn range_closed(col: usize, lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        SelectionQuery::Range {
            col,
            lo: Bound::Included(lo.into()),
            hi: Bound::Included(hi.into()),
        }
    }

    /// Convenience constructor: conjunction.
    pub fn and(a: SelectionQuery, b: SelectionQuery) -> Self {
        SelectionQuery::And(Box::new(a), Box::new(b))
    }

    /// Check column references and type compatibility against a schema.
    pub fn validate(&self, schema: &Schema) -> Result<(), String> {
        match self {
            SelectionQuery::Point { col, value } => {
                if *col >= schema.arity() {
                    return Err(format!("column {col} out of range"));
                }
                if !schema.col_type(*col).admits(value) {
                    return Err(format!(
                        "point value {value} has wrong type for column {:?}",
                        schema.name(*col)
                    ));
                }
                Ok(())
            }
            SelectionQuery::Range { col, lo, hi } => {
                if *col >= schema.arity() {
                    return Err(format!("column {col} out of range"));
                }
                for b in [lo, hi] {
                    if let Bound::Included(v) | Bound::Excluded(v) = b {
                        if !schema.col_type(*col).admits(v) {
                            return Err(format!(
                                "range bound {v} has wrong type for column {:?}",
                                schema.name(*col)
                            ));
                        }
                    }
                }
                Ok(())
            }
            SelectionQuery::And(a, b) => {
                a.validate(schema)?;
                b.validate(schema)
            }
        }
    }

    /// Does a single tuple satisfy the query?
    pub fn matches(&self, tuple: &[Value]) -> bool {
        match self {
            SelectionQuery::Point { col, value } => &tuple[*col] == value,
            SelectionQuery::Range { col, lo, hi } => {
                let v = &tuple[*col];
                let above = match lo {
                    Bound::Unbounded => true,
                    Bound::Included(l) => v >= l,
                    Bound::Excluded(l) => v > l,
                };
                let below = match hi {
                    Bound::Unbounded => true,
                    Bound::Included(h) => v <= h,
                    Bound::Excluded(h) => v < h,
                };
                above && below
            }
            SelectionQuery::And(a, b) => a.matches(tuple) && b.matches(tuple),
        }
    }

    /// Flatten the conjunction tree into its leaf conjuncts, left to right.
    ///
    /// A `Point`/`Range` query is its own single conjunct; nested `And`s of
    /// any shape — `And(And(p, q), r)`, `And(p, And(q, r))` — flatten to the
    /// same leaf list. Index routing uses this so an indexed conjunct is
    /// found no matter where it sits in the tree.
    pub fn conjuncts(&self) -> Vec<&SelectionQuery> {
        let mut out = Vec::new();
        self.collect_conjuncts(&mut out);
        out
    }

    fn collect_conjuncts<'a>(&'a self, out: &mut Vec<&'a SelectionQuery>) {
        match self {
            SelectionQuery::And(a, b) => {
                a.collect_conjuncts(out);
                b.collect_conjuncts(out);
            }
            leaf => out.push(leaf),
        }
    }

    /// All columns the query touches (used by index routing and views).
    pub fn columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            SelectionQuery::Point { col, .. } | SelectionQuery::Range { col, .. } => out.push(*col),
            SelectionQuery::And(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColType;

    fn schema() -> Schema {
        Schema::new(&[("id", ColType::Int), ("city", ColType::Str)])
    }

    #[test]
    fn point_matches_equal_cells() {
        let q = SelectionQuery::point(0, 7i64);
        assert!(q.matches(&[Value::Int(7), Value::str("x")]));
        assert!(!q.matches(&[Value::Int(8), Value::str("x")]));
    }

    #[test]
    fn range_bound_combinations() {
        let t = [Value::Int(5), Value::str("x")];
        assert!(SelectionQuery::range_closed(0, 5i64, 5i64).matches(&t));
        assert!(SelectionQuery::Range {
            col: 0,
            lo: Bound::Excluded(Value::Int(4)),
            hi: Bound::Unbounded,
        }
        .matches(&t));
        assert!(!SelectionQuery::Range {
            col: 0,
            lo: Bound::Excluded(Value::Int(5)),
            hi: Bound::Unbounded,
        }
        .matches(&t));
        assert!(!SelectionQuery::Range {
            col: 0,
            lo: Bound::Unbounded,
            hi: Bound::Excluded(Value::Int(5)),
        }
        .matches(&t));
    }

    #[test]
    fn and_requires_one_witnessing_tuple() {
        let q = SelectionQuery::and(
            SelectionQuery::point(0, 1i64),
            SelectionQuery::point(1, "rome"),
        );
        assert!(q.matches(&[Value::Int(1), Value::str("rome")]));
        assert!(!q.matches(&[Value::Int(1), Value::str("oslo")]));
    }

    #[test]
    fn validate_catches_bad_columns_and_types() {
        let s = schema();
        assert!(SelectionQuery::point(0, 1i64).validate(&s).is_ok());
        assert!(SelectionQuery::point(5, 1i64).validate(&s).is_err());
        assert!(SelectionQuery::point(0, "str").validate(&s).is_err());
        assert!(SelectionQuery::range_closed(1, 1i64, 2i64)
            .validate(&s)
            .is_err());
        let nested_bad = SelectionQuery::and(
            SelectionQuery::point(0, 1i64),
            SelectionQuery::point(9, 1i64),
        );
        assert!(nested_bad.validate(&s).is_err());
    }

    #[test]
    fn conjuncts_flatten_every_and_shape() {
        let p = SelectionQuery::point(0, 1i64);
        let q = SelectionQuery::point(1, "a");
        let r = SelectionQuery::range_closed(0, 1i64, 2i64);
        let left_deep = SelectionQuery::and(SelectionQuery::and(p.clone(), q.clone()), r.clone());
        let right_deep = SelectionQuery::and(p.clone(), SelectionQuery::and(q.clone(), r.clone()));
        let expect = vec![&p, &q, &r];
        assert_eq!(left_deep.conjuncts(), expect);
        assert_eq!(right_deep.conjuncts(), expect);
        assert_eq!(p.conjuncts(), vec![&p], "a leaf is its own conjunct");
    }

    #[test]
    fn columns_are_collected_and_deduped() {
        let q = SelectionQuery::and(
            SelectionQuery::point(1, "a"),
            SelectionQuery::and(
                SelectionQuery::range_closed(0, 1i64, 2i64),
                SelectionQuery::point(1, "b"),
            ),
        );
        assert_eq!(q.columns(), vec![0, 1]);
    }
}
