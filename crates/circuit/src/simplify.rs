//! Circuit simplification: constant folding, algebraic identities and
//! dead-gate elimination.
//!
//! This is Section 4(5)'s *query-preserving compression* transplanted to
//! CVP: replace the circuit by a smaller circuit that answers **exactly
//! the same gate-value queries at the designated output for every input
//! vector**. Combined with the gate-table scheme it shrinks both the
//! preprocessing pass and the stored table — and, like the graph
//! compression, it is verified semantically (exhaustive input enumeration
//! for small input counts) rather than assumed.
//!
//! Rules applied (single forward pass, then reachability-based dead-code
//! elimination):
//!
//! * constant folding: any gate whose operands are constants;
//! * identities: `x∧1 = x`, `x∧0 = 0`, `x∨0 = x`, `x∨1 = 1`, `x⊕0 = x`,
//!   `¬¬x = x`, `x⊕1 = ¬x`;
//! * idempotence/annihilation on equal operands: `x∧x = x`, `x∨x = x`,
//!   `x⊕x = 0`.

use crate::circuit::{Circuit, CircuitError, Gate};

/// What a source gate becomes in the simplified circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Folded {
    /// A known constant.
    Const(bool),
    /// Behaves exactly like (already-folded) gate `g` of the source.
    Alias(usize),
}

/// Simplify a circuit, preserving the designated output's value on every
/// input vector. The result never has more gates than the input.
pub fn simplify(c: &Circuit) -> Circuit {
    let gates = c.gates();
    let n = gates.len();
    // folded[i]: what source gate i reduces to, in source-gate terms.
    let mut folded: Vec<Folded> = Vec::with_capacity(n);

    // Resolve an operand through alias chains (chains are short because
    // aliases always point at already-resolved gates).
    let resolve = |folded: &[Folded], mut g: usize| -> Folded {
        loop {
            match folded[g] {
                Folded::Alias(h) if h != g => g = h,
                other => return other,
            }
        }
    };

    for (i, gate) in gates.iter().enumerate() {
        let f = match *gate {
            Gate::Input(_) => Folded::Alias(i),
            Gate::Const(b) => Folded::Const(b),
            Gate::Not(a) => match resolve(&folded, a) {
                Folded::Const(b) => Folded::Const(!b),
                Folded::Alias(x) => {
                    // ¬¬x = x.
                    if let Gate::Not(inner) = gates[x] {
                        resolve(&folded, inner)
                    } else {
                        Folded::Alias(i)
                    }
                }
            },
            Gate::And(a, b) => fold_binary(&folded, &resolve, a, b, i, BinOp::And),
            Gate::Or(a, b) => fold_binary(&folded, &resolve, a, b, i, BinOp::Or),
            Gate::Xor(a, b) => fold_binary(&folded, &resolve, a, b, i, BinOp::Xor),
        };
        folded.push(f);
    }

    // Rebuild: emit only gates that are (a) their own representative and
    // (b) reachable from the folded output.
    let out = resolve(&folded, c.output());
    let mut keep = vec![false; n];
    match out {
        Folded::Const(_) => {}
        Folded::Alias(root) => {
            let mut stack = vec![root];
            while let Some(g) = stack.pop() {
                if keep[g] {
                    continue;
                }
                keep[g] = true;
                let ops: [Option<usize>; 2] = match gates[g] {
                    Gate::Input(_) | Gate::Const(_) => [None, None],
                    Gate::Not(a) => [Some(a), None],
                    Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => [Some(a), Some(b)],
                };
                for op in ops.into_iter().flatten() {
                    if let Folded::Alias(x) = resolve(&folded, op) {
                        stack.push(x);
                    }
                }
            }
        }
    }

    let mut new_id = vec![usize::MAX; n];
    let mut new_gates: Vec<Gate> = Vec::new();
    // Emitting in source order keeps operands before users.
    for g in 0..n {
        if !keep[g] {
            continue;
        }
        let remap = |op: usize, new_gates: &mut Vec<Gate>, new_id: &[usize]| -> usize {
            match resolve(&folded, op) {
                Folded::Alias(x) => new_id[x],
                Folded::Const(b) => {
                    // Materialize the constant just before its user.
                    new_gates.push(Gate::Const(b));
                    new_gates.len() - 1
                }
            }
        };
        let emitted = match gates[g] {
            Gate::Input(k) => Gate::Input(k),
            Gate::Const(b) => Gate::Const(b),
            Gate::Not(a) => {
                let ra = remap(a, &mut new_gates, &new_id);
                Gate::Not(ra)
            }
            Gate::And(a, b) => {
                let (ra, rb) = (
                    remap(a, &mut new_gates, &new_id),
                    remap(b, &mut new_gates, &new_id),
                );
                Gate::And(ra, rb)
            }
            Gate::Or(a, b) => {
                let (ra, rb) = (
                    remap(a, &mut new_gates, &new_id),
                    remap(b, &mut new_gates, &new_id),
                );
                Gate::Or(ra, rb)
            }
            Gate::Xor(a, b) => {
                let (ra, rb) = (
                    remap(a, &mut new_gates, &new_id),
                    remap(b, &mut new_gates, &new_id),
                );
                Gate::Xor(ra, rb)
            }
        };
        new_gates.push(emitted);
        new_id[g] = new_gates.len() - 1;
    }

    let output = match out {
        Folded::Const(b) => {
            new_gates.push(Gate::Const(b));
            new_gates.len() - 1
        }
        Folded::Alias(root) => new_id[root],
    };
    match Circuit::new(c.input_count(), new_gates, output) {
        Ok(simplified) => simplified,
        Err(CircuitError::Empty) => unreachable!("output gate always emitted"),
        Err(e) => unreachable!("simplifier emitted invalid circuit: {e:?}"),
    }
}

enum BinOp {
    And,
    Or,
    Xor,
}

fn fold_binary(
    folded: &[Folded],
    resolve: &impl Fn(&[Folded], usize) -> Folded,
    a: usize,
    b: usize,
    this: usize,
    op: BinOp,
) -> Folded {
    let (fa, fb) = (resolve(folded, a), resolve(folded, b));
    match (fa, fb, op) {
        // Both constants: fold fully.
        (Folded::Const(x), Folded::Const(y), BinOp::And) => Folded::Const(x && y),
        (Folded::Const(x), Folded::Const(y), BinOp::Or) => Folded::Const(x || y),
        (Folded::Const(x), Folded::Const(y), BinOp::Xor) => Folded::Const(x ^ y),
        // One constant: identities / annihilators.
        (Folded::Const(true), Folded::Alias(x), BinOp::And)
        | (Folded::Alias(x), Folded::Const(true), BinOp::And)
        | (Folded::Const(false), Folded::Alias(x), BinOp::Or)
        | (Folded::Alias(x), Folded::Const(false), BinOp::Or)
        | (Folded::Const(false), Folded::Alias(x), BinOp::Xor)
        | (Folded::Alias(x), Folded::Const(false), BinOp::Xor) => Folded::Alias(x),
        (Folded::Const(false), _, BinOp::And) | (_, Folded::Const(false), BinOp::And) => {
            Folded::Const(false)
        }
        (Folded::Const(true), _, BinOp::Or) | (_, Folded::Const(true), BinOp::Or) => {
            Folded::Const(true)
        }
        // x ⊕ 1 = ¬x: keep the gate (it still computes correctly) — no
        // alias is possible since the value differs from both operands.
        (Folded::Const(true), Folded::Alias(_), BinOp::Xor)
        | (Folded::Alias(_), Folded::Const(true), BinOp::Xor) => Folded::Alias(this),
        // Equal operands.
        (Folded::Alias(x), Folded::Alias(y), BinOp::And) if x == y => Folded::Alias(x),
        (Folded::Alias(x), Folded::Alias(y), BinOp::Or) if x == y => Folded::Alias(x),
        (Folded::Alias(x), Folded::Alias(y), BinOp::Xor) if x == y => Folded::Const(false),
        // Irreducible.
        _ => Folded::Alias(this),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{adder_equals, layered, to_bits};

    /// Exhaustive semantic equivalence for circuits with ≤ 12 inputs.
    fn assert_equivalent(original: &Circuit, simplified: &Circuit) {
        assert_eq!(original.input_count(), simplified.input_count());
        let k = original.input_count();
        assert!(k <= 12, "exhaustive check capped at 12 inputs");
        for pattern in 0..(1u32 << k) {
            let inputs: Vec<bool> = (0..k).map(|i| (pattern >> i) & 1 == 1).collect();
            assert_eq!(
                original.evaluate(&inputs),
                simplified.evaluate(&inputs),
                "pattern {pattern:b}"
            );
        }
    }

    #[test]
    fn folds_pure_constant_circuits_to_one_gate() {
        let c = Circuit::new(
            1,
            vec![
                Gate::Const(true),
                Gate::Const(false),
                Gate::And(0, 1),
                Gate::Or(2, 0),
                Gate::Not(3),
            ],
            4,
        )
        .unwrap();
        let s = simplify(&c);
        assert_eq!(s.size(), 1, "everything folds to a constant");
        assert_equivalent(&c, &s);
        assert!(!s.evaluate(&[false]));
    }

    #[test]
    fn identities_collapse_to_inputs() {
        // ((x ∧ 1) ∨ 0) ⊕ 0  ≡  x
        let c = Circuit::new(
            1,
            vec![
                Gate::Input(0),
                Gate::Const(true),
                Gate::And(0, 1),
                Gate::Const(false),
                Gate::Or(2, 3),
                Gate::Xor(4, 3),
            ],
            5,
        )
        .unwrap();
        let s = simplify(&c);
        assert_equivalent(&c, &s);
        assert_eq!(
            s.size(),
            1,
            "collapses to the bare input, got {:?}",
            s.gates()
        );
    }

    #[test]
    fn double_negation_and_idempotence() {
        // ¬¬x ∧ x ≡ x ; x ⊕ x ≡ 0.
        let c = Circuit::new(
            1,
            vec![
                Gate::Input(0),
                Gate::Not(0),
                Gate::Not(1),
                Gate::And(2, 0),
                Gate::Xor(3, 3),
            ],
            4,
        )
        .unwrap();
        let s = simplify(&c);
        assert_equivalent(&c, &s);
        assert_eq!(s.size(), 1, "x⊕x folds to the constant false");
    }

    #[test]
    fn dead_gates_are_eliminated() {
        // A large unused arm next to a tiny live one.
        let mut gates = vec![Gate::Input(0), Gate::Input(1)];
        for i in 0..40 {
            gates.push(Gate::Xor(i % 2, (i + 1) % 2));
        }
        gates.push(Gate::And(0, 1)); // the only live gate
        let live = gates.len() - 1;
        let c = Circuit::new(2, gates, live).unwrap();
        let s = simplify(&c);
        assert_equivalent(&c, &s);
        assert_eq!(s.size(), 3, "inputs + the single AND survive");
    }

    #[test]
    fn adder_with_constant_comparison_shrinks() {
        let c = adder_equals(6, 17);
        let s = simplify(&c);
        assert_equivalent(&c, &s);
        assert!(
            s.size() < c.size(),
            "constant target bits should fold: {} vs {}",
            s.size(),
            c.size()
        );
        // Spot semantic check on the real carry chain.
        let mut inputs = to_bits(9, 6);
        inputs.extend(to_bits(8, 6));
        assert!(s.evaluate(&inputs));
    }

    #[test]
    fn random_layered_circuits_stay_equivalent() {
        for seed in 0..10u64 {
            let c = layered(6, 12, 5, seed);
            let s = simplify(&c);
            assert_equivalent(&c, &s);
            assert!(s.size() <= c.size());
        }
    }

    #[test]
    fn simplified_gate_table_preserves_output_queries() {
        // The compression composes with the Π-tractability scheme: the
        // simplified circuit's gate table answers the designated output
        // identically for every input vector.
        let c = layered(8, 10, 6, 3);
        let s = simplify(&c);
        for pattern in [0u32, 1, 17, 200, 255] {
            let inputs: Vec<bool> = (0..8).map(|i| (pattern >> i) & 1 == 1).collect();
            assert_eq!(
                s.gate_table(&inputs)[s.output()],
                c.gate_table(&inputs)[c.output()]
            );
        }
    }

    #[test]
    fn idempotent_simplification() {
        let c = layered(5, 8, 4, 9);
        let once = simplify(&c);
        let twice = simplify(&once);
        assert_eq!(once.size(), twice.size(), "second pass finds nothing new");
        assert_equivalent(&once, &twice);
    }
}
