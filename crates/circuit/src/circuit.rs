//! Straight-line Boolean circuits and their evaluation.
//!
//! The encoding follows the paper's α¯ ("a sequence of tuples, one for each
//! node in the DAG"): gate `i` may only reference gates `< i`, which makes
//! every well-formed gate list a DAG by construction and evaluation a
//! single left-to-right pass.

use pitract_core::cost::Meter;
use pitract_core::encode::Encode;
use pitract_pram::machine::Cost;

/// One gate of a straight-line circuit. Operand indices must be smaller
/// than the gate's own index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// The `k`-th circuit input.
    Input(usize),
    /// A Boolean constant.
    Const(bool),
    /// Negation.
    Not(usize),
    /// Conjunction.
    And(usize, usize),
    /// Disjunction.
    Or(usize, usize),
    /// Exclusive or.
    Xor(usize, usize),
}

/// Validation errors for [`Circuit::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitError {
    /// Gate `gate` references operand `operand ≥ gate` (forward/self edge).
    ForwardReference {
        /// Offending gate index.
        gate: usize,
        /// The operand that points forward.
        operand: usize,
    },
    /// Gate references input index ≥ declared input count.
    BadInput {
        /// Offending gate index.
        gate: usize,
        /// The invalid input position.
        input: usize,
    },
    /// The designated output gate does not exist.
    BadOutput(usize),
    /// The circuit has no gates.
    Empty,
}

/// A straight-line Boolean circuit with a designated output gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    inputs: usize,
    gates: Vec<Gate>,
    output: usize,
}

impl Circuit {
    /// Validate and construct. Operands must point strictly backwards;
    /// input references must fit `inputs`; `output` must be a gate index.
    pub fn new(inputs: usize, gates: Vec<Gate>, output: usize) -> Result<Self, CircuitError> {
        if gates.is_empty() {
            return Err(CircuitError::Empty);
        }
        for (i, g) in gates.iter().enumerate() {
            let operands: &[usize] = match g {
                Gate::Input(k) => {
                    if *k >= inputs {
                        return Err(CircuitError::BadInput { gate: i, input: *k });
                    }
                    &[]
                }
                Gate::Const(_) => &[],
                Gate::Not(a) => std::slice::from_ref(a),
                Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => {
                    // Check both below via a temporary.
                    if *a >= i {
                        return Err(CircuitError::ForwardReference {
                            gate: i,
                            operand: *a,
                        });
                    }
                    std::slice::from_ref(b)
                }
            };
            for &op in operands {
                if op >= i {
                    return Err(CircuitError::ForwardReference {
                        gate: i,
                        operand: op,
                    });
                }
            }
        }
        if output >= gates.len() {
            return Err(CircuitError::BadOutput(output));
        }
        Ok(Circuit {
            inputs,
            gates,
            output,
        })
    }

    /// Number of declared inputs.
    pub fn input_count(&self) -> usize {
        self.inputs
    }

    /// Number of gates |α|.
    pub fn size(&self) -> usize {
        self.gates.len()
    }

    /// The designated output gate.
    pub fn output(&self) -> usize {
        self.output
    }

    /// The gate list (the α¯ encoding's payload).
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Retarget the designated output (validated).
    pub fn with_output(&self, output: usize) -> Result<Circuit, CircuitError> {
        if output >= self.gates.len() {
            return Err(CircuitError::BadOutput(output));
        }
        let mut c = self.clone();
        c.output = output;
        Ok(c)
    }

    /// Evaluate every gate (the gate table): one pass, O(|α|).
    ///
    /// Panics if `inputs` has the wrong length — an input-arity mismatch is
    /// a caller bug, mirroring the problem statement's fixed x₁…xₙ.
    pub fn gate_table(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.inputs,
            "expected {} inputs, got {}",
            self.inputs,
            inputs.len()
        );
        let mut vals: Vec<bool> = Vec::with_capacity(self.gates.len());
        for g in &self.gates {
            let v = match *g {
                Gate::Input(k) => inputs[k],
                Gate::Const(b) => b,
                Gate::Not(a) => !vals[a],
                Gate::And(a, b) => vals[a] && vals[b],
                Gate::Or(a, b) => vals[a] || vals[b],
                Gate::Xor(a, b) => vals[a] ^ vals[b],
            };
            vals.push(v);
        }
        vals
    }

    /// CVP: the value of the designated output.
    pub fn evaluate(&self, inputs: &[bool]) -> bool {
        self.gate_table(inputs)[self.output]
    }

    /// Metered evaluation: one tick per gate — the PTIME per-query price of
    /// the Υ₀ factorization (E11's baseline curve).
    pub fn evaluate_metered(&self, inputs: &[bool], meter: &Meter) -> bool {
        meter.add(self.gates.len() as u64);
        self.evaluate(inputs)
    }

    /// Evaluate under the PRAM cost model: all gates of equal depth fire
    /// together, so the parallel time is the circuit *depth* — polylog only
    /// for shallow circuits, which is exactly why CVP (unbounded depth) is
    /// not known to be in NC.
    pub fn evaluate_parallel_model(&self, inputs: &[bool]) -> (bool, Cost) {
        let table = self.gate_table(inputs);
        let depths = self.gate_depths();
        let max_depth = depths.iter().copied().max().unwrap_or(0);
        (
            table[self.output],
            Cost {
                work: self.gates.len() as u64,
                depth: max_depth + 1,
            },
        )
    }

    /// Depth of each gate (inputs/constants at 0).
    pub fn gate_depths(&self) -> Vec<u64> {
        let mut d = Vec::with_capacity(self.gates.len());
        for g in &self.gates {
            let v = match *g {
                Gate::Input(_) | Gate::Const(_) => 0,
                Gate::Not(a) => d[a] + 1,
                Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => std::cmp::max(d[a], d[b]) + 1,
            };
            d.push(v);
        }
        d
    }

    /// Circuit depth (longest gate chain).
    pub fn depth(&self) -> u64 {
        self.gate_depths().into_iter().max().unwrap_or(0)
    }
}

impl Encode for Gate {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match *self {
            Gate::Input(k) => {
                out.push(0);
                k.encode_into(out);
            }
            Gate::Const(b) => {
                out.push(1);
                b.encode_into(out);
            }
            Gate::Not(a) => {
                out.push(2);
                a.encode_into(out);
            }
            Gate::And(a, b) => {
                out.push(3);
                (a, b).encode_into(out);
            }
            Gate::Or(a, b) => {
                out.push(4);
                (a, b).encode_into(out);
            }
            Gate::Xor(a, b) => {
                out.push(5);
                (a, b).encode_into(out);
            }
        }
    }
}

impl Encode for Circuit {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.inputs.encode_into(out);
        self.gates.encode_into(out);
        self.output.encode_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (x0 AND x1) OR (NOT x2)
    fn sample() -> Circuit {
        Circuit::new(
            3,
            vec![
                Gate::Input(0),
                Gate::Input(1),
                Gate::Input(2),
                Gate::And(0, 1),
                Gate::Not(2),
                Gate::Or(3, 4),
            ],
            5,
        )
        .unwrap()
    }

    #[test]
    fn evaluates_truth_table() {
        let c = sample();
        for x0 in [false, true] {
            for x1 in [false, true] {
                for x2 in [false, true] {
                    let expect = (x0 && x1) || !x2;
                    assert_eq!(c.evaluate(&[x0, x1, x2]), expect, "{x0} {x1} {x2}");
                }
            }
        }
    }

    #[test]
    fn gate_table_exposes_every_gate() {
        let c = sample();
        let t = c.gate_table(&[true, false, false]);
        assert_eq!(t, vec![true, false, false, false, true, true]);
    }

    #[test]
    fn xor_and_const_gates() {
        let c = Circuit::new(
            1,
            vec![Gate::Input(0), Gate::Const(true), Gate::Xor(0, 1)],
            2,
        )
        .unwrap();
        assert!(c.evaluate(&[false]));
        assert!(!c.evaluate(&[true]));
    }

    #[test]
    fn validation_rejects_malformed_circuits() {
        assert_eq!(Circuit::new(1, vec![], 0).unwrap_err(), CircuitError::Empty);
        assert_eq!(
            Circuit::new(1, vec![Gate::Not(0)], 0).unwrap_err(),
            CircuitError::ForwardReference {
                gate: 0,
                operand: 0
            }
        );
        assert_eq!(
            Circuit::new(1, vec![Gate::Input(0), Gate::And(0, 1)], 1).unwrap_err(),
            CircuitError::ForwardReference {
                gate: 1,
                operand: 1
            }
        );
        assert_eq!(
            Circuit::new(1, vec![Gate::Input(5)], 0).unwrap_err(),
            CircuitError::BadInput { gate: 0, input: 5 }
        );
        assert_eq!(
            Circuit::new(1, vec![Gate::Input(0)], 3).unwrap_err(),
            CircuitError::BadOutput(3)
        );
    }

    #[test]
    fn forward_reference_in_first_operand_caught() {
        assert_eq!(
            Circuit::new(1, vec![Gate::Input(0), Gate::And(1, 0)], 1).unwrap_err(),
            CircuitError::ForwardReference {
                gate: 1,
                operand: 1
            }
        );
    }

    #[test]
    fn depth_tracks_longest_chain() {
        let c = sample();
        assert_eq!(c.depth(), 2);
        assert_eq!(c.gate_depths(), vec![0, 0, 0, 1, 1, 2]);
    }

    #[test]
    fn parallel_model_depth_equals_circuit_depth() {
        let c = sample();
        let (v, cost) = c.evaluate_parallel_model(&[true, true, true]);
        assert!(v);
        assert_eq!(cost.depth, c.depth() + 1);
        assert_eq!(cost.work, c.size() as u64);
    }

    #[test]
    fn metered_evaluation_charges_every_gate() {
        let c = sample();
        let meter = Meter::new();
        c.evaluate_metered(&[true, true, true], &meter);
        assert_eq!(meter.steps(), 6);
    }

    #[test]
    fn with_output_retargets() {
        let c = sample();
        let c2 = c.with_output(3).unwrap();
        assert!(c2.evaluate(&[true, true, false]));
        assert!(!c2.evaluate(&[true, false, false]));
        assert!(c.with_output(17).is_err());
    }

    #[test]
    #[should_panic(expected = "expected 3 inputs")]
    fn wrong_input_arity_panics() {
        sample().evaluate(&[true]);
    }

    #[test]
    fn encoding_is_injective_on_small_variations() {
        use pitract_core::encode::Encode;
        let a = sample().encoded();
        let b = sample().with_output(3).unwrap().encoded();
        assert_ne!(a, b);
    }
}
