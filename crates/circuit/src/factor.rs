//! The two faces of CVP in the Π-tractability framework.
//!
//! * [`upsilon0`] + [`upsilon0_scheme`] — Theorem 9's witness: the
//!   factorization `Υ₀` with `π₁(x) = ε` leaves nothing to preprocess.
//!   The best any scheme can then do is evaluate the whole P-complete
//!   instance at query time; the scheme is *correct* but its answering
//!   cost is linear in the circuit, so it fails Definition 1 — and E11
//!   shows the failure experimentally.
//! * [`gate_factorization`] + [`gate_table_scheme`] — the re-factorization
//!   that makes CVP Π-tractable (Corollary 6's concrete instance): the
//!   circuit and its inputs become the data part, the designated output
//!   gate becomes the query. Preprocessing evaluates every gate once
//!   (PTIME); each query is then one table probe (O(1) ⊆ NC).
//! * [`all_data_factorization`] + [`solve_at_preprocess_scheme`] — the
//!   `S'_CVP` shape from Proposition 10: everything is data, the query is
//!   ε, preprocessing simply solves the instance.

use crate::circuit::Circuit;
use pitract_core::cost::CostClass;
use pitract_core::factor::{
    trivial_data_factorization, trivial_query_factorization, FnFactorization,
};
use pitract_core::problem::FnProblem;
use pitract_core::scheme::Scheme;

/// A CVP instance: a circuit (with designated output) plus its inputs.
pub type CvpInstance = (Circuit, Vec<bool>);

/// The CVP decision problem: does the designated output evaluate to true?
pub fn cvp_problem() -> FnProblem<CvpInstance> {
    FnProblem::new("CVP", |x: &CvpInstance| x.0.evaluate(&x.1))
}

/// `Υ₀`: everything is query, the data part is empty (Theorem 9).
pub fn upsilon0() -> FnFactorization<CvpInstance, (), CvpInstance> {
    trivial_data_factorization::<CvpInstance>()
}

/// The only honest scheme available under `Υ₀`: preprocess the empty data
/// (a constant), evaluate the whole circuit per query. Correct — but its
/// cost annotation is `Linear`, so [`Scheme::claims_pi_tractable`] is
/// `false`: this value *is* the paper's separation, stated in code.
pub fn upsilon0_scheme() -> Scheme<(), (), CvpInstance> {
    Scheme::new(
        "CVP@Υ₀ (evaluate per query)",
        CostClass::Constant,
        CostClass::Linear,
        |_d: &()| (),
        |_p: &(), q: &CvpInstance| q.0.evaluate(&q.1),
    )
}

/// The re-factorization that rescues CVP: data = (circuit canonicalized to
/// output 0, inputs), query = the designated gate. `ρ` re-targets the
/// output, so the roundtrip law holds.
pub fn gate_factorization() -> FnFactorization<CvpInstance, CvpInstance, usize> {
    FnFactorization::new(
        "Υ_gate",
        |x: &CvpInstance| {
            let canonical = x.0.with_output(0).expect("gate 0 exists");
            (canonical, x.1.clone())
        },
        |x: &CvpInstance| x.0.output(),
        |d: &CvpInstance, q: &usize| {
            (
                d.0.with_output(*q).expect("query names an existing gate"),
                d.1.clone(),
            )
        },
    )
}

/// The Π-tractability scheme for CVP under [`gate_factorization`]:
/// preprocessing evaluates the full gate table (PTIME, one pass), each
/// query probes one entry (O(1)).
pub fn gate_table_scheme() -> Scheme<CvpInstance, Vec<bool>, usize> {
    Scheme::new(
        "CVP@Υ_gate (gate table)",
        CostClass::Linear,
        CostClass::Constant,
        |d: &CvpInstance| d.0.gate_table(&d.1),
        |table: &Vec<bool>, gate: &usize| table.get(*gate).copied().unwrap_or(false),
    )
}

/// The `S'_CVP` factorization of Proposition 10: everything is data.
pub fn all_data_factorization() -> FnFactorization<CvpInstance, CvpInstance, ()> {
    trivial_query_factorization::<CvpInstance>()
}

/// Trivially Π-tractable scheme for the all-data factorization: PTIME
/// preprocessing solves the instance outright; queries read one bit.
pub fn solve_at_preprocess_scheme() -> Scheme<CvpInstance, bool, ()> {
    Scheme::new(
        "CVP@all-data (solve at preprocessing)",
        CostClass::Linear,
        CostClass::Constant,
        |d: &CvpInstance| d.0.evaluate(&d.1),
        |answer: &bool, _q: &()| *answer,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{layered, to_bits};
    use pitract_core::cost::Meter;
    use pitract_core::factor::Factorization;
    use pitract_core::problem::{check_proposition_1, DecisionProblem};

    fn instances() -> Vec<CvpInstance> {
        (0..6u64)
            .map(|seed| {
                let c = layered(6, 8, 4, seed);
                let inputs = to_bits(seed.wrapping_mul(37), 6);
                (c, inputs)
            })
            .collect()
    }

    #[test]
    fn factorizations_satisfy_proposition_1() {
        let p = cvp_problem();
        let xs = instances();
        assert!(check_proposition_1(&p, &upsilon0(), &xs));
        assert!(check_proposition_1(&p, &gate_factorization(), &xs));
        assert!(check_proposition_1(&p, &all_data_factorization(), &xs));
    }

    #[test]
    fn upsilon0_scheme_is_correct_but_not_tractable() {
        let scheme = upsilon0_scheme();
        assert!(
            !scheme.claims_pi_tractable(),
            "Theorem 9: Υ₀ cannot claim NC"
        );
        let p = cvp_problem();
        for x in instances() {
            let f = upsilon0();
            f.pi1(&x);
            let q = f.pi2(&x);
            scheme.preprocess(&());
            assert_eq!(scheme.answer(&(), &q), p.accepts(&x));
        }
    }

    #[test]
    fn gate_table_scheme_is_correct_and_tractable() {
        let scheme = gate_table_scheme();
        assert!(scheme.claims_pi_tractable());
        let p = cvp_problem();
        for x in instances() {
            let f = gate_factorization();
            let d = f.pi1(&x);
            let q = f.pi2(&x);
            let pre = scheme.preprocess(&d);
            assert_eq!(scheme.answer(&pre, &q), p.accepts(&x), "{q}");
        }
    }

    #[test]
    fn gate_table_answers_every_gate_not_just_the_output() {
        let x = instances().pop().unwrap();
        let f = gate_factorization();
        let d = f.pi1(&x);
        let scheme = gate_table_scheme();
        let pre = scheme.preprocess(&d);
        let truth = x.0.gate_table(&x.1);
        for (g, &expect) in truth.iter().enumerate() {
            assert_eq!(scheme.answer(&pre, &g), expect, "gate {g}");
        }
        // Out-of-range gates answer false rather than panicking: queries
        // are external input in this framing.
        assert!(!scheme.answer(&pre, &usize::MAX));
    }

    #[test]
    fn per_query_cost_gap_between_factorizations() {
        // Υ₀: the per-query cost grows with the circuit.
        let meter = Meter::new();
        let small = layered(4, 4, 4, 1);
        let big = layered(4, 128, 16, 1);
        small.evaluate_metered(&[true; 4], &meter);
        let small_cost = meter.take();
        big.evaluate_metered(&[true; 4], &meter);
        let big_cost = meter.take();
        assert!(big_cost > small_cost * 20, "{small_cost} vs {big_cost}");
        // Υ_gate: one probe regardless of size (cost model: O(1) lookup).
        let scheme = gate_table_scheme();
        let pre = scheme.preprocess(&(big.clone(), vec![true; 4]));
        assert_eq!(pre.len(), big.size());
    }

    #[test]
    fn solve_at_preprocess_matches_cvp() {
        let scheme = solve_at_preprocess_scheme();
        assert!(scheme.claims_pi_tractable());
        let p = cvp_problem();
        for x in instances() {
            let pre = scheme.preprocess(&x);
            assert_eq!(scheme.answer(&pre, &()), p.accepts(&x));
        }
    }
}
