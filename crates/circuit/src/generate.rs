//! Circuit generators for the CVP experiments.

use crate::circuit::{Circuit, Gate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random layered circuit: `width` gates per layer, `layers` layers, each
/// gate combining two uniform picks from the previous layer with a random
/// binary operator. Depth grows linearly with `layers` — the deep/
/// sequential workload of E11.
pub fn layered(inputs: usize, layers: usize, width: usize, seed: u64) -> Circuit {
    assert!(inputs >= 1 && layers >= 1 && width >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gates: Vec<Gate> = (0..inputs).map(Gate::Input).collect();
    let mut prev_layer: Vec<usize> = (0..inputs).collect();
    for _ in 0..layers {
        let mut layer = Vec::with_capacity(width);
        for _ in 0..width {
            let a = prev_layer[rng.gen_range(0..prev_layer.len())];
            let b = prev_layer[rng.gen_range(0..prev_layer.len())];
            let gate = match rng.gen_range(0..4) {
                0 => Gate::And(a, b),
                1 => Gate::Or(a, b),
                2 => Gate::Xor(a, b),
                _ => Gate::Not(a),
            };
            layer.push(gates.len());
            gates.push(gate);
        }
        prev_layer = layer;
    }
    let output = *prev_layer.last().expect("nonempty layer");
    Circuit::new(inputs, gates, output).expect("generator emits valid circuits")
}

/// A balanced AND-tree over `2^k` inputs: depth k, the shallow/NC-friendly
/// contrast workload.
pub fn and_tree(k: u32) -> Circuit {
    let inputs = 1usize << k;
    let mut gates: Vec<Gate> = (0..inputs).map(Gate::Input).collect();
    let mut layer: Vec<usize> = (0..inputs).collect();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            let idx = gates.len();
            gates.push(Gate::And(pair[0], pair[1]));
            next.push(idx);
        }
        layer = next;
    }
    let output = layer[0];
    Circuit::new(inputs, gates, output).expect("tree is valid")
}

/// Ripple-carry adder comparing `a + b == target` bit-for-bit over `bits`
/// bits — an arithmetic-flavoured CVP family whose answer tests real
/// propagation chains. Inputs: `a` bits then `b` bits (LSB first).
pub fn adder_equals(bits: usize, target: u64) -> Circuit {
    assert!((1..=63).contains(&bits));
    let inputs = 2 * bits;
    let mut gates: Vec<Gate> = (0..inputs).map(Gate::Input).collect();
    let a = |i: usize| i;
    let b = |i: usize| bits + i;

    let push = |g: Gate, gates: &mut Vec<Gate>| -> usize {
        gates.push(g);
        gates.len() - 1
    };

    // Ripple-carry sum bits.
    let mut sum_bits = Vec::with_capacity(bits + 1);
    let mut carry: Option<usize> = None;
    for i in 0..bits {
        let axb = push(Gate::Xor(a(i), b(i)), &mut gates);
        let (s, c_out) = match carry {
            None => {
                let c = push(Gate::And(a(i), b(i)), &mut gates);
                (axb, c)
            }
            Some(c_in) => {
                let s = push(Gate::Xor(axb, c_in), &mut gates);
                let ab = push(Gate::And(a(i), b(i)), &mut gates);
                let axb_c = push(Gate::And(axb, c_in), &mut gates);
                let c = push(Gate::Or(ab, axb_c), &mut gates);
                (s, c)
            }
        };
        sum_bits.push(s);
        carry = Some(c_out);
    }
    sum_bits.push(carry.expect("bits >= 1"));

    // Compare with the target constant: AND over XNOR(sum_i, target_i).
    let mut acc: Option<usize> = None;
    for (i, &s) in sum_bits.iter().enumerate() {
        let t = (target >> i) & 1 == 1;
        let tconst = push(Gate::Const(t), &mut gates);
        let x = push(Gate::Xor(s, tconst), &mut gates);
        let eq = push(Gate::Not(x), &mut gates);
        acc = Some(match acc {
            None => eq,
            Some(prev) => push(Gate::And(prev, eq), &mut gates),
        });
    }
    let output = acc.expect("at least one sum bit");
    Circuit::new(inputs, gates, output).expect("adder is valid")
}

/// Encode a `u64` as an LSB-first bit vector of the given width.
pub fn to_bits(v: u64, bits: usize) -> Vec<bool> {
    (0..bits).map(|i| (v >> i) & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layered_is_deterministic_and_deep() {
        let c1 = layered(8, 50, 6, 7);
        let c2 = layered(8, 50, 6, 7);
        assert_eq!(c1, c2);
        assert!(c1.depth() >= 40, "depth {} too shallow", c1.depth());
        assert_eq!(c1.size(), 8 + 50 * 6);
    }

    #[test]
    fn layered_evaluates_without_panic_on_all_input_patterns() {
        let c = layered(4, 10, 4, 3);
        for pattern in 0..16u32 {
            let inputs: Vec<bool> = (0..4).map(|i| (pattern >> i) & 1 == 1).collect();
            let _ = c.evaluate(&inputs);
        }
    }

    #[test]
    fn and_tree_is_conjunction() {
        let c = and_tree(3);
        assert_eq!(c.input_count(), 8);
        assert_eq!(c.depth(), 3);
        assert!(c.evaluate(&[true; 8]));
        let mut one_false = [true; 8];
        one_false[5] = false;
        assert!(!c.evaluate(&one_false));
    }

    #[test]
    fn adder_checks_sums_correctly() {
        let bits = 8;
        for (a, b) in [(0u64, 0u64), (1, 1), (200, 55), (255, 255), (127, 128)] {
            let c = adder_equals(bits, a + b);
            let mut inputs = to_bits(a, bits);
            inputs.extend(to_bits(b, bits));
            assert!(c.evaluate(&inputs), "{a}+{b} should equal {}", a + b);
            let wrong = adder_equals(bits, a + b + 1);
            assert!(!wrong.evaluate(&inputs), "{a}+{b} ≠ {}", a + b + 1);
        }
    }

    #[test]
    fn adder_depth_grows_with_bits() {
        assert!(adder_equals(16, 1234).depth() > adder_equals(4, 5).depth());
    }

    #[test]
    fn to_bits_roundtrip() {
        assert_eq!(to_bits(5, 4), vec![true, false, true, false]);
        assert_eq!(to_bits(0, 3), vec![false; 3]);
    }
}
