//! # pitract-circuit — Boolean circuits and the Circuit Value Problem
//!
//! CVP ("is output y of circuit α true on inputs x₁…xₙ?") is the paper's
//! chosen P-complete problem, and it does double duty:
//!
//! * **Theorem 9's witness.** Under the factorization `Υ₀` that leaves
//!   *nothing* to preprocess (`π₁(x) = ε`), CVP cannot be Π-tractable
//!   unless P = NC: any preprocessing of the empty string is a constant,
//!   so the answering step faces the whole P-complete instance online.
//!   [`factor::upsilon0_scheme`] models this honestly — its per-query cost
//!   grows with circuit size, and its cost annotations *fail*
//!   `claims_pi_tractable`.
//! * **Corollary 6's promise.** Re-factorized so the circuit-plus-inputs
//!   is the data part and the designated gate is the query,
//!   CVP becomes Π-tractable: preprocess by evaluating every gate once
//!   (PTIME), then answer any gate query in O(1)
//!   ([`factor::gate_table_scheme`]).
//!
//! Experiment E11 measures the two factorizations side by side; the
//! `pitract-reductions` crate reuses these schemes for the Lemma 3 /
//! `make_tractable` demonstrations.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod circuit;
pub mod factor;
pub mod generate;
pub mod simplify;

pub use circuit::{Circuit, CircuitError, Gate};
