//! Buss kernelization — the paper's Section 4(9) preprocessing.
//!
//! Rules, applied to exhaustion in O(|V| + |E|):
//!
//! 1. **High-degree rule.** A vertex of degree > k must belong to every
//!    size-≤-k cover (otherwise all > k of its neighbors would); force it
//!    in and decrement the budget.
//! 2. **Isolated-vertex rule.** Degree-0 vertices never help; drop them.
//! 3. **Cutoff.** A residual graph with maximum degree ≤ k′ and more than
//!    k′² edges has no size-k′ cover — answer NO outright.
//!
//! What survives is a **kernel** with ≤ k′² edges and ≤ k′² + k′ vertices:
//! a size bounded by the parameter alone, independent of |G|. Solving the
//! kernel with the 2^k search tree therefore costs O(1) for fixed k — the
//! paper's "when K is fixed, VC is in ΠTP".

use crate::vc::{bounded_search_tree, is_vertex_cover};
use pitract_core::cost::Meter;
use pitract_graph::Graph;

/// Result of kernelizing a `(G, k)` instance.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Vertices forced into the cover by the high-degree rule (original
    /// ids).
    pub forced: Vec<usize>,
    /// Remaining budget k′ = k − |forced|.
    pub budget: usize,
    /// The kernel graph, re-indexed densely.
    pub graph: Graph,
    /// Kernel node → original node id.
    pub back_map: Vec<usize>,
    /// `Some(answer)` when the rules already decided the instance.
    pub decided: Option<bool>,
}

/// Apply Buss's rules to `(g, k)`. Runs in O(|V| + |E| + k·|V|) — the
/// near-linear preprocessing budget the paper cites. The meter ticks once
/// per edge/vertex touched so E12 can report preprocessing cost.
pub fn kernelize(g: &Graph, k: usize, meter: &Meter) -> Kernel {
    assert!(!g.is_directed(), "vertex cover instances are undirected");
    // Vertex cover is invariant under parallel-edge removal, but the
    // high-degree rule and the k² cutoff are NOT: they must count distinct
    // neighbors/edges. Normalize to a simple graph first (O(|E| log |E|)).
    let g = &simplify(g);
    let n = g.node_count();
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    // Self-loops count twice in adjacency for undirected repr? Our repr
    // stores a self-loop once; its endpoint is forced below like a
    // high-degree vertex (a loop can only be covered by its endpoint).
    let mut removed = vec![false; n];
    let mut forced = Vec::new();
    let mut budget = k;

    // Force self-loop endpoints first.
    #[allow(clippy::needless_range_loop)] // v indexes three arrays at once
    for v in 0..n {
        if g.neighbors(v).contains(&v) && !removed[v] {
            removed[v] = true;
            forced.push(v);
            for &w in g.neighbors(v) {
                meter.tick();
                if w != v && degree[w] > 0 {
                    degree[w] -= 1;
                }
            }
            if budget == 0 {
                return decided_kernel(forced, false);
            }
            budget -= 1;
        }
    }

    // High-degree rule to exhaustion. Each forced vertex costs one budget
    // unit, so at most k rounds fire.
    while let Some(v) = (0..n).find(|&v| !removed[v] && degree[v] > budget) {
        meter.tick();
        removed[v] = true;
        forced.push(v);
        for &w in g.neighbors(v) {
            meter.tick();
            if !removed[w] && degree[w] > 0 {
                degree[w] -= 1;
            }
        }
        if budget == 0 {
            // A vertex with degree > 0 remains forced but no budget: the
            // residual edges decide below; forcing with zero budget means NO
            // unless no edges remain.
            return decided_kernel(forced, false);
        }
        budget -= 1;
    }

    // Collect residual edges (both endpoints alive, no self loops left).
    let mut kept_edges = Vec::new();
    for (u, v) in g.edges() {
        meter.tick();
        if u != v && !removed[u] && !removed[v] {
            kept_edges.push((u, v));
        }
    }

    // Cutoff: max degree ≤ budget now, so > budget² edges ⇒ NO.
    if kept_edges.len() > budget * budget {
        return decided_kernel(forced, false);
    }
    if kept_edges.is_empty() {
        return decided_kernel(forced, true);
    }

    // Re-index the (non-isolated) surviving vertices densely.
    let mut new_id = vec![usize::MAX; n];
    let mut back_map = Vec::new();
    for &(u, v) in &kept_edges {
        for w in [u, v] {
            if new_id[w] == usize::MAX {
                new_id[w] = back_map.len();
                back_map.push(w);
            }
        }
    }
    let edges: Vec<(usize, usize)> = kept_edges
        .iter()
        .map(|&(u, v)| (new_id[u], new_id[v]))
        .collect();
    let graph = Graph::undirected_from_edges(back_map.len(), &edges);

    Kernel {
        forced,
        budget,
        graph,
        back_map,
        decided: None,
    }
}

/// Deduplicate parallel edges (self-loops kept once).
fn simplify(g: &Graph) -> Graph {
    let mut edges: Vec<(usize, usize)> = g
        .edges()
        .into_iter()
        .map(|(u, v)| (u.min(v), u.max(v)))
        .collect();
    edges.sort_unstable();
    edges.dedup();
    Graph::undirected_from_edges(g.node_count(), &edges)
}

fn decided_kernel(forced: Vec<usize>, answer: bool) -> Kernel {
    Kernel {
        forced,
        budget: 0,
        graph: Graph::undirected_from_edges(0, &[]),
        back_map: Vec::new(),
        decided: Some(answer),
    }
}

/// End-to-end solver: kernelize, then run the 2^k search tree on the
/// kernel, then translate the cover back to original vertex ids.
pub fn solve_via_kernel(g: &Graph, k: usize, meter: &Meter) -> Option<Vec<usize>> {
    let kernel = kernelize(g, k, meter);
    match kernel.decided {
        Some(false) => None,
        Some(true) => {
            let mut cover = kernel.forced;
            cover.sort_unstable();
            Some(cover)
        }
        None => {
            let sub = bounded_search_tree(&kernel.graph, kernel.budget)?;
            let mut cover = kernel.forced;
            cover.extend(sub.into_iter().map(|v| kernel.back_map[v]));
            cover.sort_unstable();
            debug_assert!(is_vertex_cover(g, &cover));
            Some(cover)
        }
    }
}

/// Boolean decision form (the paper states VC as a decision problem).
pub fn decide_via_kernel(g: &Graph, k: usize, meter: &Meter) -> bool {
    solve_via_kernel(g, k, meter).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vc::brute_force;

    fn star_plus_matching() -> Graph {
        // Star center 0 with 8 leaves, plus a disjoint edge (9,10).
        let mut edges: Vec<(usize, usize)> = (1..9).map(|i| (0, i)).collect();
        edges.push((9, 10));
        Graph::undirected_from_edges(11, &edges)
    }

    #[test]
    fn high_degree_rule_forces_the_center() {
        let meter = Meter::new();
        let kernel = kernelize(&star_plus_matching(), 3, &meter);
        assert!(kernel.forced.contains(&0), "center has degree 8 > 3");
        assert!(kernel.decided.is_none());
        assert_eq!(kernel.budget, 2);
        assert_eq!(kernel.graph.edge_count(), 1, "only (9,10) survives");
    }

    #[test]
    fn kernel_size_respects_buss_bound() {
        let meter = Meter::new();
        let mut state = 0x5151u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [20usize, 60, 120] {
            for k in [2usize, 4, 6] {
                let edges: Vec<(usize, usize)> = (0..3 * n)
                    .map(|_| ((rnd() as usize) % n, (rnd() as usize) % n))
                    .filter(|&(u, v)| u != v)
                    .collect();
                let g = Graph::undirected_from_edges(n, &edges);
                let kernel = kernelize(&g, k, &meter);
                if kernel.decided.is_none() {
                    let b = kernel.budget;
                    assert!(
                        kernel.graph.edge_count() <= b * b,
                        "kernel has {} edges > {}²",
                        kernel.graph.edge_count(),
                        b
                    );
                    assert!(
                        kernel.graph.node_count() <= b * b + b,
                        "kernel has {} nodes > {}² + {}",
                        kernel.graph.node_count(),
                        b,
                        b
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_solver_agrees_with_brute_force() {
        let meter = Meter::new();
        let mut state = 0x7777u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [6usize, 10, 14, 18] {
            for trial in 0..8 {
                let m = n + 2 * trial;
                let edges: Vec<(usize, usize)> = (0..m)
                    .map(|_| ((rnd() as usize) % n, (rnd() as usize) % n))
                    .filter(|&(u, v)| u != v)
                    .collect();
                let g = Graph::undirected_from_edges(n, &edges);
                for k in 0..=8.min(n) {
                    let expect = brute_force(&g, k).is_some();
                    let got = decide_via_kernel(&g, k, &meter);
                    assert_eq!(got, expect, "n={n} k={k} edges={edges:?}");
                    if let Some(cover) = solve_via_kernel(&g, k, &meter) {
                        assert!(cover.len() <= k);
                        assert!(is_vertex_cover(&g, &cover));
                    }
                }
            }
        }
    }

    #[test]
    fn cutoff_rejects_dense_residues() {
        // Complete graph K8 with k = 2: after (no) forcing, 28 edges > 4.
        let mut edges = Vec::new();
        for u in 0..8 {
            for v in u + 1..8 {
                edges.push((u, v));
            }
        }
        let g = Graph::undirected_from_edges(8, &edges);
        let meter = Meter::new();
        let kernel = kernelize(&g, 2, &meter);
        // Degree 7 > 2 forces vertices until budget exhausts ⇒ decided NO,
        // or cutoff fires; either way the decision is NO.
        assert!(!decide_via_kernel(&g, 2, &meter));
        assert!(kernel.decided == Some(false) || kernel.graph.edge_count() > 4);
    }

    #[test]
    fn edgeless_graphs_are_yes_instances_even_at_k0() {
        let g = Graph::undirected_from_edges(10, &[]);
        let meter = Meter::new();
        assert_eq!(solve_via_kernel(&g, 0, &meter), Some(vec![]));
    }

    #[test]
    fn self_loops_are_forced_by_kernelization() {
        let g = Graph::undirected_from_edges(4, &[(0, 0), (1, 2)]);
        let meter = Meter::new();
        let cover = solve_via_kernel(&g, 2, &meter).expect("coverable with 2");
        assert!(cover.contains(&0));
        assert!(!decide_via_kernel(&g, 1, &meter));
    }

    #[test]
    fn fixed_k_query_cost_is_independent_of_graph_size() {
        // The E12 headline: for fixed k, the post-kernel work is bounded by
        // a function of k alone. We check the kernel size stays flat as n
        // grows 16× on star-heavy graphs.
        let meter = Meter::new();
        let mut kernel_sizes = Vec::new();
        for n in [100usize, 400, 1600] {
            // A few high-degree hubs plus a sparse matching.
            let mut edges = Vec::new();
            for hub in 0..3 {
                for i in 3..n / 2 {
                    edges.push((hub, i));
                }
            }
            for i in 0..5 {
                edges.push((n / 2 + 2 * i, n / 2 + 2 * i + 1));
            }
            let g = Graph::undirected_from_edges(n, &edges);
            let kernel = kernelize(&g, 8, &meter);
            let size = kernel.graph.size();
            kernel_sizes.push(size);
        }
        let spread = kernel_sizes.iter().max().unwrap() - kernel_sizes.iter().min().unwrap();
        assert!(
            spread <= 4,
            "kernel sizes {kernel_sizes:?} should be ~flat for fixed k"
        );
    }
}
