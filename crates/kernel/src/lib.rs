//! # pitract-kernel — parameterized preprocessing: Vertex Cover
//!
//! Section 4(9) of the paper: VC is NP-complete, hence (Corollary 7) it can
//! never be made Π-tractable — **unless the parameter K is fixed**, in
//! which case Buss kernelization preprocesses an instance in O(|E|) down to
//! a kernel whose size depends only on K, and deciding the kernel is O(1)
//! with respect to |G|. That is the paper's bridge between its framework
//! and parameterized complexity [Flum & Grohe]; experiment E12 measures
//! the query time staying flat as |G| grows for fixed K.
//!
//! Modules:
//!
//! * [`vc`] — the problem itself: cover checking, brute-force and
//!   bounded-search-tree exact solvers, greedy 2-approximation.
//! * [`buss`] — the kernelization: high-degree rule + isolated-vertex
//!   rule + edge-count cutoff, with the `≤ K²` edge / `≤ K²+K` vertex
//!   kernel bound asserted in tests, and the end-to-end
//!   `solve_via_kernel` pipeline.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buss;
pub mod vc;
