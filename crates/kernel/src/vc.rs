//! The Vertex Cover problem: checkers, exact solvers, approximation.
//!
//! VC (Garey & Johnson, problem GT1): given undirected `G = (V, E)` and `K ≤ |V|`,
//! is there a vertex set of size ≤ K touching every edge? NP-complete, the
//! paper's example of a problem *outside* ΠTP (Corollary 7).

use pitract_graph::Graph;

/// Does `cover` touch every edge of `g`?
pub fn is_vertex_cover(g: &Graph, cover: &[usize]) -> bool {
    let mut in_cover = vec![false; g.node_count()];
    for &v in cover {
        if v >= g.node_count() {
            return false;
        }
        in_cover[v] = true;
    }
    g.edges().iter().all(|&(u, v)| in_cover[u] || in_cover[v])
}

/// Exact solver by bounded search tree: pick an uncovered edge `(u, v)`,
/// branch on "u in cover" / "v in cover". O(2^K · |E|) — polynomial for
/// fixed K, the engine run on Buss kernels.
pub fn bounded_search_tree(g: &Graph, k: usize) -> Option<Vec<usize>> {
    assert!(
        !g.is_directed(),
        "vertex cover is defined on undirected graphs"
    );
    let edges: Vec<(usize, usize)> = g
        .edges()
        .into_iter()
        .filter(|&(u, v)| u != v) // self-loops handled by the caller rules
        .collect();
    let mut chosen = Vec::new();
    // Self-loop endpoints are forced into any cover.
    let mut forced: Vec<usize> = g
        .edges()
        .iter()
        .filter(|&&(u, v)| u == v)
        .map(|&(u, _)| u)
        .collect();
    forced.sort_unstable();
    forced.dedup();
    if forced.len() > k {
        return None;
    }
    let mut in_cover = vec![false; g.node_count()];
    for &v in &forced {
        in_cover[v] = true;
        chosen.push(v);
    }
    let budget = k - forced.len();
    search(&edges, &mut in_cover, &mut chosen, budget).then(|| {
        chosen.sort_unstable();
        chosen
    })
}

fn search(
    edges: &[(usize, usize)],
    in_cover: &mut Vec<bool>,
    chosen: &mut Vec<usize>,
    budget: usize,
) -> bool {
    // Find the first uncovered edge.
    let uncovered = edges.iter().find(|&&(u, v)| !in_cover[u] && !in_cover[v]);
    let Some(&(u, v)) = uncovered else {
        return true; // everything covered
    };
    if budget == 0 {
        return false;
    }
    for pick in [u, v] {
        in_cover[pick] = true;
        chosen.push(pick);
        if search(edges, in_cover, chosen, budget - 1) {
            return true;
        }
        chosen.pop();
        in_cover[pick] = false;
    }
    false
}

/// Exact solver by exhaustive subset enumeration (reference oracle for
/// tests; exponential in |V|, keep |V| ≤ ~20).
pub fn brute_force(g: &Graph, k: usize) -> Option<Vec<usize>> {
    let n = g.node_count();
    assert!(n <= 24, "brute force oracle limited to 24 nodes, got {n}");
    let edges = g.edges();
    // Try sizes from 0 up so the returned cover is minimum.
    for size in 0..=k.min(n) {
        let mut found = None;
        for_each_combination(n, size, |subset| {
            let mut in_cover = vec![false; n];
            for &v in subset {
                in_cover[v] = true;
            }
            if edges.iter().all(|&(u, v)| in_cover[u] || in_cover[v]) {
                found = Some(subset.to_vec());
                true
            } else {
                false
            }
        });
        if found.is_some() {
            return found;
        }
    }
    None
}

/// Visit every size-`k` subset of `0..n` in lexicographic order until the
/// visitor returns `true` (early exit).
fn for_each_combination(n: usize, k: usize, mut visit: impl FnMut(&[usize]) -> bool) {
    if k > n {
        return;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        if visit(&idx) {
            return;
        }
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return; // exhausted
            }
            i -= 1;
            if idx[i] < i + n - k {
                idx[i] += 1;
                for j in i + 1..k {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Greedy 2-approximation (maximal matching): pick an uncovered edge, take
/// both endpoints. Always a valid cover of size ≤ 2·OPT.
pub fn greedy_two_approx(g: &Graph) -> Vec<usize> {
    let mut in_cover = vec![false; g.node_count()];
    let mut cover = Vec::new();
    for (u, v) in g.edges() {
        if !in_cover[u] && !in_cover[v] {
            if u == v {
                in_cover[u] = true;
                cover.push(u);
            } else {
                in_cover[u] = true;
                in_cover[v] = true;
                cover.push(u);
                cover.push(v);
            }
        }
    }
    cover
}

#[cfg(test)]
mod tests {
    use super::*;

    fn petersen_like() -> Graph {
        // A 5-cycle with a pendant: minimum VC = 3 (cycle needs ⌈5/2⌉ = 3;
        // choosing them right also covers the pendant? No — check below).
        Graph::undirected_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (2, 5)])
    }

    #[test]
    fn cover_checker() {
        let g = petersen_like();
        assert!(is_vertex_cover(&g, &[0, 2, 3]));
        assert!(!is_vertex_cover(&g, &[0, 2]), "edge (3,4) uncovered");
        assert!(!is_vertex_cover(&g, &[99]), "out of range is not a cover");
        assert!(is_vertex_cover(&g, &[0, 1, 2, 3, 4, 5]));
    }

    #[test]
    fn search_tree_finds_minimum_on_cycle_with_pendant() {
        let g = petersen_like();
        assert!(bounded_search_tree(&g, 2).is_none());
        let cover = bounded_search_tree(&g, 3).expect("VC of size 3 exists");
        assert!(cover.len() <= 3);
        assert!(is_vertex_cover(&g, &cover));
    }

    #[test]
    fn search_tree_matches_brute_force_on_random_graphs() {
        let mut state = 0xFACEu64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [4usize, 8, 12] {
            for trial in 0..10 {
                let m = n + trial;
                let edges: Vec<(usize, usize)> = (0..m)
                    .map(|_| ((rnd() as usize) % n, (rnd() as usize) % n))
                    .filter(|&(u, v)| u != v)
                    .collect();
                let g = Graph::undirected_from_edges(n, &edges);
                for k in 0..=n {
                    let bf = brute_force(&g, k);
                    let st = bounded_search_tree(&g, k);
                    assert_eq!(bf.is_some(), st.is_some(), "n={n} k={k} edges={edges:?}");
                    if let Some(c) = st {
                        assert!(c.len() <= k);
                        assert!(is_vertex_cover(&g, &c));
                    }
                }
            }
        }
    }

    #[test]
    fn empty_graph_has_empty_cover() {
        let g = Graph::undirected_from_edges(5, &[]);
        assert_eq!(bounded_search_tree(&g, 0), Some(vec![]));
        assert_eq!(brute_force(&g, 0), Some(vec![]));
    }

    #[test]
    fn self_loops_force_their_endpoint() {
        let g = Graph::undirected_from_edges(3, &[(0, 0), (1, 2)]);
        let cover = bounded_search_tree(&g, 2).expect("cover of size 2");
        assert!(cover.contains(&0), "self-loop endpoint must be chosen");
        assert!(is_vertex_cover(&g, &cover));
        assert!(bounded_search_tree(&g, 1).is_none());
    }

    #[test]
    fn greedy_is_valid_and_within_twice_optimum() {
        let mut state = 0xB0BAu64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [6usize, 10, 14] {
            let edges: Vec<(usize, usize)> = (0..2 * n)
                .map(|_| ((rnd() as usize) % n, (rnd() as usize) % n))
                .filter(|&(u, v)| u != v)
                .collect();
            let g = Graph::undirected_from_edges(n, &edges);
            let greedy = greedy_two_approx(&g);
            assert!(is_vertex_cover(&g, &greedy));
            // Find the true optimum.
            let opt = (0..=n)
                .find(|&k| brute_force(&g, k).is_some())
                .expect("full vertex set is always a cover");
            assert!(
                greedy.len() <= 2 * opt.max(1),
                "greedy {} vs opt {opt}",
                greedy.len()
            );
        }
    }

    #[test]
    fn star_graph_optimum_is_center() {
        let edges: Vec<(usize, usize)> = (1..10).map(|i| (0, i)).collect();
        let g = Graph::undirected_from_edges(10, &edges);
        let cover = bounded_search_tree(&g, 1).expect("center covers all");
        assert_eq!(cover, vec![0]);
    }
}
