//! Property-based tests for the framework crate: encoding laws, growth
//! classification, and the algebra of reductions/factorizations.

use pitract_core::cost::CostClass;
use pitract_core::encode::{Encode, Encoded};
use pitract_core::factor::{identity_pair_factorization, padded_factorization, Factorization};
use pitract_core::fit::{best_fit, FitModel, Sample};
use pitract_core::lang::FnPairLanguage;
use pitract_core::problem::FnProblem;
use pitract_core::reduce::{FReduction, FactorReduction};
use pitract_core::scheme::Scheme;
use proptest::prelude::*;

proptest! {
    /// Tuple encodings are injective on distinct string pairs: the length
    /// prefix prevents boundary ambiguity.
    #[test]
    fn pair_encoding_is_injective(a1 in ".{0,12}", b1 in ".{0,12}", a2 in ".{0,12}", b2 in ".{0,12}") {
        let e1 = (a1.clone(), b1.clone()).encoded();
        let e2 = (a2.clone(), b2.clone()).encoded();
        if (a1, b1) != (a2, b2) {
            prop_assert_ne!(e1, e2);
        } else {
            prop_assert_eq!(e1, e2);
        }
    }

    /// Encoded::pair always splits back to its components.
    #[test]
    fn encoded_pair_total_roundtrip(a in prop::collection::vec(any::<u8>(), 0..40),
                                    b in prop::collection::vec(any::<u8>(), 0..40)) {
        let p = Encoded::pair(&Encoded::from_bytes(a.clone()), &Encoded::from_bytes(b.clone()));
        let (ra, rb) = p.split_pair().expect("framed by us");
        prop_assert_eq!(ra.as_bytes(), &a[..]);
        prop_assert_eq!(rb.as_bytes(), &b[..]);
        prop_assert_eq!(p.len(), 8 + a.len() + b.len());
    }

    /// Growth classification recovers the generating model for clean
    /// series at random positive scales.
    #[test]
    fn fit_recovers_generator(scale in 0.5f64..50.0, intercept in 0.0f64..100.0, model_idx in 0usize..7) {
        let model = FitModel::ALL[model_idx];
        let samples: Vec<Sample> = [256u64, 1024, 4096, 16384, 65536, 262144]
            .iter()
            .map(|&n| Sample { n: n as f64, t: scale * model.feature(n as f64) + intercept })
            .collect();
        let got = best_fit(&samples).best().model;
        // Constant with a large intercept can shadow slow-growing models:
        // accept the generator or an equal-error alternative by comparing
        // residuals directly.
        if got != model {
            let report = best_fit(&samples);
            let gen_fit = report.ranked.iter().find(|f| f.model == model).unwrap();
            prop_assert!(gen_fit.nrmse <= report.best().nrmse + 1e-6,
                "generator {} lost to {} decisively", model, got);
        }
    }

    /// F-reductions with independently chosen shifts compose like their
    /// sum (Lemma 8 transitivity, randomized).
    #[test]
    fn f_reduction_composition_is_additive(d1 in 0u64..1000, d2 in 0u64..1000,
                                           xs in prop::collection::vec(0u64..500, 0..20),
                                           q in 0u64..500) {
        let r1 = FReduction::new("s1", move |d: &Vec<u64>| d.iter().map(|v| v + d1).collect::<Vec<_>>(), move |q: &u64| q + d1);
        let r2 = FReduction::new("s2", move |d: &Vec<u64>| d.iter().map(|v| v + d2).collect::<Vec<_>>(), move |q: &u64| q + d2);
        let r = r1.then(r2);
        prop_assert_eq!(r.beta(&q), q + d1 + d2);
        let lang = FnPairLanguage::new("contains", |d: &Vec<u64>, q: &u64| d.contains(q));
        let lang2 = FnPairLanguage::new("contains", |d: &Vec<u64>, q: &u64| d.contains(q));
        prop_assert_eq!(r.verify(&lang, &lang2, &[(xs, q)]), Ok(()));
    }

    /// Lemma 2 composition of factor reductions stays answer-preserving
    /// for random shift amounts and probe sets.
    #[test]
    fn factor_reduction_composition_preserves(d1 in 0u64..100, d2 in 0u64..100,
                                              probes in prop::collection::vec(
                                                  (prop::collection::vec(0u64..200, 0..10), 0u64..200), 1..10)) {
        let make = |delta: u64| FactorReduction::new(
            identity_pair_factorization::<Vec<u64>, u64>(),
            identity_pair_factorization::<Vec<u64>, u64>(),
            FReduction::new("shift", move |d: &Vec<u64>| d.iter().map(|v| v + delta).collect::<Vec<_>>(), move |q: &u64| q + delta),
        );
        let composed = make(d1).compose(make(d2));
        let src = FnProblem::new("src", |x: &(Vec<u64>, u64)| x.0.contains(&x.1));
        let dst = FnProblem::new("dst", |x: &(Vec<u64>, u64)| x.0.contains(&x.1));
        prop_assert_eq!(composed.verify(&src, &dst, &probes), Ok(()));
    }

    /// Padding preserves the roundtrip law for arbitrary inner instances.
    #[test]
    fn padded_factorization_roundtrip(d in prop::collection::vec(any::<u32>(), 0..16), q in any::<u32>()) {
        let padded = padded_factorization(identity_pair_factorization::<Vec<u32>, u32>());
        let x = (d, q);
        prop_assert!(padded.check_roundtrip(&x));
        prop_assert_eq!(padded.pi1(&x), padded.pi2(&x));
    }

    /// Scheme transfer never changes answers, for random target data.
    #[test]
    fn transfer_preserves_answers(delta in 0u64..50,
                                  data in prop::collection::vec(0u64..100, 0..30),
                                  queries in prop::collection::vec(0u64..120, 1..20)) {
        let target = Scheme::new(
            "sorted",
            CostClass::NLogN,
            CostClass::Log,
            |d: &Vec<u64>| { let mut s = d.clone(); s.sort_unstable(); s },
            |p: &Vec<u64>, q: &u64| p.binary_search(q).is_ok(),
        );
        let red = FReduction::new(
            "shift",
            move |d: &Vec<u64>| d.iter().map(|v| v + delta).collect::<Vec<_>>(),
            move |q: &u64| q + delta,
        );
        let source = red.transfer(&target, CostClass::Linear, CostClass::Constant);
        let p = source.preprocess(&data);
        for q in queries {
            prop_assert_eq!(source.answer(&p, &q), data.contains(&q));
        }
    }

    /// CostClass order is a total preorder consistent with bound values at
    /// large n.
    #[test]
    fn cost_class_order_is_sound(i in 0usize..9, j in 0usize..9) {
        let classes = [
            CostClass::Constant, CostClass::Log, CostClass::PolyLog(2),
            CostClass::SqrtN, CostClass::Linear, CostClass::NLogN,
            CostClass::Quadratic, CostClass::Cubic, CostClass::Poly(4),
        ];
        let (a, b) = (classes[i], classes[j]);
        if a.leq(b) && b.leq(a) {
            prop_assert_eq!(a, b);
        }
        if a.leq(b) && a != b {
            // Asymptotic dominance visible at a big n.
            let n = 1u64 << 40;
            prop_assert!(a.bound(n) <= b.bound(n) * 1.0001,
                "{} claims <= {} but bounds disagree", a, b);
        }
    }
}
