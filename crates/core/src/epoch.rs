//! Epochs: the logical clock behind MVCC snapshot reads.
//!
//! The paper's Π-tractability contract is stated against *one* database
//! instance `D`: preprocessing produces `Π(D)` and every query is
//! answered against that instance. A live serving tier that applies
//! updates while queries run needs a way to say *which* instance a
//! query was answered against — otherwise a multi-shard query can
//! observe shard 0 before an update and shard 1 after it, an instance
//! that never existed.
//!
//! An [`Epoch`] is that instance name: a monotonically increasing
//! logical timestamp, bumped exactly once per applied update. A reader
//! that *pins* an epoch `E` is answered against the state produced by
//! exactly the first `E` updates (counted from the relation's birth),
//! no matter how many writers land during evaluation. The engine crate
//! implements the pinning and copy-on-write version retention; this
//! type is the shared currency every layer (engine, WAL, store,
//! benches) speaks.

use std::fmt;

/// A monotonically increasing logical timestamp naming one database
/// instance of a live relation.
///
/// Epoch `E` names the state after exactly `E` applied updates. The
/// special value [`Epoch::LATEST`] means "whatever is current when the
/// read happens" — the read-committed baseline, with no snapshot pin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Epoch(u64);

impl Epoch {
    /// The epoch before any update: a freshly built relation.
    pub const ZERO: Epoch = Epoch(0);

    /// The sentinel "read whatever is current" epoch. Never produced by
    /// the epoch clock (the clock would need `u64::MAX` updates);
    /// resolving a read at `LATEST` always lands on the current version
    /// without consulting the version ring.
    pub const LATEST: Epoch = Epoch(u64::MAX);

    /// An epoch from its raw clock value.
    pub const fn new(value: u64) -> Self {
        Epoch(value)
    }

    /// The raw clock value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The epoch after one more update.
    #[must_use]
    pub const fn next(self) -> Self {
        Epoch(self.0 + 1)
    }

    /// Is this the [`Epoch::LATEST`] sentinel (no snapshot pin)?
    pub const fn is_latest(self) -> bool {
        self.0 == u64::MAX
    }
}

impl From<u64> for Epoch {
    fn from(value: u64) -> Self {
        Epoch(value)
    }
}

impl From<Epoch> for u64 {
    fn from(e: Epoch) -> Self {
        e.0
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_latest() {
            write!(f, "e@latest")
        } else {
            write!(f, "e{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_the_clock() {
        assert!(Epoch::ZERO < Epoch::new(1));
        assert!(Epoch::new(1) < Epoch::new(2));
        assert!(Epoch::new(u64::MAX - 1) < Epoch::LATEST);
        assert_eq!(Epoch::ZERO.next(), Epoch::new(1));
        assert_eq!(Epoch::default(), Epoch::ZERO);
    }

    #[test]
    fn latest_is_a_sentinel() {
        assert!(Epoch::LATEST.is_latest());
        assert!(!Epoch::new(7).is_latest());
        assert_eq!(Epoch::LATEST.to_string(), "e@latest");
        assert_eq!(Epoch::new(42).to_string(), "e42");
    }

    #[test]
    fn round_trips_through_u64() {
        let e = Epoch::new(123);
        assert_eq!(u64::from(e), 123);
        assert_eq!(Epoch::from(123u64), e);
        assert_eq!(e.get(), 123);
    }
}
