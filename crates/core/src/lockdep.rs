//! Runtime lock-ordering discipline ("lockdep") for the serving stack.
//!
//! The concurrent tiers above this crate — `LiveRelation`'s sharded
//! state, the WAL writer — are deadlock-free only because every path
//! acquires its locks in one fixed order. That order used to exist
//! purely as comments; this module makes it executable. Each lock in
//! the serving stack is wrapped in an [`OrderedMutex`] or
//! [`OrderedRwLock`] carrying a [`LockRank`], and a thread-local stack
//! of currently-held ranks is checked on every *blocking* acquisition:
//!
//! * In **debug builds** (`cfg(debug_assertions)`), acquiring a lock
//!   whose `(rank, sub_order)` is not strictly greater than every rank
//!   already held by the thread **panics** with the full held stack —
//!   so the ordinary test suite exercises the discipline on every run,
//!   and a violation inside a pool worker surfaces as the pool's typed
//!   `WorkerPanicked` error instead of a silent deadlock.
//! * In **release builds** the wrappers compile to a passthrough over
//!   `std::sync` — no thread-local access, no atomic traffic — so the
//!   serving path pays nothing (priced by `BENCH_analysis.json`).
//!
//! Same-rank locks (the per-shard `RwLock`s) disambiguate with a
//! `sub_order` (the shard index): acquiring shards in ascending index
//! order is legal, descending or re-entrant acquisition is not.
//!
//! The bookkeeping itself ([`note_acquire`] / [`note_release`]) is
//! compiled unconditionally so the release-build benchmark can price
//! exactly what debug builds pay; the *wrappers* only call it under
//! `debug_assertions`.
//!
//! Like the rest of the serving stack, the wrappers absorb poison
//! (`PoisonError::into_inner`): a panicking writer already left the
//! protected state consistent-or-reported at a higher level, and the
//! pool's panic containment depends on later lock users not cascading.
//!
//! The workspace rank table (gaps left for future ranks):
//!
//! | rank | lock |
//! |---|---|
//! | `Shard` (10) | `LiveRelation` per-shard slot, sub-ordered by shard index (ascending) |
//! | `Gid` (20) | `LiveRelation` global-id maps |
//! | `Epoch` (30) | `LiveRelation` MVCC clock + pin table |
//! | `Log` (40) | `LiveRelation` replayable update log |
//! | `FollowerCatchup` (45) | replication bookkeeping: the publisher's subscription table (sub 0) and a follower's local segment mirror (sub 1) |
//! | `WalRotation` (50) | `WalWriter` rotation turnstile (taken strictly before the writer state) |
//! | `WalState` (60) | `WalWriter` append state |
//!
//! `FollowerCatchup` sits *between* the engine tiers and the WAL tiers
//! deliberately: a catch-up critical section may flush WAL state (ranks
//! 50/60) while held, but must never be held across a replay into the
//! engine — replay re-enters the full update path (ranks 10–40), which
//! the checker would (correctly) flag as an inversion.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, TryLockError};

/// The workspace-wide lock ranks, in the one legal acquisition order
/// (ascending). See the module docs for the full table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum LockRank {
    /// A `LiveRelation` per-shard slot (sub-ordered by shard index).
    Shard = 10,
    /// The `LiveRelation` global-id maps (gid → location).
    Gid = 20,
    /// The `LiveRelation` MVCC epoch clock and pin table.
    Epoch = 30,
    /// The `LiveRelation` replayable update log.
    Log = 40,
    /// Replication catch-up bookkeeping (`pitract-repl`): the
    /// publisher's subscription/retention table and a follower's local
    /// segment-mirror state. Held while flushing WAL state (ranks
    /// above), never across engine replay (ranks below).
    FollowerCatchup = 45,
    /// The WAL writer's rotation turnstile.
    WalRotation = 50,
    /// The WAL writer's append state.
    WalState = 60,
}

/// Process-wide count of ordering checks performed (one per blocking
/// acquisition noted).
static CHECKS: AtomicU64 = AtomicU64::new(0);
/// Process-wide count of ordering violations detected.
static VIOLATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The `(rank, sub_order)` pairs this thread currently holds, in
    /// acquisition order.
    static HELD: RefCell<Vec<(LockRank, u32)>> = const { RefCell::new(Vec::new()) };
}

/// Point-in-time totals of the lockdep bookkeeping, suitable for
/// publishing into a metrics registry as `lockdep_checks_total` /
/// `lockdep_violations_total` (monotonic counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockdepStats {
    /// Blocking acquisitions order-checked so far, process-wide.
    pub checks: u64,
    /// Rank inversions detected so far, process-wide.
    pub violations: u64,
}

/// Process-wide lockdep totals.
pub fn stats() -> LockdepStats {
    LockdepStats {
        checks: CHECKS.load(Ordering::Relaxed),
        violations: VIOLATIONS.load(Ordering::Relaxed),
    }
}

/// A detected rank inversion: the attempted acquisition and the full
/// stack the thread held at that moment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderViolation {
    /// The `(rank, sub_order)` the thread tried to blocking-acquire.
    pub attempted: (LockRank, u32),
    /// Everything the thread already held, in acquisition order.
    pub held: Vec<(LockRank, u32)>,
}

impl fmt::Display for OrderViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "acquiring {:?}#{} while holding [",
            self.attempted.0, self.attempted.1
        )?;
        for (i, (rank, sub)) in self.held.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{rank:?}#{sub}")?;
        }
        write!(f, "] inverts the lock order")
    }
}

impl std::error::Error for OrderViolation {}

/// Note a *blocking* acquisition of `(rank, sub)`: check it against the
/// thread's held stack and push it. On a violation the entry is **not**
/// pushed (the wrapper panics before the lock is taken, so the stack
/// stays truthful) and the violation counter ticks.
///
/// Compiled unconditionally so release builds can price it; the lock
/// wrappers only call it under `debug_assertions`.
pub fn note_acquire(rank: LockRank, sub: u32) -> Result<(), OrderViolation> {
    CHECKS.fetch_add(1, Ordering::Relaxed);
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        let inverted = held.iter().any(|&(r, s)| (r, s) >= (rank, sub));
        if inverted {
            VIOLATIONS.fetch_add(1, Ordering::Relaxed);
            return Err(OrderViolation {
                attempted: (rank, sub),
                held: held.clone(),
            });
        }
        held.push((rank, sub));
        Ok(())
    })
}

/// Note a successful *non-blocking* (`try_*`) acquisition: pushed
/// without an ordering check, because an acquisition that cannot block
/// cannot deadlock — but once held it still participates in checks
/// against later blocking acquisitions.
pub fn note_try_acquire(rank: LockRank, sub: u32) {
    let _ = HELD.try_with(|held| held.borrow_mut().push((rank, sub)));
}

/// Note a release of `(rank, sub)`: removes the most recent matching
/// entry (guards may drop out of LIFO order). Unknown entries are
/// ignored so drops during thread teardown stay panic-free.
pub fn note_release(rank: LockRank, sub: u32) {
    let _ = HELD.try_with(|held| {
        let mut held = held.borrow_mut();
        if let Some(at) = held.iter().rposition(|&e| e == (rank, sub)) {
            held.remove(at);
        }
    });
}

/// How many ranked locks the current thread holds right now.
pub fn held_depth() -> usize {
    HELD.with(|held| held.borrow().len())
}

#[cfg(debug_assertions)]
fn debug_acquire(rank: LockRank, sub: u32) {
    if let Err(v) = note_acquire(rank, sub) {
        panic!("lockdep: {v}");
    }
}

/// A `Mutex` carrying a [`LockRank`]: rank-checked in debug builds, a
/// plain poison-absorbing mutex in release builds.
#[derive(Debug)]
pub struct OrderedMutex<T> {
    rank: LockRank,
    sub: u32,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// A ranked mutex with sub-order 0 (the common case: one lock per
    /// rank).
    pub fn new(rank: LockRank, value: T) -> Self {
        Self::with_sub_order(rank, 0, value)
    }

    /// A ranked mutex disambiguated by `sub` within its rank (same-rank
    /// locks must be acquired in ascending `sub` order).
    pub fn with_sub_order(rank: LockRank, sub: u32, value: T) -> Self {
        OrderedMutex {
            rank,
            sub,
            inner: Mutex::new(value),
        }
    }

    /// This lock's rank.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Acquire, blocking. Panics in debug builds if the acquisition
    /// inverts the lock order; absorbs poison like the rest of the
    /// serving stack.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        debug_acquire(self.rank, self.sub);
        OrderedMutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            rank: self.rank,
            sub: self.sub,
        }
    }

    /// Exclusive access without locking (the borrow checker proves no
    /// guard exists).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard returned by [`OrderedMutex::lock`].
#[derive(Debug)]
pub struct OrderedMutexGuard<'a, T> {
    inner: MutexGuard<'a, T>,
    rank: LockRank,
    sub: u32,
}

impl<T> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        note_release(self.rank, self.sub);
        #[cfg(not(debug_assertions))]
        let _ = (self.rank, self.sub);
    }
}

/// An `RwLock` carrying a [`LockRank`]: rank-checked in debug builds, a
/// plain poison-absorbing rwlock in release builds. Readers and writers
/// obey the same rank rules — a read acquisition can block on (and
/// deadlock against) a queued writer just as a write can.
#[derive(Debug)]
pub struct OrderedRwLock<T> {
    rank: LockRank,
    sub: u32,
    inner: RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// A ranked rwlock with sub-order 0.
    pub fn new(rank: LockRank, value: T) -> Self {
        Self::with_sub_order(rank, 0, value)
    }

    /// A ranked rwlock disambiguated by `sub` within its rank (e.g. the
    /// shard index; same-rank locks must be acquired in ascending `sub`
    /// order).
    pub fn with_sub_order(rank: LockRank, sub: u32, value: T) -> Self {
        OrderedRwLock {
            rank,
            sub,
            inner: RwLock::new(value),
        }
    }

    /// This lock's rank.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Acquire shared, blocking. Panics in debug builds on a rank
    /// inversion; absorbs poison.
    pub fn read(&self) -> OrderedRwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        debug_acquire(self.rank, self.sub);
        OrderedRwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            rank: self.rank,
            sub: self.sub,
        }
    }

    /// Acquire exclusive, blocking. Panics in debug builds on a rank
    /// inversion; absorbs poison.
    pub fn write(&self) -> OrderedRwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        debug_acquire(self.rank, self.sub);
        OrderedRwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
            rank: self.rank,
            sub: self.sub,
        }
    }

    /// Try to acquire exclusive without blocking: `None` if the lock is
    /// contended. Exempt from the ordering check (a non-blocking
    /// acquisition cannot deadlock) but the held entry is still
    /// recorded; absorbs poison.
    pub fn try_write(&self) -> Option<OrderedRwLockWriteGuard<'_, T>> {
        let inner = match self.inner.try_write() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        #[cfg(debug_assertions)]
        note_try_acquire(self.rank, self.sub);
        Some(OrderedRwLockWriteGuard {
            inner,
            rank: self.rank,
            sub: self.sub,
        })
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard returned by [`OrderedRwLock::read`].
#[derive(Debug)]
pub struct OrderedRwLockReadGuard<'a, T> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    rank: LockRank,
    sub: u32,
}

impl<T> std::ops::Deref for OrderedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Drop for OrderedRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        note_release(self.rank, self.sub);
        #[cfg(not(debug_assertions))]
        let _ = (self.rank, self.sub);
    }
}

/// Guard returned by [`OrderedRwLock::write`] / [`OrderedRwLock::try_write`].
#[derive(Debug)]
pub struct OrderedRwLockWriteGuard<'a, T> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    rank: LockRank,
    sub: u32,
}

impl<T> std::ops::Deref for OrderedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for OrderedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for OrderedRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        note_release(self.rank, self.sub);
        #[cfg(not(debug_assertions))]
        let _ = (self.rank, self.sub);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run `f` with the panic hook silenced (these tests *expect*
    /// panics; the default hook would spray backtraces into the output).
    fn catch_silent<R: Send>(f: impl FnOnce() -> R + Send + std::panic::UnwindSafe) -> Option<R> {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = std::panic::catch_unwind(f).ok();
        std::panic::set_hook(hook);
        out
    }

    #[test]
    fn ascending_acquisition_is_clean() {
        let shard = OrderedRwLock::with_sub_order(LockRank::Shard, 3, 1u32);
        let gid = OrderedRwLock::new(LockRank::Gid, 2u32);
        let epoch = OrderedMutex::new(LockRank::Epoch, 3u32);
        let s = shard.write();
        let g = gid.read();
        let e = epoch.lock();
        assert_eq!(*s + *g + *e, 6);
        assert_eq!(held_depth(), 3);
        drop((s, g, e));
        assert_eq!(held_depth(), 0);
    }

    #[test]
    fn same_rank_ascending_sub_order_is_clean() {
        let shards: Vec<_> = (0..4)
            .map(|i| OrderedRwLock::with_sub_order(LockRank::Shard, i, i))
            .collect();
        let guards: Vec<_> = shards.iter().map(|s| s.read()).collect();
        assert_eq!(guards.len(), 4);
        drop(guards);
        assert_eq!(held_depth(), 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn rank_inversion_panics_in_debug_and_leaves_the_stack_clean() {
        let before = stats().violations;
        let outcome = catch_silent(|| {
            let gid = OrderedRwLock::new(LockRank::Gid, ());
            let shard = OrderedRwLock::with_sub_order(LockRank::Shard, 0, ());
            let _g = gid.write();
            let _s = shard.write(); // Gid held, Shard wanted: inverted.
        });
        assert!(outcome.is_none(), "the inversion must panic");
        assert!(stats().violations > before, "violation counted");
        // The violating acquisition was never pushed and the unwound
        // guards popped: later correctly-ordered work is unaffected.
        assert_eq!(held_depth(), 0);
        let shard = OrderedRwLock::with_sub_order(LockRank::Shard, 0, ());
        let gid = OrderedRwLock::new(LockRank::Gid, ());
        let _s = shard.write();
        let _g = gid.write();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn same_rank_descending_sub_order_panics_in_debug() {
        let outcome = catch_silent(|| {
            let a = OrderedRwLock::with_sub_order(LockRank::Shard, 5, ());
            let b = OrderedRwLock::with_sub_order(LockRank::Shard, 2, ());
            let _a = a.read();
            let _b = b.read(); // shard 5 then shard 2: descending.
        });
        assert!(outcome.is_none());
    }

    #[cfg(debug_assertions)]
    #[test]
    fn reacquiring_the_same_rank_panics_in_debug() {
        let outcome = catch_silent(|| {
            let a = OrderedMutex::new(LockRank::Log, ());
            let b = OrderedMutex::new(LockRank::Log, ());
            let _a = a.lock();
            let _b = b.lock(); // distinct lock, same (rank, sub): still a self-deadlock shape.
        });
        assert!(outcome.is_none());
    }

    #[test]
    fn try_write_is_exempt_from_ordering_but_recorded() {
        let epoch = OrderedMutex::new(LockRank::Epoch, ());
        let shard = OrderedRwLock::with_sub_order(LockRank::Shard, 1, ());
        let _e = epoch.lock();
        // Epoch held, Shard tried: out of order, but try_* cannot block.
        let s = shard.try_write();
        assert!(s.is_some());
        #[cfg(debug_assertions)]
        assert_eq!(held_depth(), 2);
        drop(s);
        #[cfg(debug_assertions)]
        assert_eq!(held_depth(), 1);
    }

    #[test]
    fn try_write_reports_contention_as_none() {
        let lock = std::sync::Arc::new(OrderedRwLock::new(LockRank::Shard, ()));
        let held = lock.write();
        let other = std::sync::Arc::clone(&lock);
        std::thread::scope(|scope| {
            let contended = scope.spawn(move || other.try_write().is_none());
            assert!(contended.join().unwrap_or(false));
        });
        drop(held);
        assert!(lock.try_write().is_some());
    }

    #[test]
    fn note_functions_count_checks_and_absorb_unknown_releases() {
        let before = stats().checks;
        note_acquire(LockRank::WalRotation, 0).expect("empty stack");
        note_acquire(LockRank::WalState, 0).expect("ascending");
        assert!(stats().checks >= before + 2);
        note_release(LockRank::WalState, 0);
        note_release(LockRank::WalRotation, 0);
        // Releasing something never acquired is a no-op, not a panic.
        note_release(LockRank::Epoch, 7);
        assert_eq!(held_depth(), 0);
    }

    #[test]
    fn violation_display_names_the_attempt_and_the_stack() {
        let v = OrderViolation {
            attempted: (LockRank::Shard, 2),
            held: vec![(LockRank::Gid, 0), (LockRank::Epoch, 0)],
        };
        assert_eq!(
            v.to_string(),
            "acquiring Shard#2 while holding [Gid#0, Epoch#0] inverts the lock order"
        );
    }

    #[test]
    fn poisoned_locks_are_absorbed() {
        let lock = std::sync::Arc::new(OrderedMutex::new(LockRank::Log, 7u32));
        let poisoner = std::sync::Arc::clone(&lock);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let _ = std::thread::spawn(move || {
            let _g = poisoner.lock();
            panic!("poison");
        })
        .join();
        std::panic::set_hook(hook);
        assert_eq!(*lock.lock(), 7, "poison absorbed, value served");
    }
}
