//! Σ*-style byte encodings of data and queries.
//!
//! The paper (Section 3, "Notations") assumes a finite alphabet Σ and treats
//! every database `D` and query `Q` as a string in Σ*, so that `|D|` and
//! `|Q|` are well defined and complexity bounds can be stated in them. This
//! module provides that encoding layer:
//!
//! * [`Encode`] — a trait turning structured Rust values into byte strings,
//!   giving every value a canonical size.
//! * [`Encoded`] — an owned byte string with an unambiguous
//!   [`Encoded::pair`]/[`Encoded::split_pair`] framing. This replaces the
//!   paper's `@` padding symbol from the proof of Lemma 2 ("a special symbol
//!   that is not used anywhere else"): instead of reserving a symbol we
//!   length-prefix the first component, which is equivalent and total.
//!
//! Encodings here are *one-way* (encode only): the framework never needs to
//! decode an arbitrary value, only to measure sizes and to split pairs that
//! it framed itself.

use std::fmt;

/// An owned Σ*-string: the canonical byte encoding of some value.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Encoded(Vec<u8>);

impl Encoded {
    /// The empty string ε (used by trivial factorizations such as Υ₀ in
    /// Theorem 9, where the data part of every instance is ε).
    pub fn empty() -> Self {
        Encoded(Vec::new())
    }

    /// Wrap raw bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Encoded(bytes)
    }

    /// String length |x| in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is this ε?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrow the underlying bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Unambiguous pairing `⟨a, b⟩`, replacing the `@`-separator of Lemma 2's
    /// proof: the first component is length-prefixed (8-byte little-endian),
    /// so no reserved symbol is needed and any byte may appear in `a` or `b`.
    pub fn pair(a: &Encoded, b: &Encoded) -> Encoded {
        let mut out = Vec::with_capacity(8 + a.len() + b.len());
        out.extend_from_slice(&(a.len() as u64).to_le_bytes());
        out.extend_from_slice(a.as_bytes());
        out.extend_from_slice(b.as_bytes());
        Encoded(out)
    }

    /// Inverse of [`Encoded::pair`]. Returns `None` if the framing is
    /// malformed (too short, or the declared first-component length exceeds
    /// the available bytes).
    pub fn split_pair(&self) -> Option<(Encoded, Encoded)> {
        if self.0.len() < 8 {
            return None;
        }
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&self.0[..8]);
        let a_len = u64::from_le_bytes(len_bytes) as usize;
        let rest = &self.0[8..];
        if a_len > rest.len() {
            return None;
        }
        Some((
            Encoded(rest[..a_len].to_vec()),
            Encoded(rest[a_len..].to_vec()),
        ))
    }
}

impl fmt::Debug for Encoded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Encoded({} bytes)", self.0.len())
    }
}

/// Values that have a canonical Σ*-encoding.
///
/// Implementations must be deterministic: equal values encode to equal
/// strings. (The converse — injectivity — holds for all implementations in
/// this workspace because every variable-length component is length-prefixed,
/// and tests in the sibling crates spot-check it.)
pub trait Encode {
    /// Append this value's encoding to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// The full encoding as an owned string.
    fn encoded(&self) -> Encoded {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        Encoded(out)
    }

    /// `|x|`: length of the encoding in bytes.
    fn encoded_len(&self) -> usize {
        // Default: encode and measure. Implementations with a cheap closed
        // form (fixed-width scalars, counted containers) override this.
        self.encoded().len()
    }
}

macro_rules! impl_encode_scalar {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode_into(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn encoded_len(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}

impl_encode_scalar!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Encode for usize {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (*self as u64).encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Encode for bool {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Encode for () {
    fn encode_into(&self, _out: &mut Vec<u8>) {}
    fn encoded_len(&self) -> usize {
        0
    }
}

impl Encode for str {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode_into(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        8 + self.len()
    }
}

impl Encode for String {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.as_str().encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        self.as_str().encoded_len()
    }
}

impl<T: Encode> Encode for [T] {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode_into(out);
        for item in self {
            item.encode_into(out);
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.as_slice().encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        self.as_slice().encoded_len()
    }
}

impl<T: Encode + ?Sized> Encode for &T {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (*self).encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        (*self).encoded_len()
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        // Pair framing mirrors Encoded::pair so sizes are consistent.
        let a = self.0.encoded();
        (a.len() as u64).encode_into(out);
        out.extend_from_slice(a.as_bytes());
        self.1.encode_into(out);
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        ((&self.0, &self.1), &self.2).encode_into(out);
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_into(out);
            }
        }
    }
}

impl Encode for Encoded {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_lengths_are_fixed_width() {
        assert_eq!(42u32.encoded_len(), 4);
        assert_eq!(42u64.encoded_len(), 8);
        assert_eq!((-1i64).encoded_len(), 8);
        assert_eq!(true.encoded_len(), 1);
        assert_eq!(().encoded_len(), 0);
    }

    #[test]
    fn encoded_len_matches_actual_encoding() {
        let s = "hello Σ*".to_string();
        assert_eq!(s.encoded_len(), s.encoded().len());
        let v = vec![1u32, 2, 3];
        assert_eq!(v.encoded_len(), v.encoded().len());
        let p = (7u64, "abc".to_string());
        assert_eq!(p.encoded_len(), p.encoded().len());
    }

    #[test]
    fn pair_roundtrips() {
        let a = Encoded::from_bytes(vec![1, 2, 3]);
        let b = Encoded::from_bytes(vec![9, 9]);
        let p = Encoded::pair(&a, &b);
        let (a2, b2) = p.split_pair().expect("well-formed pair");
        assert_eq!(a, a2);
        assert_eq!(b, b2);
    }

    #[test]
    fn pair_with_empty_components() {
        let e = Encoded::empty();
        let b = Encoded::from_bytes(vec![5]);
        assert_eq!(Encoded::pair(&e, &b).split_pair().unwrap(), (e.clone(), b));
        let a = Encoded::from_bytes(vec![5]);
        assert_eq!(
            Encoded::pair(&a, &e).split_pair().unwrap(),
            (a, Encoded::empty())
        );
    }

    #[test]
    fn pair_contains_separator_lookalikes_safely() {
        // Bytes of `a` may look like a length prefix; framing must still work.
        let a = Encoded::from_bytes(vec![0xFF; 16]);
        let b = Encoded::from_bytes(vec![0xFF; 16]);
        let (a2, b2) = Encoded::pair(&a, &b).split_pair().unwrap();
        assert_eq!(a, a2);
        assert_eq!(b, b2);
    }

    #[test]
    fn malformed_pairs_are_rejected() {
        assert!(Encoded::from_bytes(vec![1, 2, 3]).split_pair().is_none());
        // Declared length longer than the payload.
        let mut bad = (1000u64).to_le_bytes().to_vec();
        bad.push(0);
        assert!(Encoded::from_bytes(bad).split_pair().is_none());
    }

    #[test]
    fn equal_values_encode_equally() {
        let x = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let y = x.clone();
        assert_eq!(x.encoded(), y.encoded());
    }

    #[test]
    fn distinct_strings_encode_distinctly() {
        // Length prefixes prevent "ab","c" colliding with "a","bc".
        let p1 = ("ab".to_string(), "c".to_string()).encoded();
        let p2 = ("a".to_string(), "bc".to_string()).encoded();
        assert_ne!(p1, p2);
    }

    #[test]
    fn empty_is_epsilon() {
        assert!(Encoded::empty().is_empty());
        assert_eq!(Encoded::empty().len(), 0);
    }
}
