//! Languages of pairs: the semantics of Boolean query classes.
//!
//! Section 3 of the paper represents a class `Q` of Boolean queries as a
//! language of pairs `S ⊆ Σ* × Σ*`: `⟨D, Q⟩ ∈ S` iff query `Q` evaluates to
//! true on database `D`. This module gives that notion a typed face: a
//! [`PairLanguage`] is a *specification* — a (possibly slow) ground-truth
//! membership test — against which Π-tractability schemes and reductions are
//! verified.

/// A language of pairs `S`: the ground-truth semantics of a Boolean query
/// class over typed data and query values.
///
/// `contains` is allowed to be slow (it is the *spec*, not the engine); the
/// fast path lives in [`crate::scheme::Scheme`]. Keeping the two separate is
/// what lets tests state Definition 1 literally: for every `D`, `Q`,
/// `scheme.answer(Π(D), Q) == lang.contains(D, Q)`.
pub trait PairLanguage {
    /// The data part (the paper's `D`).
    type Data;
    /// The query part (the paper's `Q`).
    type Query;

    /// Ground truth: is `⟨d, q⟩ ∈ S`?
    fn contains(&self, d: &Self::Data, q: &Self::Query) -> bool;

    /// Human-readable name used in diagnostics and experiment tables.
    fn name(&self) -> &str {
        "unnamed language of pairs"
    }
}

/// A [`PairLanguage`] built from a closure — the workhorse constructor used
/// by case-study crates and by reduction combinators.
#[allow(clippy::type_complexity)] // Rc<dyn Fn> fields read better inline
pub struct FnPairLanguage<D, Q> {
    name: String,
    contains: Box<dyn Fn(&D, &Q) -> bool>,
}

impl<D, Q> FnPairLanguage<D, Q> {
    /// Build a language from a name and a membership closure.
    pub fn new(name: impl Into<String>, contains: impl Fn(&D, &Q) -> bool + 'static) -> Self {
        FnPairLanguage {
            name: name.into(),
            contains: Box::new(contains),
        }
    }
}

impl<D, Q> PairLanguage for FnPairLanguage<D, Q> {
    type Data = D;
    type Query = Q;

    fn contains(&self, d: &D, q: &Q) -> bool {
        (self.contains)(d, q)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Check two languages for agreement on a finite set of probe instances.
///
/// Used when a reduction or compression step claims to *preserve* a language:
/// `agree_on(&orig, &compressed_view, &instances)`.
pub fn agree_on<L1, L2>(l1: &L1, l2: &L2, instances: &[(L1::Data, L1::Query)]) -> Result<(), usize>
where
    L1: PairLanguage,
    L2: PairLanguage<Data = L1::Data, Query = L1::Query>,
{
    for (i, (d, q)) in instances.iter().enumerate() {
        if l1.contains(d, q) != l2.contains(d, q) {
            return Err(i);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member_lang() -> FnPairLanguage<Vec<u64>, u64> {
        FnPairLanguage::new("membership", |d: &Vec<u64>, q: &u64| d.contains(q))
    }

    #[test]
    fn fn_language_evaluates_closure() {
        let lang = member_lang();
        assert!(lang.contains(&vec![1, 2, 3], &2));
        assert!(!lang.contains(&vec![1, 2, 3], &7));
        assert_eq!(lang.name(), "membership");
    }

    #[test]
    fn agree_on_detects_divergence() {
        let l1 = member_lang();
        let l2 = FnPairLanguage::new("broken", |d: &Vec<u64>, q: &u64| d.contains(q) || *q == 99);
        let instances = vec![(vec![1, 2], 1u64), (vec![1, 2], 5), (vec![], 99)];
        assert_eq!(agree_on(&l1, &l2, &instances), Err(2));
        assert_eq!(agree_on(&l1, &l1, &instances), Ok(()));
    }

    #[test]
    fn default_name_is_present() {
        struct Anon;
        impl PairLanguage for Anon {
            type Data = ();
            type Query = ();
            fn contains(&self, _: &(), _: &()) -> bool {
                true
            }
        }
        assert!(!Anon.name().is_empty());
    }
}
