//! Cost accounting: symbolic cost classes and runtime step meters.
//!
//! Definition 1 of the paper splits the cost of query answering into a PTIME
//! preprocessing step and an NC answering step. Wall-clock benchmarks can
//! *suggest* those bounds; to *check* them in unit tests we count abstract
//! steps (comparisons, node visits, matrix-word operations) with a [`Meter`]
//! and compare against the symbolic bound of a [`CostClass`].
//!
//! The meter is intentionally `Cell`-based and single-threaded: the paper's
//! NC claims are about *work and depth*, not about speedups of a particular
//! thread pool, and the `pitract-pram` crate layers the depth dimension on
//! top of these counters.

use std::cell::Cell;
use std::fmt;

/// Symbolic asymptotic cost classes used to annotate preprocessing and
/// answering functions.
///
/// The classes are ordered from cheapest to most expensive; [`CostClass::leq`]
/// implements that order. Only [`CostClass::Constant`], [`CostClass::Log`]
/// and [`CostClass::PolyLog`] qualify as NC *query* costs in the sense of
/// Definition 1 (sequential polylog certainly sits inside parallel polylog);
/// everything up to [`CostClass::Poly`] qualifies as PTIME preprocessing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostClass {
    /// O(1).
    Constant,
    /// O(log n).
    Log,
    /// O(logᵏ n) for the given k ≥ 1.
    PolyLog(u32),
    /// O(√n) — used for baselines that are sub-linear but not polylog.
    SqrtN,
    /// O(n).
    Linear,
    /// O(n log n).
    NLogN,
    /// O(n²).
    Quadratic,
    /// O(n³).
    Cubic,
    /// O(n^d) for the given degree d.
    Poly(u32),
    /// 2^O(n) — outside PTIME; used for brute-force baselines.
    Exponential,
}

impl CostClass {
    /// Numeric bound `f(n)` of this class at size `n` (with unit constants).
    ///
    /// `n` is clamped below at 2 so that `log` terms never vanish; the bound
    /// is meant to be multiplied by a caller-chosen constant factor.
    pub fn bound(self, n: u64) -> f64 {
        let n = n.max(2) as f64;
        let lg = n.log2();
        match self {
            CostClass::Constant => 1.0,
            CostClass::Log => lg,
            CostClass::PolyLog(k) => lg.powi(k.max(1) as i32),
            CostClass::SqrtN => n.sqrt(),
            CostClass::Linear => n,
            CostClass::NLogN => n * lg,
            CostClass::Quadratic => n * n,
            CostClass::Cubic => n * n * n,
            CostClass::Poly(d) => n.powi(d.max(1) as i32),
            CostClass::Exponential => 2f64.powf(n.min(1024.0)),
        }
    }

    /// Rank used for comparing classes (lower = asymptotically smaller).
    fn rank(self) -> (u32, u32) {
        match self {
            CostClass::Constant => (0, 0),
            CostClass::Log => (1, 1),
            CostClass::PolyLog(k) => (1, k.max(1)),
            CostClass::SqrtN => (2, 0),
            CostClass::Linear => (3, 0),
            CostClass::NLogN => (3, 1),
            CostClass::Quadratic => (4, 2),
            CostClass::Cubic => (4, 3),
            CostClass::Poly(d) => (4, d.max(1)),
            CostClass::Exponential => (5, 0),
        }
    }

    /// Is `self` asymptotically at most `other`?
    pub fn leq(self, other: CostClass) -> bool {
        self.rank() <= other.rank()
    }

    /// Does this class qualify as an NC per-query cost (Definition 1)?
    ///
    /// A sequential polylog-time answering step is trivially within parallel
    /// polylog time, so `Constant`, `Log` and `PolyLog(_)` qualify.
    pub fn is_nc_query_cost(self) -> bool {
        matches!(
            self,
            CostClass::Constant | CostClass::Log | CostClass::PolyLog(_)
        )
    }

    /// Does this class qualify as PTIME preprocessing (Definition 1)?
    pub fn is_ptime(self) -> bool {
        !matches!(self, CostClass::Exponential)
    }

    /// The cost of running `self` then `other` (sequential composition):
    /// the asymptotic max of the two.
    pub fn seq(self, other: CostClass) -> CostClass {
        if self.leq(other) {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for CostClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostClass::Constant => write!(f, "O(1)"),
            CostClass::Log => write!(f, "O(log n)"),
            CostClass::PolyLog(k) => write!(f, "O(log^{k} n)"),
            CostClass::SqrtN => write!(f, "O(sqrt n)"),
            CostClass::Linear => write!(f, "O(n)"),
            CostClass::NLogN => write!(f, "O(n log n)"),
            CostClass::Quadratic => write!(f, "O(n^2)"),
            CostClass::Cubic => write!(f, "O(n^3)"),
            CostClass::Poly(d) => write!(f, "O(n^{d})"),
            CostClass::Exponential => write!(f, "O(2^n)"),
        }
    }
}

/// A step counter threaded through instrumented query paths.
///
/// Data structures in the sibling crates expose `*_metered` variants of their
/// query operations that `tick` once per elementary step (one comparison, one
/// pointer chase, one machine word of a bit-matrix row). Tests then assert
/// the observed count against a [`CostClass`] bound via [`Meter::within`].
#[derive(Debug, Default)]
pub struct Meter {
    steps: Cell<u64>,
}

impl Meter {
    /// New meter at zero.
    pub fn new() -> Self {
        Meter::default()
    }

    /// Record one elementary step.
    #[inline]
    pub fn tick(&self) {
        self.steps.set(self.steps.get() + 1);
    }

    /// Record `n` elementary steps at once.
    #[inline]
    pub fn add(&self, n: u64) {
        self.steps.set(self.steps.get() + n);
    }

    /// Current step count.
    pub fn steps(&self) -> u64 {
        self.steps.get()
    }

    /// Reset to zero and return the previous count.
    pub fn take(&self) -> u64 {
        self.steps.replace(0)
    }

    /// Check that the recorded steps are within `c * class.bound(n) + c`.
    ///
    /// The additive `c` absorbs setup steps on tiny inputs.
    pub fn within(&self, class: CostClass, n: u64, c: f64) -> bool {
        (self.steps() as f64) <= c * class.bound(n) + c
    }
}

/// Assert (panicking with a readable message) that `steps` observed on an
/// input of size `n` stay within `c·bound + c` for the claimed class.
///
/// Used pervasively by tests of the case-study crates: e.g. after a B⁺-tree
/// point lookup on n keys, `assert_cost!(meter, Log, n, 8.0)`.
pub fn assert_steps_within(steps: u64, class: CostClass, n: u64, c: f64) {
    let bound = c * class.bound(n) + c;
    assert!(
        (steps as f64) <= bound,
        "cost bound violated: {steps} steps on n={n}, but {class} allows only {bound:.1} (c={c})"
    );
}

/// Floor of log₂(n) for n ≥ 1 (0 for n = 0), as used in bound arithmetic.
pub fn log2_floor(n: u64) -> u32 {
    if n == 0 {
        0
    } else {
        63 - n.leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_monotone_in_n() {
        for class in [
            CostClass::Constant,
            CostClass::Log,
            CostClass::PolyLog(2),
            CostClass::SqrtN,
            CostClass::Linear,
            CostClass::NLogN,
            CostClass::Quadratic,
            CostClass::Cubic,
            CostClass::Poly(4),
        ] {
            let mut prev = 0.0;
            for n in [2u64, 4, 16, 256, 65536] {
                let b = class.bound(n);
                assert!(b >= prev, "{class} not monotone at n={n}");
                prev = b;
            }
        }
    }

    #[test]
    fn class_order_matches_growth() {
        let chain = [
            CostClass::Constant,
            CostClass::Log,
            CostClass::PolyLog(2),
            CostClass::PolyLog(3),
            CostClass::SqrtN,
            CostClass::Linear,
            CostClass::NLogN,
            CostClass::Quadratic,
            CostClass::Cubic,
            CostClass::Poly(5),
            CostClass::Exponential,
        ];
        for i in 0..chain.len() {
            for j in 0..chain.len() {
                assert_eq!(
                    chain[i].leq(chain[j]),
                    i <= j,
                    "order wrong between {} and {}",
                    chain[i],
                    chain[j]
                );
            }
        }
    }

    #[test]
    fn nc_and_ptime_filters_follow_definition_1() {
        assert!(CostClass::Constant.is_nc_query_cost());
        assert!(CostClass::Log.is_nc_query_cost());
        assert!(CostClass::PolyLog(3).is_nc_query_cost());
        assert!(!CostClass::Linear.is_nc_query_cost());
        assert!(!CostClass::SqrtN.is_nc_query_cost());

        assert!(CostClass::Cubic.is_ptime());
        assert!(CostClass::NLogN.is_ptime());
        assert!(!CostClass::Exponential.is_ptime());
    }

    #[test]
    fn seq_takes_the_max() {
        assert_eq!(CostClass::Log.seq(CostClass::Linear), CostClass::Linear);
        assert_eq!(CostClass::Linear.seq(CostClass::Log), CostClass::Linear);
        assert_eq!(
            CostClass::Constant.seq(CostClass::Constant),
            CostClass::Constant
        );
    }

    #[test]
    fn meter_counts_and_resets() {
        let m = Meter::new();
        m.tick();
        m.tick();
        m.add(3);
        assert_eq!(m.steps(), 5);
        assert_eq!(m.take(), 5);
        assert_eq!(m.steps(), 0);
    }

    #[test]
    fn meter_within_log_bound() {
        let m = Meter::new();
        // Simulate a binary search over 1024 elements: ~10 comparisons.
        m.add(10);
        assert!(m.within(CostClass::Log, 1024, 2.0));
        assert!(!m.within(CostClass::Constant, 1024, 2.0));
    }

    #[test]
    #[should_panic(expected = "cost bound violated")]
    fn assert_steps_within_panics_on_violation() {
        assert_steps_within(10_000, CostClass::Log, 1024, 2.0);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(CostClass::PolyLog(2).to_string(), "O(log^2 n)");
        assert_eq!(CostClass::NLogN.to_string(), "O(n log n)");
    }

    #[test]
    fn log2_floor_matches_f64() {
        for n in 1u64..=4096 {
            assert_eq!(log2_floor(n), (n as f64).log2().floor() as u32, "n={n}");
        }
        assert_eq!(log2_floor(0), 0);
    }
}
