//! Factorizations `Υ = (π₁, π₂, ρ)` of problem instances into data and query
//! parts (paper, Section 3).
//!
//! A factorization decides *what gets preprocessed*: `π₁` extracts the data
//! part, `π₂` the query part, and `ρ` restores the instance, with the
//! roundtrip law `ρ(π₁(x), π₂(x)) = x` that underlies Proposition 1. The
//! paper's central insight is that Π-tractability of a *problem* is a
//! property of a problem **plus a factorization** — the same problem (CVP,
//! Theorem 9) can be intractable under one factorization (`Υ₀`, nothing to
//! preprocess) and tractable under another (whole input as data).
//!
//! Constructors provided here:
//!
//! * [`FnFactorization::new`] — from three closures;
//! * [`identity_pair_factorization`] — for problems whose instances already
//!   are pairs `(D, Q)` (the canonical `Υ_LQ` of Section 3);
//! * [`trivial_data_factorization`] — `π₁(x) = ε`: everything is query, the
//!   shape of Theorem 9's witness `Υ₀`;
//! * [`trivial_query_factorization`] — `π₂(x) = ε`: everything is data, the
//!   shape of `S'_CVP` in Proposition 10;
//! * [`padded_factorization`] — `σ₁(x) = σ₂(x) = (π₁(x), π₂(x))`: the
//!   `@`-padding construction from the proof of Lemma 2, in typed form.

use std::rc::Rc;

/// A factorization of instances of type `X` into data `D` and query `Q`.
pub trait Factorization {
    /// Problem instance type (the paper's `x`).
    type Instance;
    /// Data part type (preprocessed offline).
    type Data;
    /// Query part type (answered online).
    type Query;

    /// `π₁`: extract the data part.
    fn pi1(&self, x: &Self::Instance) -> Self::Data;

    /// `π₂`: extract the query part.
    fn pi2(&self, x: &Self::Instance) -> Self::Query;

    /// `ρ`: restore an instance from its parts.
    fn rho(&self, d: &Self::Data, q: &Self::Query) -> Self::Instance;

    /// Verify the roundtrip law `ρ(π₁(x), π₂(x)) = x` on a concrete
    /// instance — the precondition that makes Proposition 1 go through.
    fn check_roundtrip(&self, x: &Self::Instance) -> bool
    where
        Self::Instance: PartialEq,
    {
        self.rho(&self.pi1(x), &self.pi2(x)) == *x
    }
}

/// A [`Factorization`] built from closures. Cloneable (the closures are
/// reference-counted) so a single factorization can be shared between a
/// reduction and a scheme, as the paper's proofs do.
#[allow(clippy::type_complexity)] // Rc<dyn Fn> fields read better inline
pub struct FnFactorization<X, D, Q> {
    name: String,
    pi1: Rc<dyn Fn(&X) -> D>,
    pi2: Rc<dyn Fn(&X) -> Q>,
    rho: Rc<dyn Fn(&D, &Q) -> X>,
}

impl<X, D, Q> Clone for FnFactorization<X, D, Q> {
    fn clone(&self) -> Self {
        FnFactorization {
            name: self.name.clone(),
            pi1: Rc::clone(&self.pi1),
            pi2: Rc::clone(&self.pi2),
            rho: Rc::clone(&self.rho),
        }
    }
}

impl<X, D, Q> FnFactorization<X, D, Q> {
    /// Build a factorization from `π₁`, `π₂` and `ρ`.
    pub fn new(
        name: impl Into<String>,
        pi1: impl Fn(&X) -> D + 'static,
        pi2: impl Fn(&X) -> Q + 'static,
        rho: impl Fn(&D, &Q) -> X + 'static,
    ) -> Self {
        FnFactorization {
            name: name.into(),
            pi1: Rc::new(pi1),
            pi2: Rc::new(pi2),
            rho: Rc::new(rho),
        }
    }

    /// Human-readable name (e.g. `"Υ_BDS"`, `"Υ₀"`).
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl<X, D, Q> Factorization for FnFactorization<X, D, Q> {
    type Instance = X;
    type Data = D;
    type Query = Q;

    fn pi1(&self, x: &X) -> D {
        (self.pi1)(x)
    }
    fn pi2(&self, x: &X) -> Q {
        (self.pi2)(x)
    }
    fn rho(&self, d: &D, q: &Q) -> X {
        (self.rho)(d, q)
    }
}

/// The canonical factorization for problems whose instances are already
/// pairs: `π₁(d, q) = d`, `π₂(d, q) = q`, `ρ = (·,·)`.
///
/// This is the `Υ_LQ` the paper reads off from a query class's decision
/// problem `LQ = {D#Q}` (Section 3, "Making query classes Π-tractable").
pub fn identity_pair_factorization<D, Q>() -> FnFactorization<(D, Q), D, Q>
where
    D: Clone + 'static,
    Q: Clone + 'static,
{
    FnFactorization::new(
        "Υ_id",
        |x: &(D, Q)| x.0.clone(),
        |x: &(D, Q)| x.1.clone(),
        |d: &D, q: &Q| (d.clone(), q.clone()),
    )
}

/// The "preprocess nothing" factorization: `π₁(x) = ()`, `π₂(x) = x`.
///
/// This is the shape of `Υ₀` in Theorem 9 (and of `Υ'` in Figure 1): the
/// data part carries no information, so a preprocessing function can only
/// produce a constant, and the answering step faces the whole instance
/// online. For P-complete query parts this cannot be Π-tractable unless
/// P = NC — the separation the paper proves and experiment E11 measures.
pub fn trivial_data_factorization<X>() -> FnFactorization<X, (), X>
where
    X: Clone + 'static,
{
    FnFactorization::new(
        "Υ₀ (all query)",
        |_x: &X| (),
        |x: &X| x.clone(),
        |_d: &(), q: &X| q.clone(),
    )
}

/// The "everything is data" factorization: `π₁(x) = x`, `π₂(x) = ()`.
///
/// The shape of `S'_CVP` in the proof of Proposition 10: trivially
/// Π-tractable because the PTIME preprocessing step may simply *solve* the
/// instance and record the one-bit answer.
pub fn trivial_query_factorization<X>() -> FnFactorization<X, X, ()>
where
    X: Clone + 'static,
{
    FnFactorization::new(
        "Υ_all-data",
        |x: &X| x.clone(),
        |_x: &X| (),
        |d: &X, _q: &()| d.clone(),
    )
}

/// The padding construction from the proof of Lemma 2: from `Υ = (π₁,π₂,ρ)`
/// build `Υ' = (σ₁, σ₂, ρ')` with `σ₁(x) = σ₂(x) = (π₁(x), π₂(x))` and
/// `ρ'((d,q), _) = ρ(d, q)`.
///
/// In the paper both components are the string `π₁(x) @ π₂(x)`; in typed form
/// the pair plays the role of the `@`-joined string (see
/// [`crate::encode::Encoded::pair`] for the byte-level equivalent). The point
/// of the construction is that after padding, *both* the data and the query
/// part individually determine the whole instance, which is what lets two
/// NC-factor reductions compose.
#[allow(clippy::type_complexity)]
pub fn padded_factorization<X, D, Q>(
    inner: FnFactorization<X, D, Q>,
) -> FnFactorization<X, (D, Q), (D, Q)>
where
    X: 'static,
    D: Clone + 'static,
    Q: Clone + 'static,
{
    let name = format!("padded({})", inner.name());
    let f1 = inner.clone();
    let f2 = inner.clone();
    let f3 = inner;
    FnFactorization::new(
        name,
        move |x: &X| (f1.pi1(x), f1.pi2(x)),
        move |x: &X| (f2.pi1(x), f2.pi2(x)),
        move |d: &(D, Q), _q: &(D, Q)| f3.rho(&d.0, &d.1),
    )
}

#[cfg(test)]
#[allow(clippy::type_complexity)] // tests spell out reduction types for clarity
mod tests {
    use super::*;

    /// The list-membership problem L₁ of Section 4(2): instance
    /// `(list, element)`.
    fn list_search_factorization() -> FnFactorization<(Vec<u64>, u64), Vec<u64>, u64> {
        identity_pair_factorization()
    }

    #[test]
    fn identity_factorization_roundtrips() {
        let f = list_search_factorization();
        let x = (vec![3, 1, 2], 9u64);
        assert!(f.check_roundtrip(&x));
        assert_eq!(f.pi1(&x), vec![3, 1, 2]);
        assert_eq!(f.pi2(&x), 9);
    }

    #[test]
    fn trivial_data_factorization_puts_everything_in_query() {
        let f = trivial_data_factorization::<Vec<u8>>();
        let x = vec![1u8, 2, 3];
        assert!(f.check_roundtrip(&x));
        assert_eq!(f.pi2(&x), x);
        // The data part is the unit value — nothing to preprocess.
        f.pi1(&x);
    }

    #[test]
    fn trivial_query_factorization_puts_everything_in_data() {
        let f = trivial_query_factorization::<String>();
        let x = "instance".to_string();
        assert!(f.check_roundtrip(&x));
        assert_eq!(f.pi1(&x), x);
    }

    #[test]
    fn padded_factorization_duplicates_both_parts() {
        let f = padded_factorization(list_search_factorization());
        let x = (vec![5, 6], 6u64);
        assert!(f.check_roundtrip(&x));
        // Both σ₁(x) and σ₂(x) are the full (data, query) pair.
        assert_eq!(f.pi1(&x), f.pi2(&x));
        assert_eq!(f.pi1(&x), (vec![5, 6], 6u64));
    }

    #[test]
    fn padded_rho_ignores_query_component() {
        // ρ'((d,q), anything) must reconstruct from the data component alone;
        // the proof of Lemma 2 relies on exactly this.
        let f = padded_factorization(list_search_factorization());
        let d = (vec![1u64], 1u64);
        let junk = (vec![9u64, 9, 9], 0u64);
        assert_eq!(f.rho(&d, &junk), (vec![1], 1));
    }

    #[test]
    fn custom_factorization_splits_triple_instances() {
        // The Ls problem of Example 4: instance (relation D, attribute A,
        // constant c) factored into data D and query (A, c).
        let f: FnFactorization<(Vec<(u32, u32)>, u8, u32), Vec<(u32, u32)>, (u8, u32)> =
            FnFactorization::new(
                "Υ_Ls",
                |x: &(Vec<(u32, u32)>, u8, u32)| x.0.clone(),
                |x: &(Vec<(u32, u32)>, u8, u32)| (x.1, x.2),
                |d: &Vec<(u32, u32)>, q: &(u8, u32)| (d.clone(), q.0, q.1),
            );
        let x = (vec![(1, 10), (2, 20)], 1u8, 20u32);
        assert!(f.check_roundtrip(&x));
        assert_eq!(f.pi2(&x), (1, 20));
    }

    #[test]
    fn factorizations_are_cloneable_and_share_behaviour() {
        let f = list_search_factorization();
        let g = f.clone();
        let x = (vec![1, 2, 3], 2u64);
        assert_eq!(f.pi1(&x), g.pi1(&x));
        assert_eq!(f.name(), g.name());
    }
}
