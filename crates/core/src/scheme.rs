//! Π-tractability witnesses (Definition 1).
//!
//! A [`Scheme`] bundles the two halves of Definition 1 for a query class
//! represented by a language of pairs `S`:
//!
//! 1. a **preprocessing function** `Π : D → P` that must run in PTIME, and
//! 2. an **answering function** `(P, Q) → bool` that must run in NC —
//!    here: sequential polylog steps, optionally validated for parallel
//!    depth via the `pitract-pram` crate.
//!
//! A scheme *claims* those bounds via [`crate::cost::CostClass`] annotations;
//! tests in the case-study crates *check* them with meters, and
//! [`Scheme::verify_against`] checks semantic correctness against the ground
//! truth `S'` (the paper's "`⟨D,Q⟩ ∈ S` iff `⟨Π(D), Q⟩ ∈ S'`").

use crate::cost::CostClass;
use crate::lang::PairLanguage;
use std::rc::Rc;

/// A Π-tractability witness for a query class with data `D`, preprocessed
/// form `P` and queries `Q`.
#[allow(clippy::type_complexity)] // Rc<dyn Fn> fields read better inline
pub struct Scheme<D, P, Q> {
    name: String,
    preprocess: Rc<dyn Fn(&D) -> P>,
    answer: Rc<dyn Fn(&P, &Q) -> bool>,
    preprocess_cost: CostClass,
    answer_cost: CostClass,
}

impl<D, P, Q> Clone for Scheme<D, P, Q> {
    fn clone(&self) -> Self {
        Scheme {
            name: self.name.clone(),
            preprocess: Rc::clone(&self.preprocess),
            answer: Rc::clone(&self.answer),
            preprocess_cost: self.preprocess_cost,
            answer_cost: self.answer_cost,
        }
    }
}

impl<D, P, Q> Scheme<D, P, Q> {
    /// Build a scheme from its two halves and their claimed cost classes.
    pub fn new(
        name: impl Into<String>,
        preprocess_cost: CostClass,
        answer_cost: CostClass,
        preprocess: impl Fn(&D) -> P + 'static,
        answer: impl Fn(&P, &Q) -> bool + 'static,
    ) -> Self {
        Scheme {
            name: name.into(),
            preprocess: Rc::new(preprocess),
            answer: Rc::new(answer),
            preprocess_cost,
            answer_cost,
        }
    }

    /// Scheme name for diagnostics and experiment tables.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Run the offline preprocessing step `Π(D)`.
    pub fn preprocess(&self, d: &D) -> P {
        (self.preprocess)(d)
    }

    /// Answer one query against a preprocessed structure.
    pub fn answer(&self, p: &P, q: &Q) -> bool {
        (self.answer)(p, q)
    }

    /// Claimed preprocessing cost class.
    pub fn preprocess_cost(&self) -> CostClass {
        self.preprocess_cost
    }

    /// Claimed per-query answering cost class.
    pub fn answer_cost(&self) -> CostClass {
        self.answer_cost
    }

    /// Do the *claimed* costs satisfy Definition 1 (PTIME preprocessing, NC
    /// answering)? Schemes that model deliberately bad factorizations (e.g.
    /// CVP under Υ₀, experiment E11) return `false` here.
    pub fn claims_pi_tractable(&self) -> bool {
        self.preprocess_cost.is_ptime() && self.answer_cost.is_nc_query_cost()
    }

    /// Preprocess once, then answer a batch of queries — the paper's usage
    /// pattern ("the one-time cost can often be ignored" because it is
    /// amortized over a multitude of queries).
    pub fn answer_all(&self, d: &D, queries: &[Q]) -> Vec<bool> {
        let p = self.preprocess(d);
        queries.iter().map(|q| self.answer(&p, q)).collect()
    }

    /// Verify against a ground-truth language on probe instances: for every
    /// `(d, q)` the scheme's `answer(Π(d), q)` must equal `lang.contains(d,
    /// q)`. Preprocessing is shared per distinct data value index, matching
    /// how deployments reuse `Π(D)` across queries.
    ///
    /// Returns `Err(i)` with the index of the first disagreeing instance.
    pub fn verify_against<L>(&self, lang: &L, instances: &[(D, Vec<Q>)]) -> Result<(), usize>
    where
        L: PairLanguage<Data = D, Query = Q>,
    {
        let mut idx = 0usize;
        for (d, queries) in instances {
            let p = self.preprocess(d);
            for q in queries {
                if self.answer(&p, q) != lang.contains(d, q) {
                    return Err(idx);
                }
                idx += 1;
            }
        }
        Ok(())
    }

    /// Rename the scheme (useful when a reduction transfers it to a new
    /// class).
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

/// The trivial scheme that shows **NC ⊆ ΠT⁰Q** (Figure 2, containment 1):
/// for a query class already answerable in NC, take `Π` to be the identity
/// (a linear copy, comfortably PTIME) and answer queries directly.
pub fn trivial_nc_scheme<L>(lang: L, answer_cost: CostClass) -> Scheme<L::Data, L::Data, L::Query>
where
    L: PairLanguage + 'static,
    L::Data: Clone,
{
    let name = format!("trivial-NC({})", lang.name());
    Scheme::new(
        name,
        CostClass::Linear,
        answer_cost,
        |d: &L::Data| d.clone(),
        move |p: &L::Data, q: &L::Query| lang.contains(p, q),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::FnPairLanguage;

    /// Ground truth for list membership (Section 4(2)).
    fn member_lang() -> FnPairLanguage<Vec<u64>, u64> {
        FnPairLanguage::new("membership", |d: &Vec<u64>, q: &u64| d.contains(q))
    }

    /// The paper's scheme for L₁: sort as preprocessing (O(n log n)),
    /// binary-search as answering (O(log n)).
    fn sort_scheme() -> Scheme<Vec<u64>, Vec<u64>, u64> {
        Scheme::new(
            "sort+binary-search",
            CostClass::NLogN,
            CostClass::Log,
            |d: &Vec<u64>| {
                let mut s = d.clone();
                s.sort_unstable();
                s
            },
            |p: &Vec<u64>, q: &u64| p.binary_search(q).is_ok(),
        )
    }

    #[test]
    fn scheme_answers_match_ground_truth() {
        let scheme = sort_scheme();
        let lang = member_lang();
        let instances = vec![
            (vec![5, 3, 1], vec![1u64, 2, 3, 4, 5]),
            (vec![], vec![0]),
            (vec![42; 10], vec![42, 41]),
        ];
        assert_eq!(scheme.verify_against(&lang, &instances), Ok(()));
    }

    #[test]
    fn verify_against_pinpoints_divergence() {
        // An intentionally broken scheme: forgets to sort, binary search lies.
        let broken = Scheme::new(
            "broken",
            CostClass::Constant,
            CostClass::Log,
            |d: &Vec<u64>| d.clone(),
            |p: &Vec<u64>, q: &u64| p.binary_search(q).is_ok(),
        );
        let lang = member_lang();
        // Unsorted data where binary search misses a present element:
        // [3,1,2] — searching 1: mid=1 -> 1? Actually pick clearly failing.
        let instances = vec![(vec![9, 1, 8, 2, 7, 3], vec![1u64, 9, 3])];
        assert!(broken.verify_against(&lang, &instances).is_err());
    }

    #[test]
    fn claims_pi_tractable_follows_definition_1() {
        assert!(sort_scheme().claims_pi_tractable());
        let bad = Scheme::new(
            "linear-answering",
            CostClass::Linear,
            CostClass::Linear,
            |d: &Vec<u64>| d.clone(),
            |p: &Vec<u64>, q: &u64| p.contains(q),
        );
        assert!(!bad.claims_pi_tractable());
    }

    #[test]
    fn answer_all_amortizes_one_preprocessing_pass() {
        let scheme = sort_scheme();
        let answers = scheme.answer_all(&vec![4, 2, 6], &[2, 3, 6]);
        assert_eq!(answers, vec![true, false, true]);
    }

    #[test]
    fn trivial_nc_scheme_is_correct_and_claims_tractability() {
        let scheme = trivial_nc_scheme(member_lang(), CostClass::Log);
        assert!(scheme.claims_pi_tractable());
        let lang = member_lang();
        let instances = vec![(vec![1, 2, 3], vec![2u64, 9])];
        assert_eq!(scheme.verify_against(&lang, &instances), Ok(()));
        assert!(scheme.name().contains("membership"));
    }

    #[test]
    fn renamed_preserves_behaviour() {
        let scheme = sort_scheme().renamed("alias");
        assert_eq!(scheme.name(), "alias");
        assert!(scheme.answer(&vec![1, 2, 3], &2));
    }

    #[test]
    fn clone_shares_closures() {
        let scheme = sort_scheme();
        let clone = scheme.clone();
        let p = scheme.preprocess(&vec![3, 1]);
        assert_eq!(scheme.answer(&p, &3), clone.answer(&p, &3));
    }
}
