//! The paper's two reduction notions, with their constructive lemmas.
//!
//! * [`FReduction`] — `≤NC_F` (Definition 7): a pair of NC functions
//!   `α` (on data) and `β` (on queries) with
//!   `⟨D,Q⟩ ∈ S₁ ⟺ ⟨α(D), β(Q)⟩ ∈ S₂`. F-reductions preserve the
//!   factorization, compose directly (Lemma 8, first half), and transfer
//!   Π-tractability backwards (Lemma 8, second half — compatibility with
//!   ΠT⁰Q).
//!
//! * [`FactorReduction`] — `≤NC_fa` (Definition 4): an F-reduction **between
//!   chosen factorizations** of two decision problems. These are the
//!   liberal reductions under which BDS is ΠTP-complete (Theorem 5) and all
//!   of P can be *made* Π-tractable (Corollary 6). Their transitivity is
//!   *not* plain composition: the proof of Lemma 2 pads the source
//!   factorization so that both parts carry the whole instance;
//!   [`FactorReduction::compose`] implements exactly that construction, and
//!   [`make_tractable`] implements the proof of Lemma 3 (re-reducing to the
//!   scheme's factorization, then transferring).
//!
//! Everything here is checked, not just asserted: `verify*` methods compare
//! both sides of the iff on probe instances, and the `pitract-reductions`
//! crate instantiates these combinators with real query classes.

use crate::cost::CostClass;
use crate::factor::{padded_factorization, Factorization, FnFactorization};
use crate::lang::PairLanguage;
use crate::problem::DecisionProblem;
use crate::scheme::Scheme;
use std::rc::Rc;

/// An F-reduction `S₁ ≤NC_F S₂` (Definition 7): NC maps `α` on data parts
/// and `β` on query parts, applied independently.
pub struct FReduction<D1, Q1, D2, Q2> {
    name: String,
    alpha: Rc<dyn Fn(&D1) -> D2>,
    beta: Rc<dyn Fn(&Q1) -> Q2>,
}

impl<D1, Q1, D2, Q2> Clone for FReduction<D1, Q1, D2, Q2> {
    fn clone(&self) -> Self {
        FReduction {
            name: self.name.clone(),
            alpha: Rc::clone(&self.alpha),
            beta: Rc::clone(&self.beta),
        }
    }
}

impl<D1, Q1, D2, Q2> FReduction<D1, Q1, D2, Q2>
where
    D1: 'static,
    Q1: 'static,
    D2: 'static,
    Q2: 'static,
{
    /// Build an F-reduction from `α` and `β`.
    pub fn new(
        name: impl Into<String>,
        alpha: impl Fn(&D1) -> D2 + 'static,
        beta: impl Fn(&Q1) -> Q2 + 'static,
    ) -> Self {
        FReduction {
            name: name.into(),
            alpha: Rc::new(alpha),
            beta: Rc::new(beta),
        }
    }

    /// Reduction name for diagnostics.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Apply `α` to a data part.
    pub fn alpha(&self, d: &D1) -> D2 {
        (self.alpha)(d)
    }

    /// Apply `β` to a query part.
    pub fn beta(&self, q: &Q1) -> Q2 {
        (self.beta)(q)
    }

    /// Transitivity of `≤NC_F` (Lemma 8, first bullet): F-reductions compose
    /// componentwise, no padding required — `α = α₂∘α₁`, `β = β₂∘β₁`.
    pub fn then<D3, Q3>(self, next: FReduction<D2, Q2, D3, Q3>) -> FReduction<D1, Q1, D3, Q3>
    where
        D3: 'static,
        Q3: 'static,
    {
        let name = format!("{} ; {}", self.name, next.name);
        let (a1, b1) = (self.alpha, self.beta);
        let (a2, b2) = (next.alpha, next.beta);
        FReduction {
            name,
            alpha: Rc::new(move |d: &D1| a2(&a1(d))),
            beta: Rc::new(move |q: &Q1| b2(&b1(q))),
        }
    }

    /// Compatibility of `≤NC_F` with ΠT⁰Q (Lemma 8, second bullet), in its
    /// constructive reading: given a Π-tractability scheme for the *target*
    /// class, produce one for the *source* class by pre-composing `Π` with
    /// `α` and the answering step with `β`.
    ///
    /// Cost bookkeeping mirrors the proof of Lemma 3: the new preprocessing
    /// `Π' = Π ∘ α` stays PTIME because `α` is NC ⊆ P; the new answering
    /// step pays `β` (NC) plus the old answering step (NC), hence stays NC.
    pub fn transfer<P>(
        &self,
        target_scheme: &Scheme<D2, P, Q2>,
        alpha_cost: CostClass,
        beta_cost: CostClass,
    ) -> Scheme<D1, P, Q1>
    where
        P: 'static,
    {
        let name = format!("{} via {}", target_scheme.name(), self.name);
        let alpha = Rc::clone(&self.alpha);
        let beta = Rc::clone(&self.beta);
        let pre = target_scheme.clone();
        let ans = target_scheme.clone();
        Scheme::new(
            name,
            target_scheme.preprocess_cost().seq(alpha_cost),
            target_scheme.answer_cost().seq(beta_cost),
            move |d: &D1| pre.preprocess(&alpha(d)),
            move |p: &P, q: &Q1| ans.answer(p, &beta(q)),
        )
    }

    /// Check the defining iff on probe pairs: `⟨d,q⟩ ∈ S₁ ⟺ ⟨α(d), β(q)⟩ ∈
    /// S₂`. Returns the index of the first violated probe.
    pub fn verify<S1, S2>(&self, s1: &S1, s2: &S2, probes: &[(D1, Q1)]) -> Result<(), usize>
    where
        S1: PairLanguage<Data = D1, Query = Q1>,
        S2: PairLanguage<Data = D2, Query = Q2>,
    {
        for (i, (d, q)) in probes.iter().enumerate() {
            if s1.contains(d, q) != s2.contains(&self.alpha(d), &self.beta(q)) {
                return Err(i);
            }
        }
        Ok(())
    }
}

/// An NC-factor reduction `L₁ ≤NC_fa L₂` (Definition 4): factorizations
/// `Υ₁` of `L₁` and `Υ₂` of `L₂`, plus an F-reduction between the induced
/// pair languages `S(L₁,Υ₁)` and `S(L₂,Υ₂)`.
pub struct FactorReduction<X1, D1, Q1, X2, D2, Q2> {
    /// `Υ₁`: how the *source* problem's instances split into data/query.
    pub f1: FnFactorization<X1, D1, Q1>,
    /// `Υ₂`: how the *target* problem's instances split into data/query.
    pub f2: FnFactorization<X2, D2, Q2>,
    /// The `(α, β)` maps between the factored parts.
    pub map: FReduction<D1, Q1, D2, Q2>,
}

impl<X1, D1, Q1, X2, D2, Q2> Clone for FactorReduction<X1, D1, Q1, X2, D2, Q2> {
    fn clone(&self) -> Self {
        FactorReduction {
            f1: self.f1.clone(),
            f2: self.f2.clone(),
            map: self.map.clone(),
        }
    }
}

impl<X1, D1, Q1, X2, D2, Q2> FactorReduction<X1, D1, Q1, X2, D2, Q2>
where
    X1: 'static,
    D1: 'static,
    Q1: 'static,
    X2: 'static,
    D2: 'static,
    Q2: 'static,
{
    /// Bundle two factorizations and the `(α, β)` maps into a `≤NC_fa`
    /// reduction.
    pub fn new(
        f1: FnFactorization<X1, D1, Q1>,
        f2: FnFactorization<X2, D2, Q2>,
        map: FReduction<D1, Q1, D2, Q2>,
    ) -> Self {
        FactorReduction { f1, f2, map }
    }

    /// Map a source instance to the target instance it reduces to:
    /// `x ↦ ρ₂(α(π₁(x)), β(π₂(x)))`.
    pub fn map_instance(&self, x: &X1) -> X2 {
        let d2 = self.map.alpha(&self.f1.pi1(x));
        let q2 = self.map.beta(&self.f1.pi2(x));
        self.f2.rho(&d2, &q2)
    }

    /// Check Definition 4 on probe instances: `x ∈ L₁ ⟺ mapped x ∈ L₂`.
    /// (Through the induced pair languages this is exactly
    /// `⟨D,Q⟩ ∈ S(L₁,Υ₁) ⟺ ⟨α(D), β(Q)⟩ ∈ S(L₂,Υ₂)`.)
    pub fn verify<L1, L2>(&self, l1: &L1, l2: &L2, probes: &[X1]) -> Result<(), usize>
    where
        L1: DecisionProblem<Instance = X1>,
        L2: DecisionProblem<Instance = X2>,
    {
        for (i, x) in probes.iter().enumerate() {
            if l1.accepts(x) != l2.accepts(&self.map_instance(x)) {
                return Err(i);
            }
        }
        Ok(())
    }

    /// Transitivity of `≤NC_fa` — the constructive proof of **Lemma 2**.
    ///
    /// Plain composition fails because the second reduction's `α₂`/`β₂` may
    /// need *both* parts produced by the first (its factorization `Υ₂'` of
    /// the middle problem can slice instances differently than `Υ₂`). The
    /// proof pads the source factorization so each part carries the whole
    /// `(data, query)` pair — the typed analogue of the `π₁(x)@π₂(x)`
    /// string — and then routes through the middle problem's `ρ₂`:
    ///
    /// ```text
    /// α(d₁,q₁) = α₂( σ₁( ρ₂( α₁(d₁), β₁(q₁) ) ) )
    /// β(d₁,q₁) = β₂( σ₂( ρ₂( α₁(d₁), β₁(q₁) ) ) )
    /// ```
    ///
    /// where `(σ₁, σ₂)` is the second reduction's source factorization of
    /// the middle problem.
    #[allow(clippy::type_complexity)]
    pub fn compose<E2, P2, X3, D3, Q3>(
        self,
        next: FactorReduction<X2, E2, P2, X3, D3, Q3>,
    ) -> FactorReduction<X1, (D1, Q1), (D1, Q1), X3, D3, Q3>
    where
        E2: 'static,
        P2: 'static,
        X3: 'static,
        D3: 'static,
        Q3: 'static,
        D1: Clone,
        Q1: Clone,
    {
        let padded_f1 = padded_factorization(self.f1.clone());
        let name = format!("{} ∘ {}", next.map.name(), self.map.name());

        // Shared pipeline: reconstruct the middle instance from the mapped
        // parts, then re-factor it the way the second reduction expects.
        let mid = {
            let map1 = self.map.clone();
            let rho2 = self.f2.clone();
            move |dq: &(D1, Q1)| -> X2 { rho2.rho(&map1.alpha(&dq.0), &map1.beta(&dq.1)) }
        };
        let mid_a = mid.clone();
        let mid_b = mid;
        let sigma_a = next.f1.clone();
        let sigma_b = next.f1.clone();
        let map2_a = next.map.clone();
        let map2_b = next.map.clone();

        let alpha = move |dq: &(D1, Q1)| -> D3 { map2_a.alpha(&sigma_a.pi1(&mid_a(dq))) };
        let beta = move |dq: &(D1, Q1)| -> Q3 { map2_b.beta(&sigma_b.pi2(&mid_b(dq))) };

        FactorReduction {
            f1: padded_f1,
            f2: next.f2,
            map: FReduction::new(name, alpha, beta),
        }
    }

    /// Transfer a Π-tractability scheme backwards along this reduction
    /// (the heart of **Lemma 3**), when the scheme is stated for the *same*
    /// factorization `Υ₂` this reduction targets. For a scheme on a
    /// different factorization, first [`FactorReduction::compose`] with
    /// [`refactorization_reduction`] — or call [`make_tractable`], which
    /// does both steps.
    pub fn transfer<P>(
        &self,
        target_scheme: &Scheme<D2, P, Q2>,
        alpha_cost: CostClass,
        beta_cost: CostClass,
    ) -> Scheme<D1, P, Q1>
    where
        P: 'static,
    {
        self.map.transfer(target_scheme, alpha_cost, beta_cost)
    }
}

/// The identity `≤NC_fa` reduction of a problem onto itself under a fixed
/// factorization (`α = id`, `β = id`). Useful as a unit for composition
/// tests and as the degenerate factorization in Theorem 5's proof.
pub fn identity_factor_reduction<X, D, Q>(
    f: FnFactorization<X, D, Q>,
) -> FactorReduction<X, D, Q, X, D, Q>
where
    X: 'static,
    D: Clone + 'static,
    Q: Clone + 'static,
{
    FactorReduction {
        f1: f.clone(),
        f2: f,
        map: FReduction::new("id", |d: &D| d.clone(), |q: &Q| q.clone()),
    }
}

/// The re-factorization reduction used inside the proof of **Lemma 3**:
/// `L ≤NC_fa L` where the source uses the *padded* form of `f_from` and the
/// target uses `f_to`. Because each padded part carries the whole
/// `(data, query)` pair, `α` and `β` can each rebuild the instance and
/// re-slice it with `f_to` — which is impossible for unpadded parts in
/// general (that impossibility is the whole point of Theorem 9).
#[allow(clippy::type_complexity)]
pub fn refactorization_reduction<X, D, Q, E, P>(
    f_from: FnFactorization<X, D, Q>,
    f_to: FnFactorization<X, E, P>,
) -> FactorReduction<X, (D, Q), (D, Q), X, E, P>
where
    X: 'static,
    D: Clone + 'static,
    Q: Clone + 'static,
    E: 'static,
    P: 'static,
{
    let padded = padded_factorization(f_from.clone());
    let name = format!("refactor({} → {})", f_from.name(), f_to.name());
    let rho_a = f_from.clone();
    let rho_b = f_from;
    let to_a = f_to.clone();
    let to_b = f_to.clone();
    FactorReduction {
        f1: padded,
        f2: f_to,
        map: FReduction::new(
            name,
            move |dq: &(D, Q)| to_a.pi1(&rho_a.rho(&dq.0, &dq.1)),
            move |dq: &(D, Q)| to_b.pi2(&rho_b.rho(&dq.0, &dq.1)),
        ),
    }
}

/// The result of [`make_tractable`]: a new (padded) factorization of the
/// source problem together with a working scheme for it — exactly what
/// Definition 2 requires to conclude "L₁ can be made Π-tractable".
pub struct Tractabilization<X1, D1, Q1, P> {
    /// The factorization `Υ₁'` of the source problem produced by the proof.
    pub factorization: FnFactorization<X1, (D1, Q1), (D1, Q1)>,
    /// A Π-tractability scheme for `S(L₁, Υ₁')`.
    pub scheme: Scheme<(D1, Q1), P, (D1, Q1)>,
}

/// The full constructive content of **Lemma 3** / Definition 2: given
/// `L₁ ≤NC_fa L₂` (targeting factorization `Υ₂`) and a Π-tractability scheme
/// for `L₂` stated under a possibly *different* factorization `Υ₂'`,
/// produce a factorization of `L₁` and a scheme witnessing that `L₁` can be
/// made Π-tractable.
///
/// Construction (mirroring the paper): compose the given reduction with the
/// [`refactorization_reduction`] `(L₂,Υ₂) → (L₂,Υ₂')`, then transfer the
/// scheme along the composite.
#[allow(clippy::type_complexity)]
pub fn make_tractable<X1, D1, Q1, X2, D2, Q2, E2, P2, Pre>(
    reduction: FactorReduction<X1, D1, Q1, X2, D2, Q2>,
    scheme_factorization: FnFactorization<X2, E2, P2>,
    scheme: &Scheme<E2, Pre, P2>,
    alpha_cost: CostClass,
    beta_cost: CostClass,
) -> Tractabilization<X1, D1, Q1, Pre>
where
    X1: 'static,
    D1: Clone + 'static,
    Q1: Clone + 'static,
    X2: 'static,
    D2: Clone + 'static,
    Q2: Clone + 'static,
    E2: 'static,
    P2: 'static,
    Pre: 'static,
{
    let refactor = refactorization_reduction(reduction.f2.clone(), scheme_factorization);
    let composite = reduction.compose(refactor);
    let factorization = composite.f1.clone();
    let scheme = composite.transfer(scheme, alpha_cost, beta_cost);
    Tractabilization {
        factorization,
        scheme,
    }
}

#[cfg(test)]
#[allow(clippy::type_complexity)] // tests spell out reduction types for clarity
mod tests {
    use super::*;
    use crate::factor::identity_pair_factorization;
    use crate::lang::FnPairLanguage;
    use crate::problem::FnProblem;

    // --- A miniature universe of three problems, used to exercise every
    // --- combinator:
    //
    // L_a: "does value v appear in list M?"            instance (Vec<u64>, u64)
    // L_b: "does value v+1 appear in shifted list?"    instance (Vec<u64>, u64)
    // L_c: "is bit q set in a sorted set?"             instance (Vec<u64>, u64)
    //
    // with F-/factor-reductions shifting values by +1 and +10.

    fn lang_contains() -> FnPairLanguage<Vec<u64>, u64> {
        FnPairLanguage::new("contains", |d: &Vec<u64>, q: &u64| d.contains(q))
    }

    fn prob_contains(name: &str) -> FnProblem<(Vec<u64>, u64)> {
        FnProblem::new(name, |x: &(Vec<u64>, u64)| x.0.contains(&x.1))
    }

    fn shift_reduction(delta: u64) -> FReduction<Vec<u64>, u64, Vec<u64>, u64> {
        FReduction::new(
            format!("shift+{delta}"),
            move |d: &Vec<u64>| d.iter().map(|v| v + delta).collect(),
            move |q: &u64| q + delta,
        )
    }

    fn probes() -> Vec<(Vec<u64>, u64)> {
        vec![
            (vec![1, 2, 3], 2),
            (vec![1, 2, 3], 9),
            (vec![], 0),
            (vec![100], 100),
            (vec![7, 7], 6),
        ]
    }

    #[test]
    fn f_reduction_preserves_membership() {
        let r = shift_reduction(1);
        // S₂ is "shifted contains": d contains q (both already shifted), so
        // the same language works as target.
        assert_eq!(
            r.verify(&lang_contains(), &lang_contains(), &probes()),
            Ok(())
        );
    }

    #[test]
    fn f_reduction_verify_catches_wrong_beta() {
        let broken = FReduction::new(
            "broken",
            |d: &Vec<u64>| d.iter().map(|v| v + 1).collect::<Vec<_>>(),
            |q: &u64| *q, // forgot to shift the query
        );
        assert!(broken
            .verify(&lang_contains(), &lang_contains(), &probes())
            .is_err());
    }

    #[test]
    fn f_reductions_compose_componentwise() {
        let r = shift_reduction(1).then(shift_reduction(10));
        assert_eq!(r.alpha(&vec![5]), vec![16]);
        assert_eq!(r.beta(&5), 16);
        assert_eq!(
            r.verify(&lang_contains(), &lang_contains(), &probes()),
            Ok(())
        );
    }

    #[test]
    fn f_reduction_transfer_builds_working_scheme() {
        // Target scheme: sort + binary search for "contains".
        let target = Scheme::new(
            "sort+bsearch",
            CostClass::NLogN,
            CostClass::Log,
            |d: &Vec<u64>| {
                let mut s = d.clone();
                s.sort_unstable();
                s
            },
            |p: &Vec<u64>, q: &u64| p.binary_search(q).is_ok(),
        );
        let r = shift_reduction(3);
        let source_scheme = r.transfer(&target, CostClass::Linear, CostClass::Constant);
        assert!(source_scheme.claims_pi_tractable());
        let lang = lang_contains();
        let instances: Vec<(Vec<u64>, Vec<u64>)> =
            vec![(vec![4, 8, 15], vec![8, 16, 15]), (vec![], vec![3])];
        assert_eq!(source_scheme.verify_against(&lang, &instances), Ok(()));
    }

    fn factor_shift(
        delta: u64,
    ) -> FactorReduction<(Vec<u64>, u64), Vec<u64>, u64, (Vec<u64>, u64), Vec<u64>, u64> {
        FactorReduction::new(
            identity_pair_factorization(),
            identity_pair_factorization(),
            shift_reduction(delta),
        )
    }

    #[test]
    fn factor_reduction_maps_instances_correctly() {
        let r = factor_shift(2);
        assert_eq!(r.map_instance(&(vec![1, 2], 2)), (vec![3, 4], 4));
        assert_eq!(
            r.verify(&prob_contains("La"), &prob_contains("Lb"), &probes()),
            Ok(())
        );
    }

    #[test]
    fn lemma_2_composition_is_answer_preserving() {
        let r12 = factor_shift(1);
        let r23 = factor_shift(10);
        let r13 = r12.compose(r23);
        // The composed reduction's source instances are still (Vec,u64);
        // its factored parts are padded pairs.
        let la = prob_contains("La");
        let lc = prob_contains("Lc");
        for (i, x) in probes().iter().enumerate() {
            let mapped = r13.map_instance(x);
            assert_eq!(la.accepts(x), lc.accepts(&mapped), "probe {i}");
            // Net effect is a +11 shift.
            assert_eq!(mapped.1, x.1 + 11);
        }
        assert_eq!(r13.verify(&la, &lc, &probes()), Ok(()));
    }

    #[test]
    fn composed_factorization_is_padded() {
        let r13 = factor_shift(1).compose(factor_shift(10));
        let x = (vec![5u64], 5u64);
        let d = r13.f1.pi1(&x);
        let q = r13.f1.pi2(&x);
        assert_eq!(d, q, "padded parts both carry the whole pair");
        assert!(r13.f1.check_roundtrip(&x));
    }

    #[test]
    fn identity_factor_reduction_is_a_unit() {
        let id = identity_factor_reduction(identity_pair_factorization::<Vec<u64>, u64>());
        let la = prob_contains("La");
        assert_eq!(id.verify(&la, &la, &probes()), Ok(()));
        let r = factor_shift(4).compose(id);
        let la = prob_contains("La");
        let lb = prob_contains("Lb");
        assert_eq!(r.verify(&la, &lb, &probes()), Ok(()));
    }

    #[test]
    fn refactorization_reduction_reslices_instances() {
        // From the identity factorization to an "everything is data"
        // factorization of the same problem.
        let from = identity_pair_factorization::<Vec<u64>, u64>();
        let to: FnFactorization<(Vec<u64>, u64), (Vec<u64>, u64), ()> =
            crate::factor::trivial_query_factorization();
        let r = refactorization_reduction(from, to);
        let la = prob_contains("La");
        assert_eq!(r.verify(&la, &la, &probes()), Ok(()));
    }

    #[test]
    fn make_tractable_yields_working_scheme_across_factorizations() {
        // L₁ reduces to L₂ (shift +1) under identity factorizations, but the
        // scheme we have for L₂ is stated under the *all-data* factorization:
        // preprocess the full instance by solving it.
        let reduction = factor_shift(1);
        let scheme_factorization: FnFactorization<(Vec<u64>, u64), (Vec<u64>, u64), ()> =
            crate::factor::trivial_query_factorization();
        let solve_scheme: Scheme<(Vec<u64>, u64), bool, ()> = Scheme::new(
            "solve-at-preprocessing",
            CostClass::Linear,
            CostClass::Constant,
            |x: &(Vec<u64>, u64)| x.0.contains(&x.1),
            |answer: &bool, _q: &()| *answer,
        );
        let result = make_tractable(
            reduction,
            scheme_factorization,
            &solve_scheme,
            CostClass::Linear,
            CostClass::Linear,
        );

        // The produced scheme decides L₁ through its padded factorization.
        let la = prob_contains("La");
        for x in probes() {
            let d = result.factorization.pi1(&x);
            let q = result.factorization.pi2(&x);
            let p = result.scheme.preprocess(&d);
            assert_eq!(result.scheme.answer(&p, &q), la.accepts(&x), "{x:?}");
        }
    }

    #[test]
    fn transfer_costs_compose_via_seq() {
        let target = Scheme::new(
            "t",
            CostClass::NLogN,
            CostClass::Log,
            |d: &Vec<u64>| d.clone(),
            |p: &Vec<u64>, q: &u64| p.contains(q),
        );
        let r = shift_reduction(0);
        let s = r.transfer(&target, CostClass::Linear, CostClass::Constant);
        assert_eq!(s.preprocess_cost(), CostClass::NLogN);
        assert_eq!(s.answer_cost(), CostClass::Log);
        let s2 = r.transfer(&target, CostClass::Quadratic, CostClass::Log);
        assert_eq!(s2.preprocess_cost(), CostClass::Quadratic);
        assert_eq!(s2.answer_cost(), CostClass::Log);
    }
}
