//! Π-tractable **functions** — the paper's open issue (3), implemented.
//!
//! Section 8: "We have so far only considered Boolean queries … Π-
//! tractability for general queries, as well as for search problems and
//! function problems, deserves a full treatment." Several of the paper's
//! own case studies *are* search problems (RMQ returns a position, LCA
//! returns a node); Section 3 handles them by Booleanization ("given a
//! tuple t, whether t ∈ Q′(D)").
//!
//! This module provides the non-Boolean counterpart of
//! [`crate::scheme::Scheme`] and the formal bridge between the two:
//!
//! * [`SearchScheme`] — preprocessing plus an answering function returning
//!   an arbitrary value, with the same PTIME/NC cost annotations;
//! * [`SearchScheme::to_decision`] — the paper's Booleanization: the
//!   decision scheme asks "is the answer exactly `a`?", so Π-tractability
//!   of the search form implies Π-tractability of the Boolean form with
//!   identical costs;
//! * [`SearchScheme::verify_against`] — validation against a reference
//!   (slow) function, the search analogue of a language of pairs.

use crate::cost::CostClass;
use crate::scheme::Scheme;
use std::rc::Rc;

/// A Π-tractability witness for a *function* problem: answers have type
/// `A` instead of `bool`.
#[allow(clippy::type_complexity)] // Rc<dyn Fn> fields read better inline
pub struct SearchScheme<D, P, Q, A> {
    name: String,
    preprocess: Rc<dyn Fn(&D) -> P>,
    answer: Rc<dyn Fn(&P, &Q) -> A>,
    preprocess_cost: CostClass,
    answer_cost: CostClass,
}

impl<D, P, Q, A> Clone for SearchScheme<D, P, Q, A> {
    fn clone(&self) -> Self {
        SearchScheme {
            name: self.name.clone(),
            preprocess: Rc::clone(&self.preprocess),
            answer: Rc::clone(&self.answer),
            preprocess_cost: self.preprocess_cost,
            answer_cost: self.answer_cost,
        }
    }
}

impl<D, P, Q, A> SearchScheme<D, P, Q, A>
where
    D: 'static,
    P: 'static,
    Q: 'static,
    A: 'static,
{
    /// Build a search scheme from its halves and claimed cost classes.
    pub fn new(
        name: impl Into<String>,
        preprocess_cost: CostClass,
        answer_cost: CostClass,
        preprocess: impl Fn(&D) -> P + 'static,
        answer: impl Fn(&P, &Q) -> A + 'static,
    ) -> Self {
        SearchScheme {
            name: name.into(),
            preprocess: Rc::new(preprocess),
            answer: Rc::new(answer),
            preprocess_cost,
            answer_cost,
        }
    }

    /// Scheme name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Run the preprocessing step.
    pub fn preprocess(&self, d: &D) -> P {
        (self.preprocess)(d)
    }

    /// Answer one query.
    pub fn answer(&self, p: &P, q: &Q) -> A {
        (self.answer)(p, q)
    }

    /// Claimed preprocessing cost.
    pub fn preprocess_cost(&self) -> CostClass {
        self.preprocess_cost
    }

    /// Claimed per-query cost.
    pub fn answer_cost(&self) -> CostClass {
        self.answer_cost
    }

    /// Definition 1 lifted to functions: PTIME preprocessing + NC answers.
    pub fn claims_pi_tractable(&self) -> bool {
        self.preprocess_cost.is_ptime() && self.answer_cost.is_nc_query_cost()
    }

    /// Verify against a reference function on probe instances; returns the
    /// index of the first disagreement.
    pub fn verify_against(
        &self,
        reference: impl Fn(&D, &Q) -> A,
        instances: &[(D, Vec<Q>)],
    ) -> Result<(), usize>
    where
        A: PartialEq,
    {
        let mut idx = 0usize;
        for (d, queries) in instances {
            let p = self.preprocess(d);
            for q in queries {
                if self.answer(&p, q) != reference(d, q) {
                    return Err(idx);
                }
                idx += 1;
            }
        }
        Ok(())
    }

    /// The paper's Booleanization (Section 3): turn the search scheme into
    /// a decision scheme for "does query `q` have answer `a`?". Costs are
    /// unchanged — one extra equality test is O(1) — so Π-tractability of
    /// the function form transfers verbatim to the Boolean form.
    pub fn to_decision(&self) -> Scheme<D, P, (Q, A)>
    where
        A: PartialEq,
    {
        let name = format!("decision({})", self.name);
        let pre = self.clone();
        let ans = self.clone();
        Scheme::new(
            name,
            self.preprocess_cost,
            self.answer_cost,
            move |d: &D| pre.preprocess(d),
            move |p: &P, (q, a): &(Q, A)| ans.answer(p, q) == *a,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The RMQ search problem from Section 4(3): return the leftmost
    /// argmin position (here via a precomputed all-pairs answer table, the
    /// bluntest PTIME preprocessing).
    fn rmq_search_scheme() -> SearchScheme<Vec<i64>, Vec<Vec<usize>>, (usize, usize), usize> {
        SearchScheme::new(
            "rmq-all-pairs",
            CostClass::Quadratic,
            CostClass::Constant,
            |d: &Vec<i64>| {
                let n = d.len();
                let mut table = vec![vec![0usize; n]; n];
                #[allow(clippy::needless_range_loop)] // i indexes data and table together
                for i in 0..n {
                    let mut best = i;
                    for (j, row_j) in (i..n).zip(i..n) {
                        if d[j] < d[best] {
                            best = j;
                        }
                        table[i][row_j] = best;
                    }
                }
                table
            },
            |table: &Vec<Vec<usize>>, &(i, j): &(usize, usize)| table[i][j],
        )
    }

    #[allow(clippy::ptr_arg)] // signature must match SearchScheme's Fn(&D, &Q)
    fn reference_rmq(d: &Vec<i64>, &(i, j): &(usize, usize)) -> usize {
        let mut best = i;
        for k in i + 1..=j {
            if d[k] < d[best] {
                best = k;
            }
        }
        best
    }

    #[test]
    fn search_scheme_matches_reference() {
        let scheme = rmq_search_scheme();
        assert!(scheme.claims_pi_tractable());
        let instances = vec![
            (vec![4i64, 2, 7, 2, 9], vec![(0, 4), (2, 4), (1, 1), (0, 1)]),
            (vec![1], vec![(0, 0)]),
        ];
        assert_eq!(scheme.verify_against(reference_rmq, &instances), Ok(()));
    }

    #[test]
    fn verify_against_detects_wrong_answers() {
        let broken: SearchScheme<Vec<i64>, (), (usize, usize), usize> = SearchScheme::new(
            "always-left",
            CostClass::Constant,
            CostClass::Constant,
            |_d| (),
            |_p, &(i, _j)| i,
        );
        let instances = vec![(vec![9i64, 1], vec![(0usize, 1usize)])];
        assert_eq!(broken.verify_against(reference_rmq, &instances), Err(0));
    }

    #[test]
    fn booleanization_preserves_costs_and_answers() {
        let search = rmq_search_scheme();
        let decision = search.to_decision();
        assert_eq!(decision.preprocess_cost(), search.preprocess_cost());
        assert_eq!(decision.answer_cost(), search.answer_cost());

        let data = vec![5i64, 3, 8, 1, 6];
        let p = decision.preprocess(&data);
        // True exactly when the proposed answer is the real argmin.
        assert!(decision.answer(&p, &((0, 4), 3)));
        assert!(!decision.answer(&p, &((0, 4), 1)));
        assert!(decision.answer(&p, &((0, 1), 1)));
    }

    #[test]
    fn non_tractable_claims_propagate() {
        let slow: SearchScheme<Vec<i64>, Vec<i64>, usize, i64> = SearchScheme::new(
            "scan-max",
            CostClass::Linear,
            CostClass::Linear,
            |d: &Vec<i64>| d.clone(),
            |p: &Vec<i64>, &k: &usize| p.iter().copied().take(k.max(1)).max().unwrap_or(0),
        );
        assert!(!slow.claims_pi_tractable());
        assert!(!slow.to_decision().claims_pi_tractable());
    }

    #[test]
    fn clone_shares_behaviour() {
        let scheme = rmq_search_scheme();
        let c = scheme.clone();
        let p = scheme.preprocess(&vec![3, 1, 2]);
        assert_eq!(scheme.answer(&p, &(0, 2)), c.answer(&p, &(0, 2)));
        assert_eq!(scheme.name(), c.name());
    }
}
