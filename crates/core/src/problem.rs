//! Decision problems and their correspondence with languages of pairs.
//!
//! Section 3 of the paper moves freely between three views of the same
//! object: a decision problem `L ⊆ Σ*`, a factorization `Υ` of its
//! instances, and the induced language of pairs
//! `S(L,Υ) = {⟨π₁(x), π₂(x)⟩ | x ∈ L}`. This module implements the glue:
//!
//! * [`DecisionProblem`] / [`FnProblem`] — the ground-truth membership test
//!   for `L`;
//! * [`induced_pair_language`] — builds `S(L,Υ)` from `L` and `Υ` (via
//!   Proposition 1: membership of `⟨d,q⟩` is decided by `ρ`-reconstruction);
//! * [`decision_problem_of`] — the converse direction `L_Q = {D#Q | ⟨D,Q⟩ ∈
//!   S_Q}` that turns a query class back into a decision problem.

use crate::factor::{Factorization, FnFactorization};
use crate::lang::{FnPairLanguage, PairLanguage};
use std::rc::Rc;

/// A decision problem `L`: the ground-truth membership test for instances.
pub trait DecisionProblem {
    /// Instance type (the paper's `x ∈ Σ*`).
    type Instance;

    /// Is `x ∈ L`? May be slow — this is the specification.
    fn accepts(&self, x: &Self::Instance) -> bool;

    /// Human-readable name (e.g. `"BDS"`, `"CVP"`).
    fn name(&self) -> &str {
        "unnamed decision problem"
    }
}

/// A [`DecisionProblem`] built from a closure.
pub struct FnProblem<X> {
    name: String,
    accepts: Rc<dyn Fn(&X) -> bool>,
}

impl<X> Clone for FnProblem<X> {
    fn clone(&self) -> Self {
        FnProblem {
            name: self.name.clone(),
            accepts: Rc::clone(&self.accepts),
        }
    }
}

impl<X> FnProblem<X> {
    /// Build a problem from a name and a membership closure.
    pub fn new(name: impl Into<String>, accepts: impl Fn(&X) -> bool + 'static) -> Self {
        FnProblem {
            name: name.into(),
            accepts: Rc::new(accepts),
        }
    }
}

impl<X> DecisionProblem for FnProblem<X> {
    type Instance = X;

    fn accepts(&self, x: &X) -> bool {
        (self.accepts)(x)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// The induced language of pairs `S(L,Υ)` for a problem `L` and one of its
/// factorizations `Υ`.
///
/// Membership of `⟨d, q⟩` is decided by reconstructing `x = ρ(d, q)` and
/// asking `L`. On pairs in the image of `(π₁, π₂)` this agrees with the
/// paper's definition by Proposition 1 (`ρ(π₁(x), π₂(x)) = x`); on pairs
/// outside the image it is the natural total extension, which is also what
/// the paper's reductions quantify over ("for all D and Q in Σ*").
pub fn induced_pair_language<L, F>(
    problem: L,
    factorization: F,
) -> FnPairLanguage<F::Data, F::Query>
where
    L: DecisionProblem + 'static,
    F: Factorization<Instance = L::Instance> + 'static,
{
    let name = format!("S({})", problem.name());
    FnPairLanguage::new(name, move |d: &F::Data, q: &F::Query| {
        problem.accepts(&factorization.rho(d, q))
    })
}

/// The decision problem `L_Q` of a query class `Q` (Section 3): instances
/// are `(D, Q)` pairs (the typed form of `D#Q`) and `L_Q` accepts iff
/// `Q(D)` is true.
pub fn decision_problem_of<S>(lang: S) -> FnProblem<(S::Data, S::Query)>
where
    S: PairLanguage + 'static,
{
    let name = format!("L({})", lang.name());
    FnProblem::new(name, move |x: &(S::Data, S::Query)| {
        lang.contains(&x.0, &x.1)
    })
}

/// Verify on probe instances that `S(L,Υ)` and `L` agree through the
/// factorization — the executable statement of Proposition 1.
pub fn check_proposition_1<L, F>(problem: &L, factorization: &F, instances: &[L::Instance]) -> bool
where
    L: DecisionProblem,
    F: Factorization<Instance = L::Instance>,
    L::Instance: PartialEq,
{
    instances.iter().all(|x| {
        factorization.check_roundtrip(x)
            && problem.accepts(x)
                == problem.accepts(&factorization.rho(&factorization.pi1(x), &factorization.pi2(x)))
    })
}

/// A named factorization bundled with its problem — convenience carrier used
/// by the reductions crate to keep `(L, Υ)` pairs together, mirroring the
/// paper's notation `S(L,Υ)`.
pub struct FactoredProblem<X, D, Q> {
    /// The underlying decision problem `L`.
    pub problem: FnProblem<X>,
    /// The factorization `Υ` of its instances.
    pub factorization: FnFactorization<X, D, Q>,
}

impl<X, D, Q> Clone for FactoredProblem<X, D, Q> {
    fn clone(&self) -> Self {
        FactoredProblem {
            problem: self.problem.clone(),
            factorization: self.factorization.clone(),
        }
    }
}

impl<X, D, Q> FactoredProblem<X, D, Q>
where
    X: 'static,
    D: 'static,
    Q: 'static,
{
    /// Bundle a problem with a factorization.
    pub fn new(problem: FnProblem<X>, factorization: FnFactorization<X, D, Q>) -> Self {
        FactoredProblem {
            problem,
            factorization,
        }
    }

    /// The induced language of pairs `S(L,Υ)`.
    pub fn pair_language(&self) -> FnPairLanguage<D, Q> {
        induced_pair_language(self.problem.clone(), self.factorization.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::{identity_pair_factorization, trivial_data_factorization};

    /// L₁ from Section 4(2): does element e appear in list M?
    fn list_search() -> FnProblem<(Vec<u64>, u64)> {
        FnProblem::new("L1-list-search", |x: &(Vec<u64>, u64)| x.0.contains(&x.1))
    }

    #[test]
    fn fn_problem_accepts_by_closure() {
        let p = list_search();
        assert!(p.accepts(&(vec![4, 5], 5)));
        assert!(!p.accepts(&(vec![4, 5], 6)));
        assert_eq!(p.name(), "L1-list-search");
    }

    #[test]
    fn induced_language_agrees_with_problem() {
        let p = list_search();
        let f = identity_pair_factorization::<Vec<u64>, u64>();
        let s = induced_pair_language(p.clone(), f);
        assert!(s.contains(&vec![1, 2, 3], &2));
        assert!(!s.contains(&vec![1, 2, 3], &9));
        assert!(s.name().contains("L1-list-search"));
    }

    #[test]
    fn proposition_1_holds_for_identity_factorization() {
        let p = list_search();
        let f = identity_pair_factorization::<Vec<u64>, u64>();
        let instances = vec![
            (vec![1, 2, 3], 1u64),
            (vec![], 0),
            (vec![7, 7, 7], 7),
            (vec![10], 11),
        ];
        assert!(check_proposition_1(&p, &f, &instances));
    }

    #[test]
    fn proposition_1_holds_for_trivial_factorization() {
        let p = list_search();
        let f = trivial_data_factorization::<(Vec<u64>, u64)>();
        let instances = vec![(vec![1, 2, 3], 1u64), (vec![5], 6)];
        assert!(check_proposition_1(&p, &f, &instances));
    }

    #[test]
    fn decision_problem_of_roundtrips_through_language() {
        let lang = FnPairLanguage::new("point-selection", |d: &Vec<i64>, q: &i64| d.contains(q));
        let lq = decision_problem_of(lang);
        assert!(lq.accepts(&(vec![-1, 0, 1], 0)));
        assert!(!lq.accepts(&(vec![-1, 0, 1], 2)));
        assert!(lq.name().contains("point-selection"));
    }

    #[test]
    fn factored_problem_bundles_and_induces() {
        let fp = FactoredProblem::new(
            list_search(),
            identity_pair_factorization::<Vec<u64>, u64>(),
        );
        let s = fp.pair_language();
        assert!(s.contains(&vec![2, 4], &4));
        let fp2 = fp.clone();
        assert!(fp2.pair_language().contains(&vec![2, 4], &2));
    }
}
