//! Empirical growth-curve classification.
//!
//! The benchmark harness reproduces the paper's complexity *claims* (O(1),
//! O(log n), O(n) …) from measured data. This module fits each measured
//! series `(n, t)` against a family of candidate models `t ≈ a·f(n) + b`
//! by least squares and ranks the models by normalized RMSE, so experiment
//! tables can print verdicts like "scan: best fit O(n); B⁺-tree probe:
//! best fit O(log n)" — the measurable shape of Example 1.
//!
//! The fit is deliberately simple (one feature, closed-form regression):
//! the goal is classification among well-separated growth families, not
//! precise parameter estimation. Step-counted series (from
//! [`crate::cost::Meter`]) are noise-free and classify crisply; wall-clock
//! series are noisier, and the ranking plus [`FitReport::decisive`] expose
//! how confident the classification is.

use std::fmt;

/// Candidate growth models for a measured series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FitModel {
    /// t ≈ b (flat).
    Constant,
    /// t ≈ a·log₂ n + b.
    LogN,
    /// t ≈ a·log₂² n + b.
    Log2N,
    /// t ≈ a·√n + b.
    SqrtN,
    /// t ≈ a·n + b.
    Linear,
    /// t ≈ a·n·log₂ n + b.
    NLogN,
    /// t ≈ a·n² + b.
    Quadratic,
}

impl FitModel {
    /// All candidate models, in growth order.
    pub const ALL: [FitModel; 7] = [
        FitModel::Constant,
        FitModel::LogN,
        FitModel::Log2N,
        FitModel::SqrtN,
        FitModel::Linear,
        FitModel::NLogN,
        FitModel::Quadratic,
    ];

    /// Feature transform `f(n)` of this model.
    pub fn feature(self, n: f64) -> f64 {
        let n = n.max(2.0);
        let lg = n.log2();
        match self {
            FitModel::Constant => 1.0,
            FitModel::LogN => lg,
            FitModel::Log2N => lg * lg,
            FitModel::SqrtN => n.sqrt(),
            FitModel::Linear => n,
            FitModel::NLogN => n * lg,
            FitModel::Quadratic => n * n,
        }
    }

    /// Does this model fall within NC per-query cost (polylog)?
    pub fn is_polylog(self) -> bool {
        matches!(self, FitModel::Constant | FitModel::LogN | FitModel::Log2N)
    }
}

impl fmt::Display for FitModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitModel::Constant => write!(f, "O(1)"),
            FitModel::LogN => write!(f, "O(log n)"),
            FitModel::Log2N => write!(f, "O(log^2 n)"),
            FitModel::SqrtN => write!(f, "O(sqrt n)"),
            FitModel::Linear => write!(f, "O(n)"),
            FitModel::NLogN => write!(f, "O(n log n)"),
            FitModel::Quadratic => write!(f, "O(n^2)"),
        }
    }
}

/// One measured point: input size `n`, observed cost `t` (steps, ns, …).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Input size.
    pub n: f64,
    /// Observed cost at that size.
    pub t: f64,
}

impl Sample {
    /// Convenience constructor from integer measurements.
    pub fn new(n: u64, t: u64) -> Self {
        Sample {
            n: n as f64,
            t: t as f64,
        }
    }
}

/// A fitted model with its goodness of fit.
#[derive(Debug, Clone, Copy)]
pub struct Fit {
    /// Which model was fitted.
    pub model: FitModel,
    /// Slope `a` in `t ≈ a·f(n) + b` (0 for the constant model).
    pub slope: f64,
    /// Intercept `b`.
    pub intercept: f64,
    /// Root-mean-square error normalized by the mean observed cost; lower
    /// is better, 0 is perfect.
    pub nrmse: f64,
}

/// Full report of all candidate fits, best first.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// Fits sorted by ascending normalized RMSE.
    pub ranked: Vec<Fit>,
}

impl FitReport {
    /// The best-fitting model.
    pub fn best(&self) -> &Fit {
        &self.ranked[0]
    }

    /// Is the winner decisive — at least `factor`× smaller error than the
    /// runner-up? Benchmarks print a warning when a verdict is not.
    pub fn decisive(&self, factor: f64) -> bool {
        if self.ranked.len() < 2 {
            return true;
        }
        let (a, b) = (self.ranked[0].nrmse, self.ranked[1].nrmse);
        a == 0.0 || b >= a * factor
    }
}

fn fit_one(model: FitModel, samples: &[Sample]) -> Fit {
    let m = samples.len() as f64;
    let mean_t = samples.iter().map(|s| s.t).sum::<f64>() / m;

    let (slope, intercept) = if model == FitModel::Constant {
        (0.0, mean_t)
    } else {
        let xs: Vec<f64> = samples.iter().map(|s| model.feature(s.n)).collect();
        let mean_x = xs.iter().sum::<f64>() / m;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for (x, s) in xs.iter().zip(samples) {
            sxx += (x - mean_x) * (x - mean_x);
            sxy += (x - mean_x) * (s.t - mean_t);
        }
        if sxx == 0.0 {
            (0.0, mean_t)
        } else {
            let a = sxy / sxx;
            // A growth model with a negative slope is not that growth model;
            // clamp to the flat fit so it scores like Constant, not better.
            if a < 0.0 {
                (0.0, mean_t)
            } else {
                (a, mean_t - a * mean_x)
            }
        }
    };

    let mut sse = 0.0;
    for s in samples {
        let pred = slope * model.feature(s.n) + intercept;
        sse += (s.t - pred) * (s.t - pred);
    }
    let rmse = (sse / m).sqrt();
    let denom = mean_t.abs().max(1e-12);
    Fit {
        model,
        slope,
        intercept,
        nrmse: rmse / denom,
    }
}

/// Fit all candidate models to a series and rank them (best first).
///
/// Panics if fewer than 3 samples are supplied — growth classification on
/// fewer points is meaningless.
pub fn best_fit(samples: &[Sample]) -> FitReport {
    assert!(
        samples.len() >= 3,
        "need at least 3 samples to classify growth, got {}",
        samples.len()
    );
    let mut ranked: Vec<Fit> = FitModel::ALL
        .iter()
        .map(|&model| fit_one(model, samples))
        .collect();
    ranked.sort_by(|a, b| a.nrmse.total_cmp(&b.nrmse));
    FitReport { ranked }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(f: impl Fn(f64) -> f64) -> Vec<Sample> {
        [64u64, 256, 1024, 4096, 16384, 65536, 262144]
            .iter()
            .map(|&n| Sample {
                n: n as f64,
                t: f(n as f64),
            })
            .collect()
    }

    #[test]
    fn classifies_constant() {
        let report = best_fit(&series(|_| 7.0));
        assert_eq!(report.best().model, FitModel::Constant);
        assert!(report.best().nrmse < 1e-9);
    }

    #[test]
    fn classifies_logarithmic() {
        let report = best_fit(&series(|n| 3.0 * n.log2() + 2.0));
        assert_eq!(report.best().model, FitModel::LogN);
        assert!(report.decisive(2.0), "log fit should be decisive");
    }

    #[test]
    fn classifies_log_squared() {
        let report = best_fit(&series(|n| 0.5 * n.log2().powi(2)));
        assert_eq!(report.best().model, FitModel::Log2N);
    }

    #[test]
    fn classifies_linear() {
        let report = best_fit(&series(|n| 2.0 * n + 100.0));
        assert_eq!(report.best().model, FitModel::Linear);
    }

    #[test]
    fn classifies_nlogn() {
        let report = best_fit(&series(|n| 1.5 * n * n.log2()));
        assert_eq!(report.best().model, FitModel::NLogN);
    }

    #[test]
    fn classifies_quadratic() {
        let report = best_fit(&series(|n| 0.001 * n * n));
        assert_eq!(report.best().model, FitModel::Quadratic);
    }

    #[test]
    fn classifies_sqrt() {
        let report = best_fit(&series(|n| 4.0 * n.sqrt() + 1.0));
        assert_eq!(report.best().model, FitModel::SqrtN);
    }

    #[test]
    fn noisy_log_still_wins_over_linear() {
        // ±10% multiplicative "noise" with a fixed pattern.
        let noise = [1.1, 0.9, 1.05, 0.95, 1.08, 0.92, 1.0];
        let samples: Vec<Sample> = [64u64, 256, 1024, 4096, 16384, 65536, 262144]
            .iter()
            .zip(noise.iter())
            .map(|(&n, &eps)| Sample {
                n: n as f64,
                t: 5.0 * (n as f64).log2() * eps,
            })
            .collect();
        let report = best_fit(&samples);
        assert!(
            report.best().model.is_polylog(),
            "noisy log series misclassified as {}",
            report.best().model
        );
        // Linear must rank strictly worse than the winner.
        let lin_pos = report
            .ranked
            .iter()
            .position(|f| f.model == FitModel::Linear)
            .unwrap();
        assert!(lin_pos > 0);
    }

    #[test]
    fn decreasing_series_does_not_fit_growth_models() {
        // A decreasing series must not be "explained" by a growth model with
        // negative slope; Constant should win.
        let report = best_fit(&series(|n| 1000.0 - n.log2()));
        assert_eq!(report.best().model, FitModel::Constant);
    }

    #[test]
    #[should_panic(expected = "at least 3 samples")]
    fn too_few_samples_panics() {
        best_fit(&[Sample::new(10, 1), Sample::new(20, 2)]);
    }

    #[test]
    fn is_polylog_matches_nc_side() {
        assert!(FitModel::Constant.is_polylog());
        assert!(FitModel::LogN.is_polylog());
        assert!(FitModel::Log2N.is_polylog());
        assert!(!FitModel::SqrtN.is_polylog());
        assert!(!FitModel::Linear.is_polylog());
    }

    #[test]
    fn display_strings_are_stable() {
        assert_eq!(FitModel::NLogN.to_string(), "O(n log n)");
        assert_eq!(FitModel::Log2N.to_string(), "O(log^2 n)");
    }
}
