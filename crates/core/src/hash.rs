//! Pinned, dependency-free hashing: FNV-1a 64.
//!
//! Two call sites make the hash function part of a **persistent
//! contract**: `pitract-engine` routes tuples to shards with it (so a
//! snapshot's rows must route identically after a reload, possibly by a
//! binary built with a different toolchain), and `pitract-store`
//! checksums snapshot files with it. Neither may silently drift, so both
//! use this single implementation instead of `std`'s `DefaultHasher`
//! (whose algorithm is unspecified and may change between Rust
//! releases). FNV-1a is an integrity/dispersion hash, not a defense
//! against adversarial collisions.

/// Incremental FNV-1a 64 state.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// Fresh state at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(OFFSET_BASIS)
    }

    /// Absorb bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// One-shot FNV-1a 64 over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Reference values for the standard FNV-1a 64 parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }
}
