//! # pitract-core — a framework for Π-tractability
//!
//! This crate is the executable core of *"Making Queries Tractable on Big
//! Data with Preprocessing (through the eyes of complexity theory)"*
//! (Fan, Geerts, Neven — PVLDB 6(9), 2013).
//!
//! The paper studies query classes that become feasible on very large data
//! once a **one-time PTIME preprocessing step** is allowed, after which every
//! query is answered in **NC** (parallel polylog time). This crate turns the
//! paper's definitions into values and traits that the rest of the workspace
//! instantiates with concrete data structures:
//!
//! * [`lang::PairLanguage`] — a language of pairs `S ⊆ Σ* × Σ*` encoding a
//!   Boolean query class (Section 3, "Notations").
//! * [`factor::Factorization`] — a triple `Υ = (π₁, π₂, ρ)` splitting a
//!   problem instance into a data part and a query part (Section 3).
//! * [`scheme::Scheme`] — a Π-tractability witness: a preprocessing function
//!   `Π(·)` plus a fast answering function, with declared cost classes
//!   (Definition 1).
//! * [`reduce::FReduction`] and [`reduce::FactorReduction`] — the paper's two
//!   reduction notions `≤NC_F` (Definition 7) and `≤NC_fa` (Definition 4),
//!   including the constructive contents of Lemma 2 (transitivity via
//!   padding), Lemma 3 (compatibility with ΠTP) and Lemma 8.
//! * [`cost`] — step meters and symbolic cost classes, so tests can check
//!   "O(log n) after preprocessing" claims mechanically.
//! * [`fit`] — least-squares growth-curve classification used by the
//!   benchmark harness to label measured scaling behaviour.
//! * [`encode`] — Σ*-style byte encodings giving every data/query value a
//!   well-defined size `|D|`, `|Q|`, plus the unambiguous pairing that
//!   replaces the paper's `@` padding symbol.
//!
//! The crate is deliberately free of data-structure implementations: B⁺-trees,
//! RMQ/LCA structures, graphs, circuits and so on live in sibling crates and
//! plug into these traits.
//!
//! ## Map from paper to code
//!
//! | Paper | Code |
//! |---|---|
//! | language of pairs `S` | [`lang::PairLanguage`], [`lang::FnPairLanguage`] |
//! | decision problem `L` | [`problem::DecisionProblem`], [`problem::FnProblem`] |
//! | factorization `Υ = (π₁, π₂, ρ)` | [`factor::FnFactorization`] |
//! | `S(L,Υ)` | [`problem::induced_pair_language`] |
//! | Π-tractable (Def. 1) | [`scheme::Scheme`] + [`scheme::Scheme::verify_against`] |
//! | `≤NC_F` (Def. 7) | [`reduce::FReduction`] |
//! | `≤NC_fa` (Def. 4) | [`reduce::FactorReduction`] |
//! | Lemma 2 padding proof | [`reduce::FactorReduction::compose`] |
//! | Lemma 3 transfer | [`reduce::FactorReduction::transfer`], [`reduce::FReduction::transfer`] |
//! | Proposition 1 | [`factor::Factorization::check_roundtrip`] |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod encode;
pub mod epoch;
pub mod factor;
pub mod fit;
pub mod hash;
pub mod lang;
pub mod lockdep;
pub mod problem;
pub mod reduce;
pub mod scheme;
pub mod search;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::cost::{CostClass, Meter};
    pub use crate::encode::{Encode, Encoded};
    pub use crate::epoch::Epoch;
    pub use crate::factor::{Factorization, FnFactorization};
    pub use crate::fit::{best_fit, FitModel, Sample};
    pub use crate::lang::{FnPairLanguage, PairLanguage};
    pub use crate::lockdep::{LockRank, OrderedMutex, OrderedRwLock};
    pub use crate::problem::{induced_pair_language, DecisionProblem, FnProblem};
    pub use crate::reduce::{FReduction, FactorReduction};
    pub use crate::scheme::Scheme;
    pub use crate::search::SearchScheme;
}
