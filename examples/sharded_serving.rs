//! Sharded batch serving: the paper's NC claim with real threads.
//!
//! Definition 1 calls a query class tractable when a one-time PTIME
//! preprocessing step `Π(D)` makes every query answerable in parallel
//! polylog time. This example exercises the *parallel* half: a 100k-row
//! relation is hash-partitioned into shards (each one an independently
//! indexed `Π(D)`), and a batch of 1,000 mixed point / range /
//! conjunction queries fans out across the shards on scoped threads.
//!
//! Along the way the planner routes every query to its cheapest access
//! path and the per-query step meters are aggregated into a batch cost
//! report — so the output shows both *what* ran (path histogram, shard
//! fan-out) and *how much* it cost (steps vs the scan baseline).
//!
//! Run with: `cargo run --release --example sharded_serving`

use pi_tractable::prelude::*;
use std::time::Instant;

fn mixed_batch(n: i64) -> QueryBatch {
    QueryBatch::new((0..1_000i64).map(|k| match k % 4 {
        // Point lookups on the shard key: routable to one shard.
        0 => SelectionQuery::point(0, (k * 997) % (n + n / 10)),
        // Range probes on the indexed timestamp-like column.
        1 => SelectionQuery::range_closed(0, (k * 641) % n, (k * 641) % n + 250),
        // Conjunctions: indexed point drives, range verifies.
        2 => SelectionQuery::and(
            SelectionQuery::point(1, format!("grp{}", k % 100).as_str()),
            SelectionQuery::range_closed(0, (k * 331) % n, (k * 331) % n + 5_000),
        ),
        // Misses beyond the data: worst case for a scan.
        _ => SelectionQuery::point(0, n + k),
    }))
}

fn main() {
    println!("=== Sharded batch serving: Π(D) across S shards, one batch fan-out ===\n");

    let n = 100_000i64;
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 100))])
        .collect();
    let base = Relation::from_rows(schema, rows).expect("valid rows");
    let batch = mixed_batch(n);
    println!(
        "relation: {} rows; batch: {} mixed point/range/conjunction queries\n",
        base.len(),
        batch.len()
    );

    // The oracle: a sequential scan per query over the unpartitioned data.
    let t0 = Instant::now();
    let oracle: Vec<bool> = batch.queries().iter().map(|q| base.eval_scan(q)).collect();
    let scan_time = t0.elapsed();

    println!("shards  batch time  vs scan    total steps  paths");
    for shards in [1usize, 2, 4, 8] {
        let sharded = ShardedRelation::build(&base, ShardBy::Hash { col: 0 }, shards, &[0, 1])
            .expect("valid sharding spec");
        let t0 = Instant::now();
        let result = batch.execute(&sharded).expect("valid batch");
        let elapsed = t0.elapsed();
        assert_eq!(
            result.answers, oracle,
            "sharded answers must match the scan oracle"
        );
        let paths: Vec<String> = result
            .report
            .path_histogram()
            .iter()
            .map(|(label, count)| format!("{label}×{count}"))
            .collect();
        println!(
            "{shards:>6}  {:>9.2?}  {:>7.1}x  {:>11}  {}",
            elapsed,
            scan_time.as_secs_f64() / elapsed.as_secs_f64(),
            result.report.total_steps,
            paths.join(", ")
        );
    }

    // Row-id serving: the same fan-out, returning witnesses.
    let sharded = ShardedRelation::build(&base, ShardBy::Hash { col: 0 }, 4, &[0, 1])
        .expect("valid sharding spec");
    let witness_batch = QueryBatch::new([
        SelectionQuery::point(1, "grp42"),
        SelectionQuery::range_closed(0, 500i64, 520i64),
    ]);
    let rows = witness_batch.execute_rows(&sharded).expect("valid batch");
    println!(
        "\nrow-id mode: grp42 has {} member rows; ids [500,520] holds {} rows",
        rows.rows[0].len(),
        rows.rows[1].len()
    );

    // Shard-key routing: a point query on the shard key probes one shard.
    let probe = SelectionQuery::point(0, 77i64);
    println!(
        "routing: {:?} touches {} of {} shards",
        probe,
        sharded.relevant_shards(&probe).len(),
        sharded.shard_count()
    );

    println!("\nEvery batch answer matched the sequential scan oracle.");
}
