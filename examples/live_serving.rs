//! Live serving: queries answered *while* updates land, with checkpoint
//! and crash recovery.
//!
//! The paper's maintenance story (Section 4(7)) only matters if the
//! preprocessed structure survives a live workload: heavy query traffic
//! interleaved with inserts and deletes, each update charged against
//! `|CHANGED| = |ΔD| + |ΔO|`, not `|D|`. This example walks that loop:
//!
//! 1. **Go live**: wrap a 100k-row sharded relation in a `LiveRelation`
//!    (per-shard read/write locks — updates lock one shard, batches
//!    read-lock only the shards they route to).
//! 2. **Serve under fire**: four writer threads churn inserts/deletes
//!    while the main thread serves query batches concurrently, verifying
//!    a stable key region against the scan oracle the whole time.
//! 3. **Account**: print the `|CHANGED|` boundedness report of every
//!    applied update.
//! 4. **Checkpoint + recover**: persist the state through the snapshot
//!    catalog, apply more updates, then recover (snapshot load + update
//!    log replay) and verify the recovered node is bit-identical — same
//!    answers, same global row ids.
//!
//! Run with: `cargo run --release --example live_serving`

use pi_tractable::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

fn main() {
    println!("=== Live serving: concurrent updates, bounded maintenance, recovery ===\n");

    let n = 100_000i64;
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 100))])
        .collect();
    let base = Relation::from_rows(schema, rows).expect("valid rows");

    // 1. Go live: Π(D) across 8 shards, wrapped for concurrent serving.
    let live = LiveRelation::build(&base, ShardBy::Hash { col: 0 }, 8, &[0, 1])
        .expect("valid sharding spec");
    println!(
        "live Π(D): {} rows -> 8 shards behind per-shard RwLocks",
        live.len()
    );

    // Queries over the stable region [0, n): writers only touch keys
    // above n, so these answers are invariant under the churn.
    let batch = QueryBatch::new((0..512i64).map(|k| match k % 3 {
        0 => SelectionQuery::point(0, (k * 997) % n),
        1 => SelectionQuery::range_closed(0, (k * 641) % n, (k * 641) % n + 250),
        _ => SelectionQuery::and(
            SelectionQuery::point(1, format!("grp{}", k % 100).as_str()),
            SelectionQuery::range_closed(0, (k * 331) % n, (k * 331) % n + 5_000),
        ),
    }));
    let oracle: Vec<bool> = batch.queries().iter().map(|q| base.eval_scan(q)).collect();

    // 2. Serve while four writers churn the volatile region.
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let (batches_served, updates_applied) = std::thread::scope(|scope| {
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let live = &live;
                let stop = &stop;
                scope.spawn(move || {
                    let mut applied = 0u64;
                    let mut round = 0i64;
                    while !stop.load(Ordering::Relaxed) {
                        let key = n + w * 1_000_000 + round;
                        let gid = live
                            .insert(vec![Value::Int(key), Value::str("hot")])
                            .expect("valid row");
                        applied += 1;
                        if round % 2 == 0 {
                            live.delete(gid).unwrap().expect("just inserted");
                            applied += 1;
                        }
                        round += 1;
                    }
                    applied
                })
            })
            .collect();

        let mut served = 0u64;
        for _ in 0..20 {
            let got = live.execute(&batch).expect("valid batch");
            assert_eq!(got.answers, oracle, "stable region diverged under churn");
            served += 1;
        }
        stop.store(true, Ordering::Relaxed);
        let applied: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        (served, applied)
    });
    let dt = t0.elapsed();
    println!(
        "served {batches_served} batches x {} queries concurrently with {updates_applied} updates  [{dt:.2?}]",
        batch.len()
    );
    println!("every batch matched the single-threaded scan oracle\n");

    // 3. The |CHANGED| accounting of all that maintenance.
    let report = live.boundedness_report();
    println!(
        "maintenance: {} updates, total work {}, total |CHANGED| {}, worst work/(|CHANGED|+1) = {:.1}",
        report.len(),
        report.total_work(),
        report.total_changed(),
        report.worst_ratio()
    );
    let descent_bound = 64.0; // ~2 + log2(shard size): the B+-tree descent factor
    println!(
        "per-update bounded by c = {descent_bound}: {}\n",
        report.is_per_update_bounded(descent_bound)
    );

    // 4. Checkpoint, keep writing, then recover and verify bit-identity.
    let dir = std::env::temp_dir().join(format!("pitract-live-example-{}", std::process::id()));
    let catalog = SnapshotCatalog::open(&dir).expect("catalog dir");
    let t1 = Instant::now();
    live.checkpoint(&catalog, "live-orders")
        .expect("checkpoint");
    println!(
        "checkpointed to {:?}  [{:.2?}]",
        catalog.dir(),
        t1.elapsed()
    );

    let post_gid = live
        .insert(vec![Value::Int(n * 10), Value::str("post-checkpoint")])
        .expect("valid row");
    live.delete(7).unwrap().expect("gid 7 live");
    println!(
        "post-checkpoint traffic: 1 insert (gid {post_gid}), 1 delete; pending log = {} entries",
        live.pending_log().len()
    );

    let t2 = Instant::now();
    let (recovered, summary) = LiveRelation::recover(&catalog, "live-orders", &live.pending_log())
        .expect("snapshot load + log replay");
    println!(
        "recovered = snapshot + replay  [{:.2?}]  (epoch clock resumed at {}, {} entries replayed)",
        t2.elapsed(),
        summary.epoch,
        summary.replayed
    );
    assert_eq!(recovered.current_epoch(), live.current_epoch());

    assert_eq!(recovered.len(), live.len());
    let probes = QueryBatch::new(vec![
        SelectionQuery::point(0, n * 10),
        SelectionQuery::point(0, 7i64),
        SelectionQuery::range_closed(0, 0i64, 100i64),
    ]);
    let a = live.execute_rows(&probes).expect("live rows");
    let b = recovered.execute_rows(&probes).expect("recovered rows");
    assert_eq!(a.rows, b.rows, "global row ids survive recovery");
    println!("recovered node is bit-identical: same answers, same global row ids");

    std::fs::remove_dir_all(&dir).ok();
}
