//! Replicated serving: scale reads out with log shipping, lose nothing.
//!
//! The durable tier (`examples/durable_serving.rs`) makes one node
//! crash-consistent; this example turns that node into a **primary** and
//! hangs a read replica off its WAL:
//!
//! 1. **Publish**: wrap the primary in a `SegmentPublisher` — its WAL
//!    segments become a polled tail subscription, capped at the durable
//!    frontier so a follower can never apply what the primary could lose.
//! 2. **Bootstrap**: a `Follower` loads the primary's checkpoint, fixes
//!    its epoch ↔ LSN dictionary at the cut, and attaches (which also
//!    pins the primary's compactor retention to its cursor).
//! 3. **Serve under fire**: writer threads churn the primary while a
//!    catch-up loop streams shipments — validated frame-by-frame,
//!    mirrored to local disk, then replayed — and a pooled executor
//!    answers batches on the replica, each pinned to the epoch of the
//!    last LSN the follower applied.
//! 4. **Verify**: quiesce and check the replica is bit-identical to the
//!    primary — answers AND global row ids — then kill the follower,
//!    restart it from its mirror, and verify again.
//!
//! Run with: `cargo run --release --example replicated_serving`

use pi_tractable::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    println!("=== Replicated serving: log shipping, epoch-pinned replica reads ===\n");

    let n = 20_000i64;
    let schema = Schema::new(&[("id", ColType::Int)]);
    let rows: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Int(i)]).collect();
    let base = Relation::from_rows(schema, rows).expect("valid rows");

    let root = std::env::temp_dir().join(format!("pitract-repl-ex-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let catalog = SnapshotCatalog::open(root.join("snaps")).expect("catalog dir");
    let config = WalConfig {
        segment_bytes: 64 << 10,
        sync: SyncPolicy::GroupCommit,
    };

    // 1. The primary: durable node + segment publisher, one recorder for
    // the whole replication pair.
    let recorder = Recorder::new();
    let live =
        LiveRelation::build(&base, ShardBy::Hash { col: 0 }, 4, &[0]).expect("valid sharding spec");
    let primary = Arc::new(
        DurableLiveRelation::create_observed(
            live,
            &catalog,
            "orders",
            root.join("wal"),
            config.clone(),
            &recorder,
        )
        .expect("fresh durable node"),
    );
    let publisher = SegmentPublisher::new_observed(Arc::clone(&primary), &recorder);
    println!("primary: 20k rows durable, WAL published for subscription");

    // 2. The follower: checkpoint bootstrap + attach.
    let t0 = Instant::now();
    let follower = Arc::new(
        Follower::bootstrap_observed(
            &catalog,
            "orders",
            root.join("mirror"),
            config.clone(),
            &recorder,
        )
        .expect("bootstrap"),
    );
    let sub = follower.attach(&publisher);
    println!(
        "follower: bootstrapped from the checkpoint in {:.0}ms, attached at lsn {}",
        t0.elapsed().as_secs_f64() * 1e3,
        follower.applied_lsn(),
    );

    // 3. Serve under fire: writers churn the primary, a catch-up loop
    // keeps the replica fresh, a pool answers batches on the replica.
    let exec = PooledExecutor::new(
        Arc::clone(&follower),
        PoolConfig {
            workers: 2,
            max_inflight: 2,
        },
    );
    let batch = QueryBatch::new((0..256i64).map(|k| SelectionQuery::point(0, (k * 997) % n)));
    let t1 = Instant::now();
    let (updates, batches) = std::thread::scope(|scope| {
        let writers: Vec<_> = (0..2i64)
            .map(|w| {
                let primary = Arc::clone(&primary);
                scope.spawn(move || {
                    let mut applied = 0u64;
                    for i in 0..2_000i64 {
                        let gid = primary
                            .insert(vec![Value::Int(n + w * 1_000_000 + i)])
                            .expect("primary insert");
                        applied += 1;
                        if i % 3 == 0 {
                            primary
                                .delete(gid)
                                .expect("primary delete")
                                .expect("live gid");
                            applied += 1;
                        }
                    }
                    applied
                })
            })
            .collect();
        let mut batches = 0u64;
        loop {
            let report = follower.catch_up(&publisher, sub).expect("catch up");
            let result = exec.execute(&batch).expect("replica batch");
            let pinned = result.report.epoch.expect("replica batches pin");
            assert_eq!(
                follower.lsn_of_epoch(pinned),
                report.applied_lsn,
                "each batch reads one consistent prefix of the primary"
            );
            batches += 1;
            if writers.iter().all(|h| h.is_finished()) {
                break;
            }
        }
        let updates: u64 = writers.into_iter().map(|h| h.join().unwrap()).sum();
        (updates, batches)
    });
    primary.wal().sync().expect("final flush");
    let report = follower.catch_up(&publisher, sub).expect("final catch up");
    println!(
        "served {batches}×256 replica queries while the primary absorbed {updates} updates \
         in {:.2}s; final lag {} lsn (durable frontier {})",
        t1.elapsed().as_secs_f64(),
        report.lag,
        report.primary_lsn,
    );

    // 4a. Verify bit-identity: answers and global row ids.
    assert_eq!(follower.len(), primary.len(), "replica row count");
    let mut checked = 0usize;
    for k in (0..n + 2_100_000).step_by(997) {
        let q = SelectionQuery::point(0, k);
        assert_eq!(follower.answer(&q), primary.answer(&q), "answer for {k}");
        assert_eq!(
            follower.matching_ids(&q),
            primary.matching_ids(&q),
            "gids for {k}"
        );
        checked += 1;
    }
    println!(
        "verified {checked} probes bit-identical (answers and global row ids) at epoch {:?}",
        follower.applied_epoch(),
    );

    // 4b. Kill the follower and restart it from its own mirror: the
    // dictionary and the data come back exactly.
    let applied_before = follower.applied_lsn();
    drop(exec);
    drop(follower);
    let t2 = Instant::now();
    let follower =
        Follower::bootstrap_observed(&catalog, "orders", root.join("mirror"), config, &recorder)
            .expect("restart from mirror");
    assert_eq!(
        follower.applied_lsn(),
        applied_before,
        "mirror replayed in full"
    );
    assert_eq!(follower.len(), primary.len(), "row count after restart");
    println!(
        "follower killed and restarted from its mirror in {:.0}ms — cursor and state intact",
        t2.elapsed().as_secs_f64() * 1e3,
    );

    // The replication series are live next to the wal_/pool_/mvcc_ ones.
    let text = pi_tractable::obs::to_prometheus(&recorder.snapshot());
    let lag_line = text
        .lines()
        .find(|l| l.starts_with("replication_lag_lsn"))
        .expect("lag gauge exported");
    let shipped_line = text
        .lines()
        .find(|l| l.starts_with("repl_segments_shipped_total"))
        .expect("shipped counter exported");
    println!("\nmetrics: {lag_line} | {shipped_line}");

    println!("\neverything verified: published, shipped, replayed, bit-identical. ✓");
    let _ = std::fs::remove_dir_all(&root);
}
