//! Log analytics: range selections, views, and incremental maintenance —
//! Sections 4(1), 4(6) and 4(7) of the paper on one workload.
//!
//! An append-heavy log table is queried with Boolean range selections
//! ("was there any ERROR in minute window [t₁, t₂]?"). We compare:
//!
//! * scanning the base table per query,
//! * a B⁺-tree on the timestamp (Π(D) of Section 4(1)),
//! * a materialized "errors only" view (Section 4(6)) kept current under
//!   inserts (Section 4(7) / incremental preprocessing).
//!
//! Run with: `cargo run --release --example log_analytics`

use pi_tractable::prelude::*;
use std::ops::Bound;

fn main() {
    println!("=== Log analytics: ranges, views, incremental maintenance ===\n");

    // The log: (timestamp, severity). One ERROR per ~50 rows.
    let schema = Schema::new(&[("ts", ColType::Int), ("level", ColType::Str)]);
    let n = 100_000i64;
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|t| {
            let level = if t % 50 == 17 { "ERROR" } else { "INFO" };
            vec![Value::Int(t), Value::str(level)]
        })
        .collect();
    let base = Relation::from_rows(schema, rows).expect("valid log rows");
    println!(
        "log table: {} rows, {} errors",
        base.len(),
        base.count_where(&SelectionQuery::point(1, "ERROR"),)
    );

    // The query class: "any ERROR with ts in [a, b]?"
    let window = |a: i64, b: i64| {
        SelectionQuery::and(
            SelectionQuery::point(1, "ERROR"),
            SelectionQuery::range_closed(0, a, b),
        )
    };
    let queries: Vec<SelectionQuery> = (0..100)
        .map(|k| {
            let a = (k * 997) % n;
            window(a, a + 500)
        })
        .collect();

    let meter = Meter::new();

    // Strategy 1: scan the base per query.
    let mut scan_steps = 0u64;
    let mut truth = Vec::new();
    for q in &queries {
        meter.take();
        truth.push(base.eval_scan_metered(q, &meter));
        scan_steps += meter.take();
    }
    println!(
        "\n[1] base-table scan:   {:>7} steps/query",
        scan_steps / queries.len() as u64
    );

    // Strategy 2: B+-tree on severity, verify candidates. (Mutable: the
    // incremental-maintenance section appends rows later.)
    let mut indexed = IndexedRelation::build(&base, &[0, 1]).expect("column 0 exists");
    let mut idx_steps = 0u64;
    for (k, q) in queries.iter().enumerate() {
        meter.take();
        let got = indexed.answer_metered(q, &meter);
        idx_steps += meter.take();
        assert_eq!(got, truth[k]);
    }
    println!(
        "[2] B+-tree indexes:   {:>7} steps/query",
        idx_steps / queries.len() as u64
    );

    // Strategy 3: materialized ERRORS view (all rows, then filtered by the
    // residual predicate at query time). The view holds only ~2% of rows.
    let mut views = ViewSet::new();
    views.add(MaterializedView::materialize(
        "all_ts",
        &base,
        0,
        Bound::Unbounded,
        Bound::Unbounded,
    ));
    // A more useful, smaller view: recent window only.
    views.add(MaterializedView::materialize(
        "recent",
        &base,
        0,
        Bound::Included(Value::Int(n - 10_000)),
        Bound::Unbounded,
    ));
    let mut view_steps = 0u64;
    let mut covered = 0;
    for (k, q) in queries.iter().enumerate() {
        meter.take();
        match views.answer_metered(q, &meter) {
            Ok(got) => {
                covered += 1;
                assert_eq!(got, truth[k]);
            }
            Err(()) => {
                // No covering view: fall back to the base scan.
                base.eval_scan_metered(q, &meter);
            }
        }
        view_steps += meter.take();
    }
    println!(
        "[3] views (λ-rewrite): {:>7} steps/query ({covered}/{} covered by a view)",
        view_steps / queries.len() as u64,
        queries.len()
    );

    // Incremental maintenance: new log rows arrive; views and indexes keep
    // answering without re-preprocessing.
    println!("\nappending 1,000 fresh rows (incremental preprocessing)…");
    for t in n..n + 1_000 {
        let level = if t % 50 == 17 { "ERROR" } else { "INFO" };
        let row = vec![Value::Int(t), Value::str(level)];
        indexed.insert(row.clone()).expect("valid row");
        views.on_insert(&row);
    }
    let fresh = window(n, n + 1_000);
    assert!(indexed.answer(&fresh), "index sees the fresh errors");
    println!("fresh-window query answered from the maintained index: true");
    println!("\nOne preprocessing pass, thousands of cheap queries, updates");
    println!("absorbed incrementally — the paper's deployment story, running.");
}
