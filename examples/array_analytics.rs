//! Array analytics with Π-tractable *functions* — the paper's Section 8
//! open issue (3) ("Π-tractability for search problems and function
//! problems") exercised on the RMQ/LCA machinery.
//!
//! A time-series of sensor readings is queried for the *position* of the
//! minimum in a window (a search problem, not a Boolean one). We build a
//! `SearchScheme` from the Fischer–Heun structure, verify it against the
//! scan, and Booleanize it back into the paper's decision form.
//!
//! Run with: `cargo run --release --example array_analytics`

use pi_tractable::core::cost::CostClass;
use pi_tractable::core::search::SearchScheme;
use pi_tractable::index::rmq::fischer_heun::FischerHeunRmq;
use pi_tractable::index::rmq::naive::NaiveRmq;
use pi_tractable::index::rmq::RangeMin;
use pi_tractable::prelude::*;

fn main() {
    println!("=== Π-tractable functions: windowed minima over a time series ===\n");

    // A day of per-second readings with dips.
    let n = 86_400usize;
    let readings: Vec<i64> = (0..n)
        .map(|t| {
            let base = 500 + ((t as f64 / 3600.0).sin() * 200.0) as i64;
            let dip = if t % 7001 == 0 { -400 } else { 0 };
            base + dip
        })
        .collect();

    // The search problem: Q = (window start, window end) → argmin position.
    let scheme: SearchScheme<Vec<i64>, FischerHeunRmq<i64>, (usize, usize), usize> =
        SearchScheme::new(
            "windowed-argmin (Fischer-Heun)",
            CostClass::Linear,   // O(n) preprocessing
            CostClass::Constant, // O(1) per query
            |d: &Vec<i64>| FischerHeunRmq::build(d),
            |p: &FischerHeunRmq<i64>, &(i, j): &(usize, usize)| p.query(i, j),
        );
    assert!(scheme.claims_pi_tractable());

    let meter = Meter::new();
    let naive = NaiveRmq::build(&readings);
    let preprocessed = scheme.preprocess(&readings);

    let windows: Vec<(usize, usize)> = (0..24)
        .map(|h| (h * 3600, (h * 3600 + 3599).min(n - 1)))
        .collect();

    let mut scan_steps = 0u64;
    println!("hour | window argmin | reading | (scan steps vs O(1) probe)");
    for (h, &(i, j)) in windows.iter().enumerate() {
        meter.take();
        let by_scan = naive.query_metered(i, j, &meter);
        scan_steps += meter.take();
        let by_scheme = scheme.answer(&preprocessed, &(i, j));
        assert_eq!(by_scan, by_scheme, "window [{i},{j}]");
        if h % 6 == 0 {
            println!(
                "  {h:>2} |  t={by_scheme:>6} | {:>6} |",
                readings[by_scheme]
            );
        }
    }
    println!(
        "\nscan: {} steps/window; Fischer-Heun probe: O(1) after one O(n) pass",
        scan_steps / windows.len() as u64
    );

    // The paper's Booleanization: decision form "is the argmin exactly a?"
    let decision = scheme.to_decision();
    let p = decision.preprocess(&readings);
    let (i, j) = windows[3];
    let truth = scheme.answer(&preprocessed, &(i, j));
    assert!(decision.answer(&p, &((i, j), truth)));
    assert!(!decision.answer(&p, &((i, j), truth + 1)));
    println!("\nBooleanized decision form agrees with the search form —");
    println!("Section 8's open issue (3), closed constructively for this class.");
}
