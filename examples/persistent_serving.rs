//! Persistent serving: pay Π(D) once, warm-start every boot after.
//!
//! Definition 1's contract is *one-time* PTIME preprocessing followed by
//! parallel polylog answering — but without persistence the "one-time"
//! cost is paid on every process start. This example walks the full
//! deployment loop:
//!
//! 1. **Cold start**: build a 100k-row `ShardedRelation` (8 hash shards,
//!    B⁺-trees on both columns) — the expensive Π(D).
//! 2. **Persist**: serialize it into a named snapshot via
//!    `SnapshotCatalog` (versioned, checksummed, atomically written).
//! 3. **Warm start**: a fresh engine loads the snapshot from disk —
//!    no rebuild — and serves a 1,000-query batch against it.
//! 4. **Verify**: warm answers equal the cold engine's answers, row ids
//!    included.
//!
//! Run with: `cargo run --release --example persistent_serving`

use pi_tractable::prelude::*;
use std::time::Instant;

fn mixed_batch(n: i64) -> QueryBatch {
    QueryBatch::new((0..1_000i64).map(|k| match k % 4 {
        0 => SelectionQuery::point(0, (k * 997) % (n + n / 10)),
        1 => SelectionQuery::range_closed(0, (k * 641) % n, (k * 641) % n + 250),
        2 => SelectionQuery::and(
            SelectionQuery::point(1, format!("grp{}", k % 100).as_str()),
            SelectionQuery::range_closed(0, (k * 331) % n, (k * 331) % n + 5_000),
        ),
        _ => SelectionQuery::point(0, n + k),
    }))
}

fn main() {
    println!("=== Persistent snapshots: serialize Π(D) once, warm-start from disk ===\n");

    let n = 100_000i64;
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 100))])
        .collect();
    let base = Relation::from_rows(schema, rows).expect("valid rows");

    // 1. Cold start: the one-time PTIME preprocessing.
    let t0 = Instant::now();
    let cold = ShardedRelation::build(&base, ShardBy::Hash { col: 0 }, 8, &[0, 1])
        .expect("valid sharding spec");
    let build_time = t0.elapsed();
    println!(
        "cold Π(D): {} rows -> 8 shards, indexes on both columns  [{build_time:.2?}]",
        cold.len()
    );

    // 2. Persist under a name. The catalog writes atomically (temp file +
    //    rename), so a crash mid-save can never corrupt a served snapshot.
    let dir = std::env::temp_dir().join(format!("pitract-serving-{}", std::process::id()));
    let catalog = SnapshotCatalog::open(&dir).expect("catalog dir");
    let t0 = Instant::now();
    let path = catalog
        .save("traffic", &Snapshot::Sharded(cold))
        .expect("snapshot save");
    let save_time = t0.elapsed();
    let file_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "persisted:  {} ({:.1} MiB)  [{save_time:.2?}]",
        path.display(),
        file_bytes as f64 / (1024.0 * 1024.0)
    );

    // 3. Warm start: a fresh engine, nothing in memory, loads Π(D) from
    //    disk instead of rebuilding it.
    let t0 = Instant::now();
    let warm = catalog
        .load("traffic")
        .expect("snapshot load")
        .into_sharded()
        .expect("sharded snapshot");
    let load_time = t0.elapsed();
    println!(
        "warm start: loaded {} rows across {} shards  [{load_time:.2?}]  ({:.1}x faster than rebuild)\n",
        warm.len(),
        warm.shard_count(),
        build_time.as_secs_f64() / load_time.as_secs_f64().max(1e-9)
    );

    // 4. Serve a batch from the warm engine and verify against a cold one.
    let batch = mixed_batch(n);
    let t0 = Instant::now();
    let result = batch.execute(&warm).expect("valid batch");
    let serve_time = t0.elapsed();
    let hits = result.answers.iter().filter(|&&a| a).count();
    println!(
        "served {} queries from the warm engine in {serve_time:.2?} ({hits} hits)",
        batch.len()
    );
    print!("paths:");
    for (label, count) in result.report.path_histogram() {
        print!("  {label} x{count}");
    }
    println!("\n");

    let rebuilt = ShardedRelation::build(&base, ShardBy::Hash { col: 0 }, 8, &[0, 1])
        .expect("valid sharding spec");
    let oracle = batch.execute(&rebuilt).expect("valid batch");
    assert_eq!(
        result.answers, oracle.answers,
        "warm == cold on every query"
    );
    println!("verified: warm-started answers identical to the cold-rebuilt oracle");

    catalog.remove("traffic").expect("cleanup snapshot");
    let _ = std::fs::remove_dir_all(&dir);
}
