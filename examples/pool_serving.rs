//! Pooled serving: a worker pool spawned once, batches streamed through.
//!
//! The scoped executor (`examples/sharded_serving.rs`) spawns and joins
//! one thread per shard for *every* batch — the spawn/join tax rides on
//! the serving path. This example runs serving as a **session** instead:
//!
//! 1. **Go durable**: a 50k-row relation sharded 8 ways behind a
//!    `DurableLiveRelation` (checkpoint + write-ahead log).
//! 2. **Open the session**: a `PooledExecutor` sizes a worker pool once
//!    (workers ≤ available cores, capped at the shard count) with an
//!    admission gate bounding in-flight batches.
//! 3. **Stream batches under fire**: query batches flow through the
//!    standing workers while a writer thread lands durable updates with
//!    `apply_batch` — many records per WAL commit, one fsync per batch.
//! 4. **Verify**: every batch is checked against the scan oracle, and
//!    the batched writes recover bit-identically after a cold drop.
//!
//! Run with: `cargo run --release --example pool_serving`

use pi_tractable::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    println!("=== Pooled serving: a standing worker pool + batched durable writes ===\n");

    let n = 50_000i64;
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 100))])
        .collect();
    let base = Relation::from_rows(schema, rows).expect("valid rows");

    let root = std::env::temp_dir().join(format!("pitract-pool-ex-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let catalog = SnapshotCatalog::open(root.join("snaps")).expect("catalog dir");
    let wal_dir = root.join("wal");
    let config = WalConfig {
        segment_bytes: 256 << 10,
        sync: SyncPolicy::GroupCommit,
    };

    // 1. Go durable: Π(D) across 8 shards + bootstrap checkpoint + WAL.
    let live = LiveRelation::build(&base, ShardBy::Hash { col: 0 }, 8, &[0, 1])
        .expect("valid sharding spec");
    let node = Arc::new(
        DurableLiveRelation::create(live, &catalog, "orders", &wal_dir, config.clone())
            .expect("fresh durable node"),
    );

    // 2. Open the serving session: workers spawn once, here, not per batch.
    let exec = PooledExecutor::with_default_pool(Arc::clone(&node));
    println!(
        "session open: {} worker(s) for 8 shards, at most {} batch(es) in flight",
        exec.pool().workers(),
        exec.pool().max_inflight(),
    );

    // 3. Stream batches while a writer lands batched durable updates.
    let batch = QueryBatch::new((0..256i64).map(|k| match k % 3 {
        0 => SelectionQuery::point(0, (k * 997) % n),
        1 => SelectionQuery::range_closed(0, (k * 641) % n, (k * 641) % n + 150),
        _ => SelectionQuery::and(
            SelectionQuery::point(1, format!("grp{}", k % 100).as_str()),
            SelectionQuery::range_closed(0, (k * 331) % n, (k * 331) % n + 1_500),
        ),
    }));
    let oracle: Vec<bool> = batch.queries().iter().map(|q| base.eval_scan(q)).collect();
    let rounds = 20usize;
    let t0 = Instant::now();
    let written: usize = std::thread::scope(|scope| {
        let writer = Arc::clone(&node);
        let handle = scope.spawn(move || {
            let mut written = 0usize;
            for chunk in 0..25i64 {
                // 128 inserts per call — staged record by record, made
                // durable by ONE trailing commit (one fsync per batch).
                let ops = (0..128i64).map(|j| {
                    UpdateOp::Insert(vec![Value::Int(n + chunk * 128 + j), Value::str("hot")])
                });
                written += writer.apply_batch(ops).expect("durable batch").len();
            }
            written
        });
        for round in 0..rounds {
            let got = exec.execute(&batch).expect("pooled batch");
            assert_eq!(got.answers, oracle, "round {round} diverged from oracle");
        }
        handle.join().unwrap()
    });
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "streamed {rounds}×256 verified queries through the standing pool while \
         {written} durable updates landed in {} apply_batch commits \
         ({:.0} queries/s alongside {:.0} updates/s); wal: {} records durable",
        written / 128,
        (rounds * 256) as f64 / secs,
        written as f64 / secs,
        node.wal().durable_lsn(),
    );

    // Row-id lookups ride the same pool.
    let rows_batch = QueryBatch::new((0..64i64).map(|k| SelectionQuery::point(0, k * 7)));
    let got = exec.execute_rows(&rows_batch).expect("pooled rows");
    for (k, ids) in got.rows.iter().enumerate() {
        assert_eq!(ids, &vec![k * 7], "global id of key {}", k * 7);
    }
    println!("row-id lookups verified: key k maps to global row id k, pool or no pool");

    // 4. Crash cold; recovery must replay every batched write.
    let expected_len = node.len();
    drop(exec);
    drop(node);
    let node = DurableLiveRelation::recover(&catalog, "orders", &wal_dir, config)
        .expect("recovery after the session");
    assert_eq!(
        node.len(),
        expected_len,
        "batched writes survived the crash"
    );
    assert!(node.answer(&SelectionQuery::point(0, n + 25 * 128 - 1)));
    println!(
        "\nrecovered: all {written} batched updates replayed — session throughput, \
         per-record durability. ✓"
    );
    let _ = std::fs::remove_dir_all(&root);
}
