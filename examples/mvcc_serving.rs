//! MVCC serving: every batch reads one consistent cut, writers never wait.
//!
//! A batch fanned out across shards can otherwise observe a database
//! instance that never existed — shard 0 answered before an update,
//! shard 3 after it. This example shows the epoch-pinned read path
//! closing that hole without blocking writers:
//!
//! 1. **Build the live tier**: a 20k-row relation sharded 4 ways behind
//!    a `LiveRelation`; every applied update ticks a monotonic `Epoch`.
//! 2. **Serve under churn**: batches flow through a `PooledExecutor`
//!    while writer threads race them. Each batch pins one epoch
//!    (`BatchReport::epoch`) and every shard answers at exactly that
//!    instance; writers push O(1) undo records around the pin.
//! 3. **Prove the cut**: for each batch, replay exactly `epoch` log
//!    entries onto a fresh build — the oracle's row ids must equal the
//!    batch's, bit for bit.
//! 4. **Crash and recover**: checkpoint, drop the node, recover — the
//!    epoch clock resumes exactly where the lost node's stood
//!    (`Recovered`), so pinned reads mean the same instant across the
//!    restart.
//!
//! Run with: `cargo run --release --example mvcc_serving`

use pi_tractable::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    println!("=== MVCC serving: one consistent epoch per batch, writers never blocked ===\n");

    let n = 20_000i64;
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 50))])
        .collect();
    let base = Relation::from_rows(schema, rows).expect("valid rows");

    // 1. The live tier: Π(D) across 4 shards, epoch clock at zero.
    let live = Arc::new(
        LiveRelation::build(&base, ShardBy::Hash { col: 0 }, 4, &[0, 1])
            .expect("valid sharding spec"),
    );
    let exec = PooledExecutor::with_default_pool(Arc::clone(&live));
    println!(
        "live tier up: {} rows, 4 shards, epoch clock at {}",
        live.len(),
        live.current_epoch()
    );

    // Queries that deliberately cover the volatile key region the
    // writers churn in — a torn read would change these answers.
    let batch = QueryBatch::new(vec![
        SelectionQuery::range_closed(0, 0i64, n * 2),
        SelectionQuery::point(1, "hot"),
        SelectionQuery::and(
            SelectionQuery::point(1, "hot"),
            SelectionQuery::range_closed(0, n, n * 2),
        ),
        SelectionQuery::range_closed(0, n - 100, n + 500),
    ]);

    // 2. Serve while two writers race the batches.
    let t0 = Instant::now();
    let mut observed: Vec<(Epoch, Vec<Vec<usize>>)> = Vec::new();
    std::thread::scope(|scope| {
        for w in 0..2i64 {
            let live = Arc::clone(&live);
            scope.spawn(move || {
                for i in 0..150i64 {
                    let gid = live
                        .insert(vec![Value::Int(n + w * 10_000 + i), Value::str("hot")])
                        .expect("valid row");
                    if i % 3 == 0 {
                        live.delete(gid).unwrap().expect("own insert still live");
                    }
                }
            });
        }
        for _ in 0..8 {
            let got = exec.execute_rows(&batch).expect("valid batch");
            let epoch = got.report.epoch.expect("pooled batches pin an epoch");
            observed.push((epoch, got.rows));
        }
    });
    println!(
        "served {} batches against 2 racing writers in {:.2?}; pinned epochs: {:?}",
        observed.len(),
        t0.elapsed(),
        observed.iter().map(|(e, _)| e.get()).collect::<Vec<_>>()
    );

    // 3. The consistency proof: epoch E names the state after exactly E
    //    logged updates; replaying that prefix reproduces each batch's
    //    row ids bit-identically.
    let log = live.pending_log();
    for (epoch, rows) in &observed {
        let prefix = UpdateLog::from_entries(log.entries()[..epoch.get() as usize].to_vec());
        let oracle = LiveRelation::build(&base, ShardBy::Hash { col: 0 }, 4, &[0, 1])
            .expect("valid sharding spec");
        oracle.replay(&prefix).expect("own history replays");
        let expect = oracle.execute_rows(&batch).expect("valid batch");
        assert_eq!(&expect.rows, rows, "batch at pinned epoch {epoch} diverged");
    }
    println!("every batch bit-identical to the log-prefix oracle at its pinned epoch");
    let stats = live.version_stats();
    println!(
        "version rings drained: {} pins, {} retained versions (clock at {})",
        stats.pins, stats.retained_versions, stats.current_epoch
    );

    // 4. Crash and recover: the epoch clock survives the restart.
    let dir = std::env::temp_dir().join(format!("pitract-mvcc-ex-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let catalog = SnapshotCatalog::open(&dir).expect("catalog dir");
    live.checkpoint(&catalog, "mvcc-orders")
        .expect("checkpoint");
    live.insert(vec![Value::Int(n * 5), Value::str("post-checkpoint")])
        .expect("valid row");
    let (recovered, summary) = LiveRelation::recover(&catalog, "mvcc-orders", &live.pending_log())
        .expect("snapshot load + log replay");
    println!(
        "recovered: epoch clock resumed at {} ({} entries replayed)",
        summary.epoch, summary.replayed
    );
    assert_eq!(recovered.current_epoch(), live.current_epoch());
    recovered
        .insert(vec![Value::Int(n * 6), Value::str("next")])
        .expect("valid row");
    live.insert(vec![Value::Int(n * 6), Value::str("next")])
        .expect("valid row");
    assert_eq!(
        recovered.current_epoch(),
        live.current_epoch(),
        "both nodes stamp the next update identically"
    );
    println!(
        "post-recovery updates stamped identically on both nodes (epoch {})",
        live.current_epoch()
    );

    std::fs::remove_dir_all(&dir).ok();
}
