//! Observed serving: one recorder watching the whole durable stack.
//!
//! The paper's contract is a cost *profile* — query work bounded by the
//! accessed fraction Π(D), maintenance by |CHANGED| — and this example
//! shows the `pitract-obs` layer measuring that profile on a live node
//! instead of trusting it:
//!
//! 1. **Wire**: one `Recorder` threads through
//!    `DurableLiveRelation::create_observed` and
//!    `PooledExecutor::new_observed`, so the WAL (`wal_*`), worker pool
//!    (`pool_*`), MVCC read cuts (`mvcc_*`), and query engine
//!    (`engine_*`) all publish into the same registry.
//! 2. **Serve under churn**: writer threads absorb durable updates
//!    while verified query batches run — every fsync, admission wait,
//!    plan choice, and undo-ring walk lands in a metric.
//! 3. **Crash with a torn tail**: drop the node cold and leave a
//!    half-written record; `recover_observed` truncates it *observably*
//!    — a `wal_torn_tail_truncated` trace event plus
//!    `wal_recovery_*` counters, not a silent byte-chop.
//! 4. **Export**: dump the snapshot as Prometheus text and JSON
//!    (`target/observed_serving.prom` / `.json`), verify all four
//!    subsystem prefixes are live, and round-trip the JSON losslessly.
//!
//! Run with: `cargo run --release --example observed_serving`

use pi_tractable::obs::to_prometheus;
use pi_tractable::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    println!("=== Observed serving: one recorder across WAL, pool, MVCC, engine ===\n");

    let n = 50_000i64;
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 100))])
        .collect();
    let base = Relation::from_rows(schema, rows).expect("valid rows");

    let root = std::env::temp_dir().join(format!("pitract-observed-ex-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let catalog = SnapshotCatalog::open(root.join("snaps")).expect("catalog dir");
    let wal_dir = root.join("wal");
    let config = WalConfig {
        segment_bytes: 256 << 10,
        sync: SyncPolicy::GroupCommit,
    };

    // 1. Wire: one recorder for the whole node.
    let recorder = Recorder::new();
    let live = LiveRelation::build(&base, ShardBy::Hash { col: 0 }, 8, &[0, 1])
        .expect("valid sharding spec");
    let node = DurableLiveRelation::create_observed(
        live,
        &catalog,
        "orders",
        &wal_dir,
        config.clone(),
        &recorder,
    )
    .expect("fresh durable node");
    let exec = PooledExecutor::new_observed(
        Arc::new(node),
        PoolConfig {
            workers: 4,
            max_inflight: 8,
        },
        &recorder,
    );
    println!("wired: durable node + 4-worker pool publishing into one registry");

    // 2. Serve under churn: 4 writers, 12 verified batches.
    let batch = QueryBatch::new((0..256i64).map(|k| match k % 3 {
        0 => SelectionQuery::point(0, (k * 997) % n),
        1 => SelectionQuery::range_closed(0, (k * 641) % n, (k * 641) % n + 150),
        _ => SelectionQuery::and(
            SelectionQuery::point(1, format!("grp{}", k % 100).as_str()),
            SelectionQuery::range_closed(0, (k * 331) % n, (k * 331) % n + 1_500),
        ),
    }));
    let oracle: Vec<bool> = batch.queries().iter().map(|q| base.eval_scan(q)).collect();
    let t0 = Instant::now();
    let applied: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4i64)
            .map(|w| {
                let node = Arc::clone(exec.relation());
                scope.spawn(move || {
                    let mut applied = 0u64;
                    for i in 0..1_000i64 {
                        let gid = node
                            .insert(vec![Value::Int(n + w * 1_000_000 + i), Value::str("hot")])
                            .expect("durable insert");
                        applied += 1;
                        if i % 2 == 0 {
                            node.delete(gid).expect("durable delete").expect("live gid");
                            applied += 1;
                        }
                    }
                    applied
                })
            })
            .collect();
        for round in 0..12 {
            let got = exec.execute(&batch).expect("batch");
            assert_eq!(got.answers, oracle, "round {round} diverged from oracle");
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    exec.relation().wal().sync().expect("final flush");
    exec.relation().publish_metrics();
    exec.stats().publish(&recorder);
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "served 12×256 verified queries while absorbing {applied} durable updates \
         ({:.0} updates/s) — every fsync, plan choice, and pin recorded",
        applied as f64 / secs,
    );

    let snap = recorder.snapshot();
    println!("\nmid-flight registry highlights:");
    for name in [
        "wal_appends_total",
        "pool_batches_admitted_total",
        "engine_queries_total",
        "engine_updates_total",
    ] {
        println!("  {name} = {}", snap.counter(name).expect("live counter"));
    }
    let fsync = snap.histogram("wal_fsync_micros").expect("fsync histogram");
    println!(
        "  wal_fsync_micros: count={} p50={}us p99={}us",
        fsync.count,
        fsync.quantile(0.50),
        fsync.quantile(0.99),
    );

    // 3. Crash with a torn tail, then recover observably.
    drop(exec);
    let newest = std::fs::read_dir(&wal_dir)
        .expect("wal dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .max()
        .expect("segments exist");
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&newest)
            .expect("open segment");
        f.write_all(&64u32.to_le_bytes()).expect("torn frame");
        f.write_all(&[0xAB; 5]).expect("torn frame");
    }
    println!("\ncrash: process gone, a half-written (never confirmed) record torn at the tail");

    let recorder = Recorder::new();
    let node =
        DurableLiveRelation::recover_observed(&catalog, "orders", &wal_dir, config, &recorder)
            .expect("recovery");
    let replayed = node.recovery_summary().expect("recovered node").replayed;
    let exec = PooledExecutor::new_observed(
        Arc::new(node),
        PoolConfig {
            workers: 4,
            max_inflight: 8,
        },
        &recorder,
    );
    assert_eq!(exec.execute(&batch).expect("batch").answers, oracle);
    exec.relation().publish_metrics();
    exec.stats().publish(&recorder);
    let snap = recorder.snapshot();
    let torn = recorder
        .drain_trace()
        .into_iter()
        .find(|e| e.name == "wal_torn_tail_truncated")
        .expect("torn-tail trace event");
    println!(
        "recovered: replayed {replayed} compacted entries; truncation observed — \
         {} torn bytes, {} dropped record(s), trace event `{}` emitted",
        snap.counter("wal_recovery_torn_bytes_total")
            .expect("torn byte counter"),
        snap.counter("wal_recovery_dropped_records_total")
            .expect("dropped record counter"),
        torn.name,
    );

    // 4. Export: Prometheus text + JSON, written for scrapers/CI.
    let text = to_prometheus(&snap);
    for prefix in ["wal_", "pool_", "mvcc_", "engine_"] {
        assert!(
            text.lines().any(|l| l.starts_with(prefix)),
            "missing {prefix} series in the export"
        );
    }
    let json = snap.to_json();
    let reparsed = MetricsSnapshot::from_json(&json).expect("well-formed snapshot JSON");
    assert_eq!(reparsed, snap, "JSON export must round-trip losslessly");

    let out_dir = std::path::Path::new("target");
    let _ = std::fs::create_dir_all(out_dir);
    std::fs::write(out_dir.join("observed_serving.prom"), &text).expect("write .prom");
    std::fs::write(out_dir.join("observed_serving.json"), json.render_pretty())
        .expect("write .json");
    println!(
        "\nexported {} Prometheus series (all four prefixes live) to \
         target/observed_serving.prom and a lossless JSON twin to \
         target/observed_serving.json",
        text.lines().filter(|l| !l.starts_with('#')).count(),
    );

    println!("\neverything verified: served, crashed, recovered — and every step measured. ✓");
    let _ = std::fs::remove_dir_all(&root);
}
