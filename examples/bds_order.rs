//! The BDS dichotomy of Figure 1, plus Theorem 5's reduction direction.
//!
//! Breadth-Depth Search is P-complete: with the factorization Υ′ that
//! preprocesses nothing, every "is u visited before v?" query re-runs the
//! full PTIME search. With Υ_BDS (Example 5) the graph is searched once and
//! queries become probes into the visit order. This example measures both
//! sides, then uses the workspace's connectivity→BDS reduction to answer a
//! different problem through the BDS index — the "reduce to the complete
//! problem" method the paper recommends.
//!
//! Run with: `cargo run --release --example bds_order`

use pi_tractable::graph::bds::visited_before_by_search;
use pi_tractable::graph::generate;
use pi_tractable::prelude::*;
use pi_tractable::reductions::connectivity_to_bds;

fn main() {
    println!("=== Breadth-Depth Search: Figure 1's two factorizations ===\n");

    let side = 60; // 3600-node grid
    let g = generate::grid(side);
    let n = g.node_count();
    println!(
        "graph: {}x{side} grid, {n} nodes, {} edges",
        side,
        g.edge_count()
    );

    let queries: Vec<(usize, usize)> = (0..50)
        .map(|i| ((i * 389) % n, (i * 241 + 13) % n))
        .collect();

    // Υ′: preprocess nothing — full search per query.
    let meter = Meter::new();
    let mut search_steps = 0u64;
    let mut answers = Vec::new();
    for &(u, v) in &queries {
        meter.take();
        answers.push(visited_before_by_search(&g, u, v, &meter));
        search_steps += meter.take();
    }
    println!(
        "\n[Υ′ ] full BDS per query:     {:>8} steps/query",
        search_steps / queries.len() as u64
    );

    // Υ_BDS: one search as Π(D), then O(1)/O(log n) probes.
    let idx = BdsIndex::build(&g);
    let mut probe_steps = 0u64;
    let mut bsearch_steps = 0u64;
    for (k, &(u, v)) in queries.iter().enumerate() {
        meter.take();
        let a1 = idx.visited_before_metered(u, v, &meter);
        probe_steps += meter.take();
        let a2 = idx.visited_before_binary_search(u, v, &meter);
        bsearch_steps += meter.take();
        assert_eq!(a1, answers[k]);
        assert_eq!(a2, answers[k]);
    }
    println!(
        "[ΥBDS] O(1) position probes:  {:>8} steps/query",
        probe_steps / queries.len() as u64
    );
    println!(
        "[ΥBDS] O(log n) binary search:{:>8} steps/query (Example 5's bound)",
        bsearch_steps / queries.len() as u64
    );

    // Theorem 5 direction: answer source-connectivity THROUGH BDS.
    println!("\n=== Reducing source-connectivity to BDS (≤NC_fa) ===\n");
    let sparse = generate::gnp_undirected(1_500, 0.0008, 7);
    let scheme = connectivity_to_bds::transferred_connectivity_scheme();
    let pre = scheme.preprocess(&sparse);
    let connected = (0..sparse.node_count())
        .filter(|t| scheme.answer(&pre, t))
        .count();
    println!("sparse G(n=1500, p=0.0008): component of node 0 has {connected} nodes,");
    println!("computed via: plant sentinel → one BDS → O(1) probes per node.");
    println!("\nThat is the paper's program: find a `≤NC_fa` reduction to the");
    println!("ΠTP-complete problem, preprocess once, and the class is tractable.");
}
