//! Durable serving: a crash at any instant loses no confirmed update.
//!
//! The live serving tier (`examples/live_serving.rs`) keeps its update
//! log in memory — everything since the last checkpoint sits in a crash
//! window. This example closes that window with the `pitract-wal`
//! write-ahead log and walks the whole durability loop:
//!
//! 1. **Go durable**: wrap a 50k-row live relation in a
//!    `DurableLiveRelation` — a bootstrap checkpoint plus an fsync'd,
//!    checksummed segment log with group-commit batching.
//! 2. **Serve under fire**: writer threads churn inserts/deletes while
//!    query batches verify a stable region against the scan oracle; every
//!    confirmed update is on disk before its caller sees it succeed.
//! 3. **Crash**: drop the node cold — and, for good measure, leave a
//!    half-written record at the log's tail, exactly what a power cut
//!    mid-append does.
//! 4. **Recover**: checkpoint load + compacted tail replay; verify the
//!    recovered node is bit-identical on rows, answers, and row ids.
//! 5. **Compact**: checkpoint, rotate, compact the closed segments, and
//!    show replay work now tracks the *net* change, not the churn.
//!
//! Run with: `cargo run --release --example durable_serving`

use pi_tractable::prelude::*;
use std::time::Instant;

fn main() {
    println!("=== Durable serving: WAL, crash recovery, compaction ===\n");

    let n = 50_000i64;
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 100))])
        .collect();
    let base = Relation::from_rows(schema, rows).expect("valid rows");

    let root = std::env::temp_dir().join(format!("pitract-durable-ex-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let catalog = SnapshotCatalog::open(root.join("snaps")).expect("catalog dir");
    let wal_dir = root.join("wal");
    let config = WalConfig {
        segment_bytes: 256 << 10,
        sync: SyncPolicy::GroupCommit,
    };

    // 1. Go durable: Π(D) across 8 shards + bootstrap checkpoint + WAL.
    let t0 = Instant::now();
    let live = LiveRelation::build(&base, ShardBy::Hash { col: 0 }, 8, &[0, 1])
        .expect("valid sharding spec");
    let node = DurableLiveRelation::create(live, &catalog, "orders", &wal_dir, config.clone())
        .expect("fresh durable node");
    println!(
        "bootstrap: 50k rows sharded, checkpointed, and WAL-attached in {:.0}ms",
        t0.elapsed().as_secs_f64() * 1e3
    );

    // 2. Serve under fire: 4 writers churn while batches verify.
    let batch = QueryBatch::new((0..256i64).map(|k| match k % 3 {
        0 => SelectionQuery::point(0, (k * 997) % n),
        1 => SelectionQuery::range_closed(0, (k * 641) % n, (k * 641) % n + 150),
        _ => SelectionQuery::and(
            SelectionQuery::point(1, format!("grp{}", k % 100).as_str()),
            SelectionQuery::range_closed(0, (k * 331) % n, (k * 331) % n + 1_500),
        ),
    }));
    let oracle: Vec<bool> = batch.queries().iter().map(|q| base.eval_scan(q)).collect();
    let t1 = Instant::now();
    let applied: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4i64)
            .map(|w| {
                let node = &node;
                scope.spawn(move || {
                    let mut applied = 0u64;
                    for i in 0..1_500i64 {
                        let gid = node
                            .insert(vec![Value::Int(n + w * 1_000_000 + i), Value::str("hot")])
                            .expect("durable insert");
                        applied += 1;
                        if i % 2 == 0 {
                            node.delete(gid).expect("durable delete").expect("live gid");
                            applied += 1;
                        }
                    }
                    applied
                })
            })
            .collect();
        for round in 0..10 {
            let got = node.execute(&batch).expect("batch");
            assert_eq!(got.answers, oracle, "round {round} diverged from oracle");
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    node.wal().sync().expect("final flush");
    let secs = t1.elapsed().as_secs_f64();
    println!(
        "served 10×256 verified queries while absorbing {} durable updates \
         ({:.0} updates/s, group commit); wal: {} records durable",
        applied,
        applied as f64 / secs,
        node.wal().durable_lsn(),
    );

    // 3. Crash. Cold drop, plus a torn record: append half a frame to
    // the newest segment — exactly what a power cut leaves when it hits
    // mid-append, before the update was ever confirmed to its caller.
    let expected: Vec<Option<Vec<Value>>> =
        (0..(n as usize + 7_000)).map(|gid| node.row(gid)).collect();
    let expected_len = node.len();
    drop(node);
    let newest = std::fs::read_dir(&wal_dir)
        .expect("wal dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .max()
        .expect("segments exist");
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&newest)
            .expect("open segment");
        // A length prefix promising 64 payload bytes, then silence.
        f.write_all(&64u32.to_le_bytes()).expect("torn frame");
        f.write_all(&[0xAB; 5]).expect("torn frame");
    }
    println!("\ncrash: process gone, a half-written (never confirmed) record torn at the tail");

    // 4. Recover and verify bit-identical state.
    let t2 = Instant::now();
    let node = DurableLiveRelation::recover(&catalog, "orders", &wal_dir, config.clone())
        .expect("recovery");
    let recover_ms = t2.elapsed().as_secs_f64() * 1e3;
    assert_eq!(node.len(), expected_len, "live count after recovery");
    let mut checked = 0usize;
    for (gid, expect) in expected.iter().enumerate() {
        assert_eq!(&node.row(gid), expect, "gid {gid} after recovery");
        checked += 1;
    }
    assert_eq!(node.execute(&batch).expect("batch").answers, oracle);
    println!(
        "recovered in {recover_ms:.0}ms: {checked} row slots, 256 answers, and every \
         global row id verified identical (the torn record was never confirmed, so it is gone)"
    );

    // 5. Compact: checkpoint covers the churn, rotation closes the
    // segments, compaction drops what cancels.
    node.checkpoint(&catalog, "orders").expect("checkpoint");
    node.wal().rotate_now().expect("rotate");
    let report = node.compact_wal().expect("compaction");
    println!(
        "\ncompaction: {} records / {} KiB across {} closed segments → {} records / {} KiB \
         ({} rewritten, {} removed)",
        report.records_before,
        report.bytes_before >> 10,
        report.segments_seen,
        report.records_after,
        report.bytes_after >> 10,
        report.segments_rewritten,
        report.segments_removed,
    );
    drop(node);
    let t3 = Instant::now();
    let node = DurableLiveRelation::recover(&catalog, "orders", &wal_dir, config)
        .expect("recovery after compaction");
    println!(
        "post-compaction recovery replayed {} entries in {:.0}ms — bounded by net change, \
         not the {} updates of churn",
        node.boundedness_report().len(),
        t3.elapsed().as_secs_f64() * 1e3,
        applied,
    );
    assert_eq!(node.len(), expected_len);
    assert_eq!(node.execute(&batch).expect("batch").answers, oracle);

    println!("\neverything verified: durable, crash-consistent, compacted. ✓");
    let _ = std::fs::remove_dir_all(&root);
}
