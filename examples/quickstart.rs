//! Quickstart: the paper's Example 1, end to end.
//!
//! A class Q₁ of point-selection queries over a relation D. Without
//! preprocessing every query scans D (O(n)); after PTIME preprocessing
//! (a B⁺-tree on the queried attribute) every query answers in O(log n).
//! The example measures both with step meters, fits the growth curves,
//! and redoes the paper's "1 PB in 1.9 days vs seconds" arithmetic from
//! the fitted model.
//!
//! Run with: `cargo run --release --example quickstart`

use pi_tractable::prelude::*;

fn main() {
    println!("=== Π-tractability quickstart: point selection (paper Example 1) ===\n");

    let sizes = [1u64 << 12, 1 << 14, 1 << 16, 1 << 18];
    let mut scan_samples = Vec::new();
    let mut index_samples = Vec::new();

    for &n in &sizes {
        // The database D: one integer attribute, n rows.
        let schema = Schema::new(&[("a", ColType::Int)]);
        let rows = (0..n as i64).map(|i| vec![Value::Int(i)]).collect();
        let relation = Relation::from_rows(schema, rows).expect("valid rows");

        // Π(D): build the B+-tree index (one-time, PTIME).
        let indexed = IndexedRelation::build(&relation, &[0]).expect("column 0 exists");

        // A batch of queries: mostly misses (worst case for the scan).
        let queries: Vec<SelectionQuery> = (0..64)
            .map(|k| SelectionQuery::point(0, (n as i64) + k))
            .collect();

        let meter = Meter::new();
        let mut scan_steps = 0;
        let mut index_steps = 0;
        for q in &queries {
            meter.take();
            relation.eval_scan_metered(q, &meter);
            scan_steps += meter.take();
            indexed.answer_metered(q, &meter);
            index_steps += meter.take();
        }
        let per_scan = scan_steps / queries.len() as u64;
        let per_index = index_steps / queries.len() as u64;
        println!("n = {n:>8}: scan {per_scan:>8} steps/query | B+-tree {per_index:>3} steps/query");
        scan_samples.push(Sample::new(n, per_scan));
        index_samples.push(Sample::new(n, per_index));
    }

    let scan_fit = best_fit(&scan_samples);
    let index_fit = best_fit(&index_samples);
    println!("\nfitted growth:");
    println!("  scan      : best fit {}", scan_fit.best().model);
    println!("  B+-tree   : best fit {}", index_fit.best().model);

    // The paper's arithmetic: 1 PB at 6 GB/s scan speed vs log-time probes.
    // (Section 1: "a linear scan of D takes ... 1.9 days!")
    let pb = 1e15f64;
    let scan_seconds = pb / 6e9;
    println!("\npaper's 1 PB arithmetic, re-derived:");
    println!(
        "  linear scan of 1 PB at 6 GB/s: {:.0} s = {:.1} days",
        scan_seconds,
        scan_seconds / 86_400.0
    );
    // An O(log n) probe touches ~log2(n) cache lines; even charging a full
    // disk seek (10 ms) per comparison stays interactive.
    let comparisons = (pb).log2().ceil();
    println!(
        "  B+-tree probe: ~{comparisons:.0} comparisons; at 10 ms each: {:.1} s",
        comparisons * 0.01
    );

    println!("\nΠ-tractability in one line: preprocessing moved the class from");
    println!("'days per query' to 'seconds per query' — that is ΠT⁰Q membership.");
}
