//! Social-network reachability: Example 3 + Section 4(5) of the paper.
//!
//! A degree-skewed (preferential-attachment) digraph stands in for the
//! social graphs of the paper's compression citations. Three ways to answer
//! "can u reach v":
//!
//! 1. **No preprocessing** — BFS per query (the infeasible-on-big-data
//!    baseline);
//! 2. **All-pairs closure index** — the paper's "precompute a matrix …
//!    answer in O(1)";
//! 3. **Query-preserving compression** — collapse SCCs and merge
//!    reachability-equivalent nodes, then answer on the smaller graph.
//!
//! Run with: `cargo run --release --example social_network`

use pi_tractable::graph::compress::compression_stats;
use pi_tractable::graph::generate;
use pi_tractable::graph::traverse::reachable_bfs_metered;
use pi_tractable::prelude::*;

fn main() {
    println!("=== Social-network reachability: index vs compression ===\n");

    let n = 2_000;
    let g = generate::preferential_attachment(n, 3, 42);
    println!(
        "graph: {} nodes, {} edges (preferential attachment, skewed in-degree)",
        g.node_count(),
        g.edge_count()
    );

    // Strategy 1: per-query BFS.
    let meter = Meter::new();
    let queries: Vec<(usize, usize)> = (0..200)
        .map(|i| ((i * 37) % n, (i * 101 + 7) % n))
        .collect();
    let mut bfs_steps = 0u64;
    let mut bfs_answers = Vec::new();
    for &(s, t) in &queries {
        meter.take();
        bfs_answers.push(reachable_bfs_metered(&g, s, t, &meter));
        bfs_steps += meter.take();
    }
    println!(
        "\n[1] BFS per query:      {:>8} steps/query (no preprocessing)",
        bfs_steps / queries.len() as u64
    );

    // Strategy 2: all-pairs closure (PTIME preprocessing, O(1) queries).
    let idx = ReachIndex::build(&g);
    let mut idx_steps = 0u64;
    for (k, &(s, t)) in queries.iter().enumerate() {
        meter.take();
        let ans = idx.reachable_metered(s, t, &meter);
        idx_steps += meter.take();
        assert_eq!(ans, bfs_answers[k], "index disagrees with BFS");
    }
    println!(
        "[2] closure matrix:     {:>8} steps/query ({} reachable pairs precomputed)",
        idx_steps / queries.len() as u64,
        idx.reachable_pairs()
    );

    // Strategy 3: query-preserving compression.
    let compressed = CompressedReach::build(&g);
    let stats = compression_stats(&g, &compressed);
    let mut c_steps = 0u64;
    for (k, &(s, t)) in queries.iter().enumerate() {
        meter.take();
        let ans = compressed.reachable_metered(s, t, &meter);
        c_steps += meter.take();
        assert_eq!(ans, bfs_answers[k], "compressed graph changed an answer");
    }
    println!(
        "[3] compressed graph:   {:>8} steps/query",
        c_steps / queries.len() as u64
    );
    println!(
        "    compression: {} -> {} nodes, {} -> {} edges (ratio {:.2}x, answers preserved)",
        stats.nodes.0, stats.nodes.1, stats.edges.0, stats.edges.1, stats.ratio
    );

    println!("\nAll three strategies agree on every query; only their cost profiles");
    println!("differ — which is precisely the point of Π-tractability.");
}
