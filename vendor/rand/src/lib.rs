//! Offline shim for the subset of the [`rand` 0.8](https://docs.rs/rand/0.8)
//! API this workspace uses: `StdRng::seed_from_u64`, `Rng::{gen_range,
//! gen_bool, gen}`, and `SliceRandom::{shuffle, choose}`.
//!
//! The workspace is built in environments without network access, so the
//! real crates.io dependency cannot be fetched. Everything here is
//! deterministic: `StdRng` is an xoshiro256** generator seeded via
//! splitmix64, which is the same construction rand's `SmallRng` family
//! uses. Distribution quality is more than sufficient for test-input
//! generation and randomized graph construction, which is all the
//! workspace asks of it. To switch back to the real crate, point the
//! `rand` entry of `[workspace.dependencies]` at a version requirement.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words; the root trait of the shim.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is exposed).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // lo + u*(hi-lo) can round up to exactly `end` for u just under 1;
        // step down to the previous float to keep the half-open contract.
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

/// Maps 64 random bits to a float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a "standard" uniform distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut dyn RngCore) -> $t { rng.next_u64() as $t }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        unit_f64(rng.next_u64())
    }
}

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p.clamp(0.0, 1.0)
    }

    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 seed expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait providing `shuffle` and `choose`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn f64_range_never_returns_excluded_bound() {
        // A one-ULP-wide range maximizes the rounding pressure on the
        // upper bound; the result must still be strictly below `end`.
        let lo = 1.0f64;
        let hi = lo.next_up();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "{v} escaped [{lo}, {hi})");
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
