//! Offline shim for the subset of [criterion 0.5](https://docs.rs/criterion)
//! used by this workspace's benches: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input,
//! finish}`, `BenchmarkId::new`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! It measures wall-clock time with `std::time::Instant` and prints one
//! line per benchmark (median ns/iter over the sampled batches). There is
//! no statistical analysis, HTML report, or baseline comparison — the
//! point is that `cargo bench` runs hermetically and the bench sources
//! compile unmodified against the real crate when network access returns
//! (swap the `criterion` entry of `[workspace.dependencies]` for a
//! version requirement).
//!
//! When invoked with `--test` (as `cargo test --benches` does) every
//! benchmark body runs exactly once, so bench targets double as smoke
//! tests. Positional CLI arguments act as substring filters on benchmark
//! ids, mirroring criterion's filtering.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark in full mode.
const TARGET_MEASURE: Duration = Duration::from_millis(200);

/// The top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    filters: Vec<String>,
    sample_size: usize,
    ran: std::cell::Cell<usize>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::parse_args(std::env::args().skip(1))
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        // A filter that matches nothing would otherwise look like a
        // successful (but empty) run.
        if !self.filters.is_empty() && self.ran.get() == 0 {
            eprintln!(
                "criterion shim: no benchmarks matched filters {:?}",
                self.filters
            );
        }
    }
}

impl Criterion {
    fn parse_args(args: impl Iterator<Item = String>) -> Self {
        let mut test_mode = false;
        let mut filters = Vec::new();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Zero-argument flags cargo/libtest/criterion pass that the
                // shim safely ignores.
                "--bench" | "--nocapture" | "--quiet" | "-q" | "--verbose" | "--exact"
                | "--list" | "--include-ignored" | "--noplot" | "--discard-baseline" => {}
                // Value-taking flags: consume the value so it is never
                // mistaken for a benchmark filter.
                "--sample-size"
                | "--measurement-time"
                | "--warm-up-time"
                | "--color"
                | "--format"
                | "--logfile"
                | "--skip"
                | "--save-baseline"
                | "--baseline"
                | "--load-baseline"
                | "--significance-level"
                | "--noise-threshold"
                | "--confidence-level"
                | "--profile-time" => {
                    args.next();
                }
                s if s.starts_with("--") && s.contains('=') => {}
                s if s.starts_with('-') => {
                    eprintln!("criterion shim: ignoring unknown flag `{s}`");
                }
                s => filters.push(s.to_string()),
            }
        }
        Criterion {
            test_mode,
            filters,
            sample_size: 10,
            ran: std::cell::Cell::new(0),
        }
    }

    /// Begins a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.sample_size;
        self.run_one(&id.render(), sample_size, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, id: &str, sample_size: usize, mut f: F) {
        if !self.filters.is_empty() && !self.filters.iter().any(|p| id.contains(p.as_str())) {
            return;
        }
        self.ran.set(self.ran.get() + 1);
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {id} ... ok");
        } else if let Some(ns) = bencher.median_ns() {
            println!("{id:<60} {ns:>14.1} ns/iter");
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    // Per-group, snapshotted from the Criterion default at creation, so one
    // group's setting never leaks into later groups (matches real criterion).
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches per benchmark (full mode only).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` under `self.name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().render());
        self.criterion.run_one(&full, self.sample_size, f);
        self
    }

    /// Benchmarks `f`, passing `input` through (criterion's parameterized
    /// form; the shim forwards the reference verbatim).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark id carrying only a parameter (criterion's
    /// `from_parameter`).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Calls `routine` repeatedly and records per-iteration wall time. In
    /// `--test` mode the routine runs exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Calibrate: how many iterations fit in ~1/10 of a sample budget?
        let calibrate = Instant::now();
        std::hint::black_box(routine());
        let once = calibrate.elapsed().max(Duration::from_nanos(1));
        let budget = TARGET_MEASURE / self.sample_size as u32;
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    fn median_ns(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Some(s[s.len() / 2])
    }
}

/// Re-export matching criterion's `black_box` (std's is canonical now).
pub use std::hint::black_box;

/// Bundles benchmark functions into a named group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render() {
        assert_eq!(BenchmarkId::new("probe", 8).render(), "probe/8");
        assert_eq!(BenchmarkId::from_parameter(32).render(), "32");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }

    #[test]
    fn test_mode_runs_each_body_once() {
        let mut c = Criterion::parse_args(["--test".to_string()].into_iter());
        let mut runs = 0;
        {
            let mut group = c.benchmark_group("g");
            group.bench_function("one", |b| b.iter(|| runs += 1));
            group.finish();
        }
        assert_eq!(runs, 1);
    }

    #[test]
    fn value_flag_arguments_do_not_become_filters() {
        let c = Criterion::parse_args(
            ["--measurement-time", "5", "--sample-size", "50", "--bench"]
                .map(String::from)
                .into_iter(),
        );
        assert!(c.filters.is_empty(), "flag values leaked: {:?}", c.filters);
        assert!(!c.test_mode);
    }

    #[test]
    fn unknown_flags_are_ignored_not_filtered() {
        let c = Criterion::parse_args(
            ["--no-such-flag", "--opt=value", "real_filter"]
                .map(String::from)
                .into_iter(),
        );
        assert_eq!(c.filters, vec!["real_filter".to_string()]);
    }

    #[test]
    fn sample_size_does_not_leak_across_groups() {
        let mut c = Criterion::parse_args(["--test".to_string()].into_iter());
        {
            let mut g1 = c.benchmark_group("g1");
            g1.sample_size(20);
            assert_eq!(g1.sample_size, 20);
            g1.finish();
        }
        let g2 = c.benchmark_group("g2");
        assert_eq!(g2.sample_size, 10);
    }

    #[test]
    fn filters_skip_unmatched_benchmarks() {
        let mut c =
            Criterion::parse_args(["--test".to_string(), "match_me".to_string()].into_iter());
        let mut runs = 0;
        c.bench_function("other", |b| b.iter(|| runs += 1));
        c.bench_function("match_me_too", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}
