//! Offline shim for the subset of [proptest 1.x](https://docs.rs/proptest)
//! used by this workspace's property suites: the `proptest!` macro with
//! `pattern in strategy` arguments, range / tuple / collection / regex-lite
//! string strategies, `any::<T>()`, the `prop_assert*` family, and
//! `prop_assume!`.
//!
//! Differences from the real crate, chosen deliberately for hermetic CI:
//!
//! * **Deterministic by default.** Every test function runs a fixed number
//!   of cases (`PROPTEST_CASES`, default 64) from a fixed seed
//!   (`PROPTEST_SEED`, default `0x5EED_CAFE`) perturbed by the test name,
//!   so CI failures always reproduce locally.
//! * **No shrinking.** On failure the full generated inputs are printed
//!   instead; cases here are small enough to eyeball.
//! * **Regex strategies** support only the `.{lo,hi}` / `.{n}` / `.*` /
//!   `.+` shapes the workspace uses.
//!
//! To switch back to the crates.io release, point the `proptest` entry of
//! `[workspace.dependencies]` at a version requirement; the test sources
//! need no edits.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias so `prop::collection::vec(..)` works as in proptest.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// item expands to a `#[test]` that runs the body over generated cases.
///
/// Implementation note: arguments are split on *top-level* commas by the
/// token-munching [`__proptest_case!`] helper (commas inside strategy
/// expressions always sit inside `(..)`/`[..]` token trees), which is how
/// the shim supports optional `mut` on argument patterns without macro
/// ambiguity.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($args:tt)+) $body:block)*) => {
        $(
            $crate::__proptest_case! { @parse [$(#[$meta])*] $name [] ($($args)+) $body }
        )*
    };
}

/// Internal recursive parser behind [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // --- argument list parsing: `mut? ident in <strategy tokens>` -------
    (@parse $meta:tt $name:ident [$($acc:tt)*] (mut $arg:ident in $($rest:tt)+) $body:block) => {
        $crate::__proptest_case! { @strat $meta $name [$($acc)*] $arg [] ($($rest)+) $body }
    };
    (@parse $meta:tt $name:ident [$($acc:tt)*] ($arg:ident in $($rest:tt)+) $body:block) => {
        $crate::__proptest_case! { @strat $meta $name [$($acc)*] $arg [] ($($rest)+) $body }
    };
    (@parse $meta:tt $name:ident [$($acc:tt)*] () $body:block) => {
        $crate::__proptest_case! { @emit $meta $name [$($acc)*] $body }
    };
    // --- strategy accumulation until a top-level `,` or end -------------
    (@strat $meta:tt $name:ident [$($acc:tt)*] $arg:ident [$($strat:tt)+] (, $($rest:tt)*) $body:block) => {
        $crate::__proptest_case! { @parse $meta $name [$($acc)* ($arg [$($strat)+])] ($($rest)*) $body }
    };
    (@strat $meta:tt $name:ident [$($acc:tt)*] $arg:ident [$($strat:tt)+] () $body:block) => {
        $crate::__proptest_case! { @emit $meta $name [$($acc)* ($arg [$($strat)+])] $body }
    };
    (@strat $meta:tt $name:ident $acc:tt $arg:ident [$($strat:tt)*] ($t:tt $($rest:tt)*) $body:block) => {
        $crate::__proptest_case! { @strat $meta $name $acc $arg [$($strat)* $t] ($($rest)*) $body }
    };
    // --- code generation -------------------------------------------------
    (@emit [$(#[$meta:meta])*] $name:ident [$(($arg:ident [$($strat:tt)+]))+] $body:block) => {
        $(#[$meta])*
        fn $name() {
            // `render_only` asks for the inputs of the current case as a
            // string WITHOUT running the body: cases are regenerable from
            // the deterministic per-case seed, so the runner re-invokes in
            // this mode only after a failure, keeping Debug-formatting off
            // the passing-case hot path.
            $crate::test_runner::run(stringify!($name), |__pt_rng, __pt_render_only| {
                $(
                    #[allow(unused_mut)]
                    let mut $arg = $crate::strategy::Strategy::generate(&($($strat)+), __pt_rng);
                )+
                if __pt_render_only {
                    let __pt_inputs = format!(
                        concat!($(concat!(stringify!($arg), " = {:?}\n")),+),
                        $(&$arg),+
                    );
                    return (::std::result::Result::Ok(()), ::std::option::Option::Some(__pt_inputs));
                }
                let mut __pt_body = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                (__pt_body(), ::std::option::Option::None)
            });
        }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal (`==`) inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`\n  note: {}",
            stringify!($left), stringify!($right), left, right, format!($($fmt)+)
        );
    }};
}

/// Asserts two expressions are unequal (`!=`) inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: `{:?}`",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: `{:?}`\n  note: {}",
            stringify!($left), stringify!($right), left, format!($($fmt)+)
        );
    }};
}

/// Discards the current case (without failing) when a precondition on the
/// generated inputs does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)*),
            ));
        }
    };
}
