//! `any::<T>()` and the [`Arbitrary`] trait for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.rng.next_u64() as u128) << 64) | rng.rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only; tests compare and sort generated floats.
        (rng.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2e6 - 1e6
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (0x20 + (rng.rng.next_u64() % 0x5F)) as u8 as char
    }
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_wide_ranges() {
        let mut rng = TestRng::for_test("any_covers_wide_ranges");
        let mut seen_high = false;
        let mut seen_low = false;
        for _ in 0..256 {
            let v: u64 = any::<u64>().generate(&mut rng);
            seen_high |= v > u64::MAX / 2;
            seen_low |= v < u64::MAX / 2;
        }
        assert!(seen_high && seen_low);
    }
}
