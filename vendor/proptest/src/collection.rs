//! Collection strategies: `vec` and `hash_set` with size ranges.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// Inclusive bounds on a generated collection's size.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn sample(self, rng: &mut TestRng) -> usize {
        rng.rng.gen_range(self.min..=self.max)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` values (see [`vec`]).
#[derive(Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose elements come from `element` and whose length
/// lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<T>` values (see [`hash_set`]).
#[derive(Debug)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates hash sets whose elements come from `element` and whose
/// cardinality lies in `size` (best effort: if the element domain is too
/// small to reach the minimum, generation panics rather than looping).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        while out.len() < target {
            out.insert(self.element.generate(rng));
            attempts += 1;
            assert!(
                attempts < target.saturating_mul(64) + 256,
                "proptest shim: hash_set element domain too small for size {target}"
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_are_respected() {
        let mut rng = TestRng::for_test("vec_sizes");
        for _ in 0..200 {
            let v = vec(0u64..10, 3..7).generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn nested_collections_work() {
        let mut rng = TestRng::for_test("nested");
        let vv = vec(vec(0u8..5, 0..4), 2..5).generate(&mut rng);
        assert!((2..5).contains(&vv.len()));
    }

    #[test]
    fn hash_set_hits_requested_cardinality() {
        let mut rng = TestRng::for_test("hash_set");
        for _ in 0..100 {
            let s = hash_set(0u64..300, 1..150).generate(&mut rng);
            assert!((1..150).contains(&s.len()));
        }
    }
}
