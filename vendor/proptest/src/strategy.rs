//! Value-generation strategies: ranges, tuples, constants, and a
//! regex-lite string strategy.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Blanket impl so `&strategy` works wherever a strategy is expected.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng.gen_range(self.clone())
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String literals act as regex strategies in proptest. The shim supports
/// the shapes this workspace uses: `.{lo,hi}`, `.{n}`, `.*`, `.+`, and a
/// plain literal string (matched exactly). Generated characters are
/// printable ASCII.
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = match parse_dot_quantifier(self) {
            Some(bounds) => bounds,
            None if !self.contains(['.', '*', '+', '{', '[', '(', '\\', '?']) => {
                return self.to_string();
            }
            None => panic!(
                "proptest shim: unsupported regex strategy {self:?} \
                 (supported: `.{{lo,hi}}`, `.{{n}}`, `.*`, `.+`, literals)"
            ),
        };
        let len = rng.rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| rng.rng.gen_range(0x20u32..0x7F) as u8 as char)
            .collect()
    }
}

/// Parses `.{lo,hi}` / `.{n}` / `.*` / `.+` into inclusive length bounds.
fn parse_dot_quantifier(pattern: &str) -> Option<(usize, usize)> {
    match pattern {
        "." => return Some((1, 1)),
        ".*" => return Some((0, 8)),
        ".+" => return Some((1, 8)),
        _ => {}
    }
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    match body.split_once(',') {
        Some((lo, hi)) => Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?)),
        None => {
            let n = body.trim().parse().ok()?;
            Some((n, n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn dot_quantifier_parses() {
        assert_eq!(parse_dot_quantifier(".{0,12}"), Some((0, 12)));
        assert_eq!(parse_dot_quantifier(".{5}"), Some((5, 5)));
        assert_eq!(parse_dot_quantifier(".*"), Some((0, 8)));
        assert_eq!(parse_dot_quantifier("abc"), None);
    }

    #[test]
    fn string_strategy_respects_bounds() {
        let mut rng = TestRng::for_test("string_strategy_respects_bounds");
        for _ in 0..200 {
            let s = ".{0,12}".generate(&mut rng);
            assert!(s.len() <= 12);
            assert!(s.is_ascii());
        }
    }

    #[test]
    fn tuple_and_range_strategies_compose() {
        let mut rng = TestRng::for_test("tuple_and_range");
        for _ in 0..200 {
            let (a, b, c) = (0u8..3, 10u64..20, -5i64..5).generate(&mut rng);
            assert!(a < 3);
            assert!((10..20).contains(&b));
            assert!((-5..5).contains(&c));
        }
    }
}
