//! The deterministic case runner: seeding, case counting, rejection
//! accounting, and failure reporting.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default number of cases per property (override with `PROPTEST_CASES`).
pub const DEFAULT_CASES: u32 = 64;

/// Default base seed (override with `PROPTEST_SEED`). Fixed so CI runs are
/// reproducible; combined with the test name so distinct properties see
/// distinct streams.
pub const DEFAULT_SEED: u64 = 0x5EED_CAFE;

/// The RNG handed to strategies. Wraps the vendored [`StdRng`].
#[derive(Debug, Clone)]
pub struct TestRng {
    /// Underlying generator (public so strategies in this crate can draw).
    pub rng: StdRng,
}

impl TestRng {
    /// Builds the RNG for case `case` of the named test.
    fn new(name: &str, base_seed: u64, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(base_seed ^ h ^ ((case as u64) << 32)),
        }
    }

    /// Convenience constructor for unit tests of the shim itself.
    pub fn for_test(name: &str) -> Self {
        TestRng::new(name, DEFAULT_SEED, 0)
    }
}

/// Why a test case did not pass: a discarded precondition or a failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`; the runner tries another.
    Reject(String),
    /// The property is false for these inputs.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Builds a rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "{r}"),
        }
    }
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Runs one property. `body` receives the per-case RNG plus a
/// `render_only` flag: when the flag is set it must generate the case's
/// inputs and return their `Debug` rendering *without* executing the
/// property body. Cases are regenerable from the deterministic per-case
/// seed, so the runner requests a rendering only after a failure —
/// passing cases never pay for input formatting. Panics — failing the
/// enclosing `#[test]` — on the first falsified case.
pub fn run<F>(name: &str, mut body: F)
where
    F: FnMut(&mut TestRng, bool) -> (Result<(), TestCaseError>, Option<String>),
{
    let cases = env_u64("PROPTEST_CASES", DEFAULT_CASES as u64) as u32;
    let base_seed = env_u64("PROPTEST_SEED", DEFAULT_SEED);
    let max_rejects = cases.saturating_mul(8).max(256);

    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u32;
    while passed < cases {
        let mut rng = TestRng::new(name, base_seed, case);
        case += 1;
        // Catch panics from inside the property body (stray unwrap on
        // generated data, index out of bounds, ...) so they get the same
        // input-replay report as prop_assert! failures.
        let (outcome, _) = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            body(&mut rng, false)
        })) {
            Ok(result) => result,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".into());
                let mut replay = TestRng::new(name, base_seed, case - 1);
                let (_, inputs) = body(&mut replay, true);
                panic!(
                    "proptest: property `{name}` panicked at case {} \
                     (seed 0x{base_seed:X}; rerun with PROPTEST_SEED={base_seed})\n\
                     {msg}\ninputs:\n{}",
                    case - 1,
                    inputs.unwrap_or_default()
                );
            }
        };
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest shim: `{name}` rejected {rejected} cases \
                     (passed {passed}/{cases}); loosen the prop_assume! filter"
                );
            }
            Err(TestCaseError::Fail(reason)) => {
                let mut replay = TestRng::new(name, base_seed, case - 1);
                let (_, inputs) = body(&mut replay, true);
                panic!(
                    "proptest: property `{name}` falsified at case {} \
                     (seed 0x{base_seed:X}; rerun with PROPTEST_SEED={base_seed})\n\
                     {reason}\ninputs:\n{}",
                    case - 1,
                    inputs.unwrap_or_default()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases_without_rendering() {
        let mut n = 0;
        run("passing", |_, render_only| {
            assert!(!render_only, "inputs must not be rendered on success");
            n += 1;
            (Ok(()), None)
        });
        assert_eq!(n, DEFAULT_CASES);
    }

    #[test]
    #[should_panic(expected = "x = 3")]
    fn failing_property_panics_with_replayed_inputs() {
        run("failing", |_, render_only| {
            if render_only {
                (Ok(()), Some("x = 3\n".into()))
            } else {
                (Err(TestCaseError::fail("nope")), None)
            }
        });
    }

    #[test]
    #[should_panic(expected = "inputs:\ny = 7")]
    fn body_panics_also_replay_inputs() {
        run("body_panics", |_, render_only| {
            if render_only {
                (Ok(()), Some("y = 7\n".into()))
            } else {
                panic!("stray unwrap in the property body");
            }
        });
    }

    #[test]
    fn rejections_are_retried() {
        let mut n = 0u32;
        run("rejecting", |_, _| {
            n += 1;
            if n.is_multiple_of(2) {
                (Err(TestCaseError::reject("odd only")), None)
            } else {
                (Ok(()), None)
            }
        });
        assert!(n > DEFAULT_CASES);
    }

    #[test]
    fn seeds_differ_across_cases_and_names() {
        use rand::RngCore;
        let a = TestRng::new("alpha", DEFAULT_SEED, 0).rng.next_u64();
        let b = TestRng::new("alpha", DEFAULT_SEED, 1).rng.next_u64();
        let c = TestRng::new("beta", DEFAULT_SEED, 0).rng.next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
