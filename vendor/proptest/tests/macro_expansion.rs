//! End-to-end tests of the `proptest!` macro expansion: argument parsing
//! (plain, `mut`, trailing commas), strategy composition, assumption
//! rejection, and the failure path's lazy input replay.

use proptest::prelude::*;

proptest! {
    /// Plain args, tuple + collection strategies, assertions.
    #[test]
    fn composite_strategies_generate_in_bounds(
        n in 1usize..20,
        pairs in prop::collection::vec((0u8..4, -3i64..3), 0..30),
        label in ".{0,12}",
    ) {
        prop_assert!((1..20).contains(&n));
        for (a, b) in &pairs {
            prop_assert!(*a < 4);
            prop_assert!((-3..3).contains(b));
        }
        prop_assert!(label.len() <= 12, "label too long: {label:?}");
    }

    /// `mut` argument patterns compile and the binding is mutable.
    #[test]
    fn mut_arguments_are_mutable(mut xs in prop::collection::vec(0i32..100, 0..50)) {
        xs.sort_unstable();
        prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
    }

    /// `prop_assume!` discards cases without failing the property.
    #[test]
    fn assumptions_reject_instead_of_failing(x in 0u64..100) {
        prop_assume!(x.is_multiple_of(2));
        prop_assert!(x.is_multiple_of(2));
    }

    /// The failure path panics with the falsifying inputs rendered via the
    /// deterministic replay (checked by the `should_panic` expectation).
    #[test]
    #[should_panic(expected = "inputs:\nx = ")]
    fn failures_report_replayed_inputs(x in 0u64..10) {
        prop_assert!(x > 100, "forced failure for x = {x}");
    }

    /// Panics inside the body (not just prop_assert! failures) still get
    /// the falsifying inputs replayed into the report.
    #[test]
    #[should_panic(expected = "inputs:\nx = ")]
    fn body_panics_report_replayed_inputs(x in 0u64..10) {
        let opt: Option<u64> = if x < 100 { None } else { Some(x) };
        prop_assert_eq!(opt.expect("forced panic on generated data"), x);
    }

    /// `any::<T>()` works for the primitive types the workspace uses.
    #[test]
    fn any_strategies_cover_primitives(
        a in any::<u8>(),
        b in any::<u64>(),
        c in any::<i32>(),
        d in any::<bool>(),
    ) {
        // Pure type-level exercise: roundtrip each value through a cast
        // and assert consistency, so all four draws are consumed.
        prop_assert_eq!(u64::from(a), a as u64);
        prop_assert_eq!(b.wrapping_add(1).wrapping_sub(1), b);
        prop_assert_eq!(i64::from(c) as i32, c);
        prop_assert_ne!(d, !d);
    }
}

/// Determinism contract: the same property sees identical inputs across
/// runs within one process (same env seed).
#[test]
fn generation_is_deterministic_across_runs() {
    let collect = || {
        let mut rng = TestRng::for_test("determinism_probe");
        prop::collection::vec(0u64..1000, 5..10).generate(&mut rng)
    };
    assert_eq!(collect(), collect());
}
