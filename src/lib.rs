//! # pi-tractable — making queries tractable on big data with preprocessing
//!
//! A Rust reproduction of Fan, Geerts & Neven, *"Making Queries Tractable
//! on Big Data with Preprocessing (through the eyes of complexity theory)"*,
//! PVLDB 6(9), 2013.
//!
//! The paper proposes **Π-tractability**: a query class is feasible on big
//! data if a one-time PTIME preprocessing step `Π(D)` enables every query to
//! be answered in NC (parallel polylog time). This facade crate re-exports
//! the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`core`] | languages of pairs, factorizations, schemes, `≤NC_F` / `≤NC_fa` reductions, cost model, curve fitting |
//! | [`pram`] | work/depth PRAM substrate (the executable NC model) |
//! | [`index`] | B⁺-trees, sorted/hash indexes, RMQ and LCA structures |
//! | [`graph`] | breadth-depth search, reachability indexes, SCC, query-preserving compression, generators |
//! | [`relation`] | typed relations, selection query classes, indexed evaluation, materialized views |
//! | [`engine`] | sharded batch serving: hash/range partitioning, cost-based planning, scoped-thread and pooled batch execution, live serving under concurrent updates |
//! | [`store`] | persistent snapshots: versioned, checksummed serialization of preprocessed structures + a named catalog for warm starts, live checkpoint/recover |
//! | [`wal`] | durable write-ahead log: fsync'd checksummed segments, group commit, torn-tail recovery, compaction, crash-consistent durable serving |
//! | [`repl`] | WAL-shipping replication: primary-side segment publisher with retention watermarks, checkpoint-bootstrapped followers serving epoch-pinned consistent replica reads |
//! | [`obs`] | zero-dependency observability: metrics registry (counters, gauges, log-bucket histograms), timing spans, bounded event tracing, Prometheus/JSON exporters |
//! | [`circuit`] | Boolean circuits and CVP (the Theorem 9 witness) |
//! | [`kernel`] | Vertex Cover with Buss kernelization |
//! | [`incremental`] | bounded incremental computation (|CHANGED| accounting) |
//! | [`reductions`] | concrete reductions between the case-study classes |
//! | [`analysis`] | invariant lints for this workspace's own sources (`pitract-lint`) |
//!
//! ## Quickstart
//!
//! ```
//! use pi_tractable::prelude::*;
//!
//! // The paper's Example 1: point selections, scan vs. index.
//! let schema = Schema::new(&[("id", ColType::Int)]);
//! let rows = (0..10_000i64).map(|i| vec![Value::Int(i)]).collect();
//! let relation = Relation::from_rows(schema, rows).unwrap();
//!
//! // No preprocessing: a linear scan per query.
//! let query = SelectionQuery::point(0, 9_999i64);
//! assert!(relation.eval_scan(&query));
//!
//! // PTIME preprocessing Π(D): build a B+-tree, answer in O(log n).
//! let indexed = IndexedRelation::build(&relation, &[0]).unwrap();
//! assert!(indexed.answer(&query));
//! ```
//!
//! ## Serving at scale
//!
//! The NC half of Definition 1 is about *parallel* answering. The
//! [`engine`] crate realizes it with real threads: a
//! [`ShardedRelation`](crate::engine::shard::ShardedRelation) hash- or
//! range-partitions the data across shards (each one an independently
//! indexed `Π(D)`), a [`Planner`](crate::engine::planner::Planner) routes
//! every query to its cheapest access path, and a
//! [`QueryBatch`](crate::engine::batch::QueryBatch) fans a batch of
//! queries out across shards on scoped threads, merging answers and
//! per-query step meters into a batch cost report.
//!
//! ```
//! use pi_tractable::prelude::*;
//!
//! let schema = Schema::new(&[("id", ColType::Int)]);
//! let rows = (0..10_000i64).map(|i| vec![Value::Int(i)]).collect();
//! let relation = Relation::from_rows(schema, rows).unwrap();
//!
//! // Π(D) at scale: 4 hash shards, each with a B+-tree on column 0.
//! let sharded = ShardedRelation::build(&relation, ShardBy::Hash { col: 0 }, 4, &[0]).unwrap();
//!
//! // A batch of queries answered in one parallel fan-out.
//! let batch = QueryBatch::new((0..100i64).map(|k| SelectionQuery::point(0, k * 101)));
//! let result = batch.execute(&sharded).unwrap();
//! assert!(result.answers.iter().filter(|&&a| a).count() == 100);
//! assert!(result.report.total_steps > 0);
//! ```
//!
//! ## Persisting Π(D)
//!
//! Definition 1's preprocessing is *one-time* — so it should be paid
//! once, not on every process start. The [`store`] crate serializes any
//! preprocessed structure to a versioned, checksummed snapshot and warm-
//! starts a fresh engine from disk:
//!
//! ```
//! use pi_tractable::prelude::*;
//!
//! # let schema = Schema::new(&[("id", ColType::Int)]);
//! # let rows = (0..1_000i64).map(|i| vec![Value::Int(i)]).collect();
//! # let relation = Relation::from_rows(schema, rows).unwrap();
//! let sharded = ShardedRelation::build(&relation, ShardBy::Hash { col: 0 }, 4, &[0]).unwrap();
//!
//! // Persist Π(D) under a name…
//! # let dir = std::env::temp_dir().join(format!("pitract-facade-{}", std::process::id()));
//! let catalog = SnapshotCatalog::open(&dir).unwrap();
//! catalog.save("ids", &Snapshot::Sharded(sharded)).unwrap();
//!
//! // …and serve from the reloaded snapshot: same answers, same row ids,
//! // no rebuild.
//! let warm = catalog.load("ids").unwrap().into_sharded().unwrap();
//! assert!(warm.answer(&SelectionQuery::point(0, 999i64)));
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! ## Live serving
//!
//! A production tier answers queries *while* updates land. A
//! [`LiveRelation`](crate::engine::live::LiveRelation) puts each shard
//! behind its own read/write lock: batch fan-out takes read locks on only
//! the shards a query routes to, and an insert/delete write-locks only
//! the one shard its key routes to, so writers never stall the rest of
//! the fleet. Every update is `|CHANGED|`-accounted (Section 4(7)) and
//! appended to a replayable update log; `checkpoint` persists the state
//! through the snapshot catalog and `recover` replays the log on top —
//! bit-identical answers and row ids.
//!
//! ```
//! use pi_tractable::prelude::*;
//!
//! # let schema = Schema::new(&[("id", ColType::Int)]);
//! # let rows = (0..1_000i64).map(|i| vec![Value::Int(i)]).collect();
//! # let relation = Relation::from_rows(schema, rows).unwrap();
//! let live = LiveRelation::build(&relation, ShardBy::Hash { col: 0 }, 4, &[0]).unwrap();
//!
//! // Updates go through a shared reference — no `&mut`, no global lock.
//! let gid = live.insert(vec![Value::Int(5_000)]).unwrap();
//! live.delete(3).unwrap();
//!
//! // Queries and whole batches serve concurrently with those updates.
//! assert!(live.answer(&SelectionQuery::point(0, 5_000i64)));
//! let batch = QueryBatch::new((0..50i64).map(|k| SelectionQuery::point(0, k * 17)));
//! let answers = live.execute(&batch).unwrap();
//! assert_eq!(answers.answers.len(), 50);
//!
//! // Maintenance was |CHANGED|-accounted, and the update log can
//! // checkpoint/recover through the store's `LiveCheckpoint` trait.
//! assert_eq!(live.boundedness_report().len(), 2);
//! assert_eq!(live.pending_log().len(), 2);
//! # let _ = gid;
//! ```
//!
//! ## Consistent reads: one epoch-stamped cut per batch
//!
//! Per-shard locking alone leaves a batch *read-committed*: each shard
//! answers at whatever state it holds when the fan-out reaches it, so a
//! racing writer can make one batch observe half an update. Every write
//! therefore ticks a global [`Epoch`](crate::core::epoch::Epoch) clock,
//! and a batch pins the clock once ([`LiveRelation::pin`](crate::engine::live::LiveRelation::pin) /
//! [`EpochPin`](crate::engine::live::EpochPin)) and evaluates every
//! shard *at* that epoch — one consistent cut, recorded in
//! [`BatchReport::epoch`](crate::engine::batch::BatchReport::epoch).
//! Writers are never blocked by a pin: they push O(1) undo records onto
//! a per-shard ring and move on, readers roll the few post-pin writes
//! back at evaluation time, and the rings trim to the oldest live pin's
//! watermark ([`VersionStats`](crate::engine::live::VersionStats) counts
//! what is currently retained). Checkpoints persist the cut's epoch and
//! recovery resumes the clock exactly, so an epoch names the same
//! database state across restarts.
//!
//! ```
//! use pi_tractable::prelude::*;
//!
//! # let schema = Schema::new(&[("id", ColType::Int)]);
//! # let rows = (0..1_000i64).map(|i| vec![Value::Int(i)]).collect();
//! # let relation = Relation::from_rows(schema, rows).unwrap();
//! let live = LiveRelation::build(&relation, ShardBy::Hash { col: 0 }, 4, &[0]).unwrap();
//!
//! // Pin a cut, then update: the writer is not blocked, the clock
//! // advances past the pin, and the undo ring retains what the pinned
//! // reader still needs.
//! let before = live.current_epoch();
//! let pin = live.pin();
//! live.insert(vec![Value::Int(5_000)]).unwrap();
//! assert!(live.current_epoch() > before);
//! assert!(live.version_stats().retained_versions > 0);
//!
//! // Releasing the pin reclaims the retained undo records.
//! drop(pin);
//! assert_eq!(live.version_stats().retained_versions, 0);
//!
//! // Every batch pins its own cut automatically and reports it.
//! let batch = QueryBatch::new((0..50i64).map(|k| SelectionQuery::point(0, k * 17)));
//! let result = live.execute(&batch).unwrap();
//! assert_eq!(result.report.epoch, Some(live.current_epoch()));
//! ```
//!
//! ## The executor: a serving session, not a query
//!
//! `QueryBatch::execute` spawns scoped threads per batch — fine for a
//! one-off, but a serving tier answers batches continuously. A
//! [`PooledExecutor`](crate::engine::pool::PooledExecutor) spawns a
//! sized worker pool once per session, submits each batch as per-shard
//! work items over a channel, and caps concurrently admitted batches
//! with an admission gate; a worker panic is returned as a typed error
//! without poisoning the pool. Any serving target works — a
//! `ShardedRelation`, a `LiveRelation`, or a durable node — via the
//! [`BatchServe`](crate::engine::pool::BatchServe) trait. On the write
//! side, [`LiveRelation::apply_batch`](crate::engine::live::LiveRelation::apply_batch)
//! applies a run of updates with a single WAL commit (one fsync per
//! batch instead of per record).
//!
//! ```
//! use pi_tractable::prelude::*;
//! use std::sync::Arc;
//!
//! # let schema = Schema::new(&[("id", ColType::Int)]);
//! # let rows = (0..1_000i64).map(|i| vec![Value::Int(i)]).collect();
//! # let relation = Relation::from_rows(schema, rows).unwrap();
//! let live = LiveRelation::build(&relation, ShardBy::Hash { col: 0 }, 4, &[0]).unwrap();
//!
//! // One pool for the whole serving session.
//! let exec = PooledExecutor::new(
//!     Arc::new(live),
//!     PoolConfig { workers: 2, max_inflight: 4 },
//! );
//!
//! // Batched writes: one commit covers the whole run.
//! let applied = exec.relation().apply_batch(vec![
//!     UpdateOp::Insert(vec![Value::Int(5_000)]),
//!     UpdateOp::Insert(vec![Value::Int(5_001)]),
//!     UpdateOp::Delete(3),
//! ]).unwrap();
//! assert!(matches!(applied[0], Applied::Inserted(1_000)));
//!
//! // Batches stream through the standing workers.
//! let batch = QueryBatch::new((0..50i64).map(|k| SelectionQuery::point(0, k * 17)));
//! let answers = exec.execute(&batch).unwrap();
//! assert_eq!(answers.answers.len(), 50);
//! assert!(exec.execute_rows(&batch).unwrap().rows[0] == vec![0]);
//! ```
//!
//! ## Durability
//!
//! Between checkpoints, a live node's updates exist only in memory — a
//! crash window the [`wal`] crate closes. A
//! [`DurableLiveRelation`](crate::wal::DurableLiveRelation) stages every
//! update into an fsync'd, checksummed write-ahead log *before* it
//! becomes visible (inside the engine's global-id critical section, so
//! log order equals id order even under racing writers) and recovers
//! after a crash by loading the last checkpoint and replaying the
//! compacted WAL tail — bit-identical answers and row ids, with a torn
//! tail (the residue of a crash mid-append) truncated, never an error.
//!
//! ```
//! use pi_tractable::prelude::*;
//!
//! # let schema = Schema::new(&[("id", ColType::Int)]);
//! # let rows = (0..1_000i64).map(|i| vec![Value::Int(i)]).collect();
//! # let relation = Relation::from_rows(schema, rows).unwrap();
//! let live = LiveRelation::build(&relation, ShardBy::Hash { col: 0 }, 4, &[0]).unwrap();
//! # let root = std::env::temp_dir().join(format!("pitract-facade-wal-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&root);
//! let catalog = SnapshotCatalog::open(root.join("snaps")).unwrap();
//!
//! // Go durable: bootstrap checkpoint + write-ahead log.
//! let node = DurableLiveRelation::create(
//!     live, &catalog, "orders", root.join("wal"), WalConfig::default(),
//! ).unwrap();
//! node.insert(vec![Value::Int(5_000)]).unwrap();
//! node.delete(3).unwrap();
//! drop(node); // crash at any instant…
//!
//! // …and nothing confirmed is lost.
//! let recovered = DurableLiveRelation::recover(
//!     &catalog, "orders", root.join("wal"), WalConfig::default(),
//! ).unwrap();
//! assert!(recovered.answer(&SelectionQuery::point(0, 5_000i64)));
//! assert!(recovered.row(3).is_none());
//! # std::fs::remove_dir_all(&root).unwrap();
//! ```
//!
//! ## Replication
//!
//! The paper's preprocessing thesis makes single-node reads cheap;
//! serving "millions of users" needs reads to scale *out* while one
//! primary owns writes. The [`repl`] crate builds that from the pieces
//! durability already pays for — immutable WAL segments with explicit
//! LSNs, checkpoint cuts, and the epoch ↔ LSN dictionary. A
//! [`SegmentPublisher`](crate::repl::SegmentPublisher) exposes the
//! primary's log as a polled tail subscription (shipments are record
//! frames in the on-disk wire format, validated checksum-by-checksum on
//! arrival, capped at the durable frontier), and a
//! [`Follower`](crate::repl::Follower) bootstraps from the primary's
//! checkpoint, mirrors shipped frames locally (durability first, then
//! apply), and replays them into its own recovered engine. Served
//! batches pin **the epoch of the last LSN the follower replayed**:
//! every replica read is a consistent cut that is a true prefix of the
//! primary — bit-identical answers *and* global row ids. Attached
//! followers also impose a retention watermark, so the primary's
//! compactor never drops a segment a lagging follower still needs;
//! progress is a typed [`CatchUpReport`](crate::repl::CatchUpReport)
//! and a `replication_lag_lsn` gauge in the metrics registry.
//!
//! ```
//! use pi_tractable::prelude::*;
//! use std::sync::Arc;
//!
//! # let schema = Schema::new(&[("id", ColType::Int)]);
//! # let rows = (0..100i64).map(|i| vec![Value::Int(i)]).collect();
//! # let relation = Relation::from_rows(schema, rows).unwrap();
//! let live = LiveRelation::build(&relation, ShardBy::Hash { col: 0 }, 2, &[0]).unwrap();
//! # let root = std::env::temp_dir().join(format!("pitract-facade-repl-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&root);
//! let catalog = SnapshotCatalog::open(root.join("snaps")).unwrap();
//!
//! // A durable primary, published as a log-shipping source.
//! let primary = Arc::new(DurableLiveRelation::create(
//!     live, &catalog, "orders", root.join("wal"), WalConfig::default(),
//! ).unwrap());
//! let publisher = SegmentPublisher::new(Arc::clone(&primary));
//!
//! // A follower bootstraps from the primary's checkpoint and attaches.
//! let follower = Follower::bootstrap(
//!     &catalog, "orders", root.join("mirror"), WalConfig::default(),
//! ).unwrap();
//! let sub = follower.attach(&publisher);
//!
//! // Primary writes land; the follower streams and replays them.
//! let gid = primary.insert(vec![Value::Int(5_000)]).unwrap();
//! let report = follower.catch_up(&publisher, sub).unwrap();
//! assert_eq!(report.lag, 0);
//!
//! // Replica reads: bit-identical answers AND global row ids, at the
//! // epoch of the last LSN the follower replayed.
//! let q = SelectionQuery::point(0, 5_000i64);
//! assert_eq!(follower.matching_ids(&q), vec![gid]);
//! assert_eq!(follower.current_epoch(), follower.applied_epoch());
//! # std::fs::remove_dir_all(&root).unwrap();
//! ```
//!
//! ## Observability
//!
//! The paper's promise is a cost *profile* — query work bounded by the
//! accessed fraction, maintenance bounded by |CHANGED| — and the [`obs`]
//! crate makes that profile measurable on a live node instead of only
//! in offline experiments. One [`Recorder`](crate::obs::Recorder)
//! handle threads through the whole stack
//! ([`DurableLiveRelation::create_observed`](crate::wal::DurableLiveRelation::create_observed),
//! [`PooledExecutor::new_observed`](crate::engine::pool::PooledExecutor::new_observed),
//! [`LiveRelation::set_recorder`](crate::engine::live::LiveRelation::set_recorder)):
//! the WAL publishes fsync latency and group-commit sizes (`wal_*`),
//! the pool its queue depth and admission waits (`pool_*`), MVCC its
//! live pins and undo-ring footprint (`mvcc_*`), and the engine the
//! plan chosen per query and metered steps (`engine_*`). The default
//! `Recorder` is disabled and costs the hot path one branch per touch;
//! an enabled one snapshots to Prometheus text or JSON losslessly.
//!
//! ```
//! use pi_tractable::prelude::*;
//! use std::sync::Arc;
//!
//! # let schema = Schema::new(&[("id", ColType::Int)]);
//! # let rows = (0..1_000i64).map(|i| vec![Value::Int(i)]).collect();
//! # let relation = Relation::from_rows(schema, rows).unwrap();
//! // One recorder for the whole serving session.
//! let recorder = Recorder::new();
//! let mut live = LiveRelation::build(&relation, ShardBy::Hash { col: 0 }, 4, &[0]).unwrap();
//! live.set_recorder(&recorder);
//! let exec = PooledExecutor::new_observed(
//!     Arc::new(live),
//!     PoolConfig { workers: 2, max_inflight: 4 },
//!     &recorder,
//! );
//!
//! // Serve: every batch ticks plan counters, step meters, latencies.
//! exec.relation().insert(vec![Value::Int(5_000)]).unwrap();
//! let batch = QueryBatch::new((0..50i64).map(|k| SelectionQuery::point(0, k * 17)));
//! exec.execute(&batch).unwrap();
//! exec.relation().publish_metrics();
//!
//! // Export: Prometheus text for scrapers, JSON for artifacts — and
//! // the JSON round-trips losslessly.
//! let snapshot = recorder.snapshot();
//! let text = pi_tractable::obs::to_prometheus(&snapshot);
//! assert!(text.contains("engine_queries_total 50"));
//! assert!(text.contains("mvcc_current_epoch"));
//! let reparsed = MetricsSnapshot::from_json(&snapshot.to_json()).unwrap();
//! assert_eq!(reparsed, snapshot);
//! ```
//!
//! ## Correctness tooling
//!
//! Two guard rails keep the serving stack honest about its own
//! invariants. **Runtime lock-order checking**: every lock in the
//! serving tier ([`LiveRelation`](crate::engine::live::LiveRelation)'s
//! shard/id/epoch/log locks, the WAL writer's rotation/state locks) is
//! an [`OrderedRwLock`](crate::core::lockdep::OrderedRwLock) /
//! [`OrderedMutex`](crate::core::lockdep::OrderedMutex) carrying an
//! explicit [`LockRank`](crate::core::lockdep::LockRank); debug builds
//! keep a thread-local stack of held ranks and panic on any acquisition
//! that inverts the documented order, release builds compile the check
//! out entirely. The totals surface as `lockdep_checks_total` /
//! `lockdep_violations_total` in the metrics registry. **Static
//! invariant lints**: the [`analysis`] crate's `pitract-lint` binary
//! walks the workspace sources with a zero-dependency lexer and denies
//! panicking escape hatches in serving code, fsyncs under the WAL state
//! lock, bare thread spawns, and benchmark artifacts written under
//! `target/` — each rule opt-out-able per site with a justified
//! `// lint:allow(<rule>)`.
//!
//! ```
//! use pi_tractable::prelude::*;
//!
//! // Ranked locks: taking Gid then Log follows the documented order and
//! // costs nothing beyond the std lock in release builds. Inverting the
//! // order panics in debug builds instead of deadlocking in production.
//! let gids = OrderedRwLock::new(LockRank::Gid, vec![0u64]);
//! let log = OrderedMutex::new(LockRank::Log, Vec::new());
//! let ids = gids.read();
//! log.lock().push(ids[0]);
//! drop(ids);
//!
//! // The lint pass is a library too: this workspace lints itself clean.
//! let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
//! let report: LintReport = pi_tractable::analysis::lint_workspace(root);
//! assert!(report.is_clean(), "{report}");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use pitract_analysis as analysis;
pub use pitract_circuit as circuit;
pub use pitract_core as core;
pub use pitract_engine as engine;
pub use pitract_graph as graph;
pub use pitract_incremental as incremental;
pub use pitract_index as index;
pub use pitract_kernel as kernel;
pub use pitract_obs as obs;
pub use pitract_pram as pram;
pub use pitract_reductions as reductions;
pub use pitract_relation as relation;
pub use pitract_repl as repl;
pub use pitract_store as store;
pub use pitract_wal as wal;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use pitract_analysis::LintReport;
    pub use pitract_core::cost::{CostClass, Meter};
    pub use pitract_core::epoch::Epoch;
    pub use pitract_core::factor::{Factorization, FnFactorization};
    pub use pitract_core::fit::{best_fit, FitModel, Sample};
    pub use pitract_core::lang::{FnPairLanguage, PairLanguage};
    pub use pitract_core::lockdep::{LockRank, OrderedMutex, OrderedRwLock};
    pub use pitract_core::problem::{DecisionProblem, FnProblem};
    pub use pitract_core::reduce::{FReduction, FactorReduction};
    pub use pitract_core::scheme::Scheme;
    pub use pitract_engine::batch::{BatchAnswers, BatchReport, BatchRows, QueryBatch};
    pub use pitract_engine::error::EngineError;
    pub use pitract_engine::live::{
        Applied, EpochPin, Frozen, LiveRelation, UpdateEntry, UpdateLog, UpdateOp, VersionStats,
        WalSink,
    };
    pub use pitract_engine::planner::{AccessPath, Planner, QueryPlan};
    pub use pitract_engine::pool::{BatchServe, PoolConfig, PoolStats, PooledExecutor, WorkerPool};
    pub use pitract_engine::shard::{ShardBy, ShardedRelation};
    pub use pitract_graph::bds::{bds_order, BdsIndex};
    pub use pitract_graph::compress::CompressedReach;
    pub use pitract_graph::reach::ReachIndex;
    pub use pitract_graph::Graph;
    pub use pitract_incremental::bounded::{BoundednessReport, UpdateRecord};
    pub use pitract_index::bptree::BPlusTree;
    pub use pitract_index::sorted::SortedIndex;
    pub use pitract_obs::{MetricsRegistry, MetricsSnapshot, Recorder, Span, TraceBuffer};
    pub use pitract_relation::indexed::{IndexedError, IndexedRelation};
    pub use pitract_relation::views::{MaterializedView, ViewSet};
    pub use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
    pub use pitract_repl::{CatchUpReport, Follower, ReplError, SegmentPublisher, Shipment};
    pub use pitract_store::{
        LiveCheckpoint, Recovered, Snapshot, SnapshotCatalog, SnapshotKind, StoreError,
    };
    pub use pitract_wal::{
        CompactionReport, Compactor, DurableLiveRelation, SyncPolicy, WalConfig, WalError,
        WalReader, WalWriter,
    };
}
