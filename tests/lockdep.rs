//! Runtime lockdep, end to end through the public facade: a serving
//! target that acquires ranked locks in the wrong order on a pool
//! worker must be caught by the debug-build lock-order checker, surface
//! as a *typed* error (the pool converts the worker panic), and leave
//! the pool serving the next batch. Debug builds only — release builds
//! compile the checks (and this file) out.

#![cfg(debug_assertions)]

use pi_tractable::core::lockdep;
use pi_tractable::prelude::*;
use std::sync::Arc;

fn relation(n: i64) -> Relation {
    let schema = Schema::new(&[("id", ColType::Int)]);
    let rows: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Int(i)]).collect();
    Relation::from_rows(schema, rows).expect("valid rows")
}

fn batch(n: i64) -> QueryBatch {
    QueryBatch::new((0..64i64).map(|k| SelectionQuery::point(0, (k * 97) % (n + 20))))
}

/// A serving target that holds a Gid-ranked lock and then takes a
/// Shard-ranked lock — the exact inversion of the engine's documented
/// order — but only on one poisoned shard, and only when armed.
struct InvertedLocks {
    inner: ShardedRelation,
    gid: OrderedRwLock<()>,
    shard: OrderedRwLock<()>,
    poison: usize,
    armed: std::sync::atomic::AtomicBool,
}

impl InvertedLocks {
    fn new(inner: ShardedRelation, poison: usize) -> Self {
        InvertedLocks {
            inner,
            gid: OrderedRwLock::new(LockRank::Gid, ()),
            shard: OrderedRwLock::new(LockRank::Shard, ()),
            poison,
            armed: std::sync::atomic::AtomicBool::new(true),
        }
    }

    fn disarm(&self) {
        self.armed.store(false, std::sync::atomic::Ordering::SeqCst);
    }
}

impl BatchServe for InvertedLocks {
    fn route(
        &self,
        queries: &[SelectionQuery],
    ) -> Result<(Vec<QueryPlan>, Vec<Vec<usize>>), EngineError> {
        self.inner.route(queries)
    }

    fn shard_count(&self) -> usize {
        BatchServe::shard_count(&self.inner)
    }

    fn eval_bool(
        &self,
        shard: usize,
        at: Epoch,
        queries: &[SelectionQuery],
        assigned: &[usize],
    ) -> Vec<(usize, bool, u64)> {
        if shard == self.poison && self.armed.load(std::sync::atomic::Ordering::SeqCst) {
            // Deliberately inverted acquisition: Gid (rank 20) is held
            // while Shard (rank 10) is requested. The lockdep stack on
            // this worker thread panics here in debug builds.
            let _gid = self.gid.read();
            let _shard = self.shard.read();
        }
        self.inner.eval_bool(shard, at, queries, assigned)
    }

    fn eval_rows(
        &self,
        shard: usize,
        at: Epoch,
        queries: &[SelectionQuery],
        assigned: &[usize],
    ) -> Vec<(usize, Vec<usize>, u64)> {
        self.inner.eval_rows(shard, at, queries, assigned)
    }

    fn global_ids(&self, shard: usize, locals: &[usize]) -> Vec<usize> {
        self.inner.global_ids(shard, locals)
    }
}

#[test]
fn inverted_acquisition_on_a_worker_is_typed_and_the_pool_survives() {
    let n = 2_000i64;
    let rel = relation(n);
    let violations_before = lockdep::stats().violations;
    let target = Arc::new(InvertedLocks::new(
        ShardedRelation::build(&rel, ShardBy::Hash { col: 0 }, 3, &[0]).expect("valid spec"),
        1,
    ));
    let exec = PooledExecutor::new(
        Arc::clone(&target),
        PoolConfig {
            workers: 3,
            max_inflight: 2,
        },
    );

    // The armed batch: the worker that draws the poisoned shard hits the
    // rank inversion, panics, and the pool reports it typed.
    let err = exec.execute(&batch(n)).expect_err("inversion must surface");
    assert!(
        matches!(err, EngineError::WorkerPanicked { shard: 1 }),
        "unexpected error: {err:?}"
    );
    assert!(
        lockdep::stats().violations > violations_before,
        "the violation was counted"
    );

    // The same session keeps serving once the target behaves: no
    // poisoned worker, no wedged admission slot.
    target.disarm();
    let ok = exec.execute(&batch(n)).expect("pool still serves");
    let oracle: Vec<bool> = batch(n)
        .queries()
        .iter()
        .map(|q| rel.eval_scan(q))
        .collect();
    assert_eq!(ok.answers, oracle);
}

/// The replication rank: `FollowerCatchup` (45) sits between the engine
/// tiers and the WAL tiers, and `pitract-repl` splits it into sub-orders
/// (publisher table = 0, follower mirror = 1). Two inversions the design
/// forbids must be caught in debug builds: holding a catch-up lock while
/// entering replay (replay takes Log, rank 40), and taking the mirror
/// before the publisher's table within the rank. The legal chain —
/// table, then mirror, then a WAL-tier flush — must stay panic-free.
#[test]
fn follower_catchup_rank_inversions_are_caught_and_the_legal_chain_is_not() {
    let violations_before = lockdep::stats().violations;
    // These closures *expect* panics; silence the default hook so the
    // test output stays clean (restored below).
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    // Inversion 1: catch-up bookkeeping held across a replay-tier
    // acquisition. Replay re-enters the engine's ranks (Shard..Log), so
    // a catch-up section reaching rank 40 while holding 45 is exactly
    // the hold-across-replay bug the repl crate's turnstile exists to
    // make impossible.
    let outcome = std::panic::catch_unwind(|| {
        let mirror = OrderedMutex::with_sub_order(LockRank::FollowerCatchup, 1, ());
        let log = OrderedMutex::new(LockRank::Log, ());
        let _m = mirror.lock();
        let _l = log.lock();
    });
    assert!(
        outcome.is_err(),
        "FollowerCatchup held across a Log-ranked acquisition must panic in debug builds"
    );

    // Inversion 2: within the rank, mirror (sub 1) before table (sub 0).
    let outcome = std::panic::catch_unwind(|| {
        let mirror = OrderedMutex::with_sub_order(LockRank::FollowerCatchup, 1, ());
        let table = OrderedMutex::with_sub_order(LockRank::FollowerCatchup, 0, ());
        let _m = mirror.lock();
        let _t = table.lock();
    });
    assert!(
        outcome.is_err(),
        "descending sub-order inside FollowerCatchup must panic in debug builds"
    );
    std::panic::set_hook(hook);
    assert!(
        lockdep::stats().violations >= violations_before + 2,
        "both inversions were counted"
    );

    // The documented legal chain: publisher table, follower mirror, then
    // a WAL-tier lock (a catch-up section may flush mirror state).
    let table = OrderedMutex::with_sub_order(LockRank::FollowerCatchup, 0, ());
    let mirror = OrderedMutex::with_sub_order(LockRank::FollowerCatchup, 1, ());
    let wal_state = OrderedMutex::new(LockRank::WalState, ());
    let _t = table.lock();
    let _m = mirror.lock();
    let _s = wal_state.lock();
}

#[test]
fn lockdep_totals_publish_through_the_metrics_registry() {
    let n = 500i64;
    let rel = relation(n);
    let recorder = Recorder::new();
    let mut live = LiveRelation::build(&rel, ShardBy::Hash { col: 0 }, 2, &[0]).expect("valid");
    live.set_recorder(&recorder);
    live.insert(vec![Value::Int(n + 1)]).expect("insert");
    live.publish_metrics();

    let snapshot = recorder.snapshot();
    let text = pi_tractable::obs::to_prometheus(&snapshot);
    assert!(
        text.contains("lockdep_checks_total"),
        "missing lockdep_checks_total in:\n{text}"
    );
    assert!(text.contains("lockdep_violations_total"), "{text}");
    // Debug builds really check: the ordered locks taken by the insert
    // above guarantee a nonzero total.
    let checks = lockdep::stats().checks;
    assert!(checks > 0, "debug builds count lock acquisitions");
}
