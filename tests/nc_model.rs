//! NC-model integration tests: the work/depth substrate certifies the
//! "parallel polylog time" half of Definition 1 for the preprocessed
//! query paths — and refuses to certify the paths that are *not* NC.

use pi_tractable::core::cost::CostClass;
use pi_tractable::graph::generate;
use pi_tractable::pram::machine::{brent_time, Cost};
use pi_tractable::pram::matrix::BitMatrix;
use pi_tractable::pram::primitives::{par_filter, par_reduce, par_scan};
use pi_tractable::pram::sort::par_merge_sort;
use pi_tractable::prelude::*;

/// Reachability preprocessing itself is NC (Example 3's "NL ⊆ NC" side):
/// closure by squaring has polylog depth at every tested scale, and the
/// depth grows like log², not like n.
#[test]
fn closure_depth_scales_polylogarithmically() {
    let mut samples = Vec::new();
    for &n in &[32usize, 64, 128, 256, 512] {
        let g = generate::gnp_directed(n, 2.0 / n as f64, n as u64);
        let m = BitMatrix::from_edges(n, &g.edges());
        let (_, cost) = m.transitive_closure();
        assert!(
            cost.depth_within(CostClass::PolyLog(2), n as u64, 2.0),
            "depth {} at n={n}",
            cost.depth
        );
        samples.push(Sample::new(n as u64, cost.depth));
    }
    let fit = best_fit(&samples);
    assert!(
        fit.best().model.is_polylog(),
        "closure depth fit: {}",
        fit.best().model
    );
}

/// The NC toolkit keeps its depth promises while staying correct.
#[test]
fn primitives_depth_and_correctness() {
    let n = 1u64 << 12;
    let xs: Vec<u64> = (0..n).map(|i| (i * 48271) % 1009).collect();

    let (sum, c1) = par_reduce(&xs, 0, |a, b| a + b);
    assert_eq!(sum, xs.iter().sum::<u64>());
    assert!(c1.depth_within(CostClass::Log, n, 2.0));

    let (prefix, total, c2) = par_scan(&xs, 0u64, |a, b| a + b);
    assert_eq!(total, sum);
    assert_eq!(prefix[0], 0);
    assert!(c2.depth_within(CostClass::Log, n, 4.0));

    let (evens, c3) = par_filter(&xs, |x| x % 2 == 0);
    assert!(evens.iter().all(|x| x % 2 == 0));
    assert!(c3.depth_within(CostClass::Log, n, 6.0));

    let (sorted, c4) = par_merge_sort(&xs);
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    assert!(c4.depth_within(CostClass::PolyLog(2), n, 3.0));
}

/// Brent's theorem arithmetic: with polynomially many processors the
/// closure runs in polylog steps — the "seconds on big data" claim; with
/// one processor it degrades to the sequential work.
#[test]
fn brent_schedule_interpolates() {
    let g = generate::gnp_directed(256, 0.01, 3);
    let (_, cost) = BitMatrix::from_edges(256, &g.edges()).transitive_closure();
    let sequential = brent_time(cost, 1);
    let massively_parallel = brent_time(cost, u64::MAX / 2);
    // ⌈W/p⌉ contributes a single step once p exceeds the work.
    assert_eq!(massively_parallel, cost.depth + 1);
    assert!(sequential > cost.depth * 10, "work should dominate at p=1");
    // Monotone in p.
    let mut prev = sequential;
    for p in [2u64, 8, 64, 1024, 1 << 20] {
        let t = brent_time(cost, p);
        assert!(t <= prev, "Brent time must not increase with processors");
        prev = t;
    }
}

/// The negative control: a deep circuit's parallel evaluation has depth
/// proportional to the circuit depth — NOT polylog — which is exactly why
/// CVP under Υ₀ fails Definition 1 (Theorem 9's intuition, measured).
#[test]
fn deep_circuits_are_not_polylog_depth() {
    use pi_tractable::circuit::generate::layered;
    let mut depths = Vec::new();
    for &layers in &[32usize, 64, 128, 256] {
        let c = layered(4, layers, 4, 7);
        let (_, cost) = c.evaluate_parallel_model(&[true, false, true, false]);
        depths.push(Sample::new(c.size() as u64, cost.depth));
        // Depth tracks layers, i.e. grows linearly with size/width.
        assert!(cost.depth as usize >= layers / 2);
    }
    let fit = best_fit(&depths);
    assert!(
        !fit.best().model.is_polylog(),
        "deep-circuit depth misclassified as {}",
        fit.best().model
    );
}

/// The positive control: balanced AND-trees (an NC¹ family) evaluate with
/// logarithmic parallel depth.
#[test]
fn shallow_circuits_are_log_depth() {
    use pi_tractable::circuit::generate::and_tree;
    for k in [4u32, 6, 8, 10] {
        let c = and_tree(k);
        let (v, cost) = c.evaluate_parallel_model(&vec![true; 1 << k]);
        assert!(v);
        assert_eq!(cost.depth, u64::from(k) + 1);
        assert!(cost.depth_within(CostClass::Log, c.size() as u64, 2.0));
    }
}

/// Work/depth algebra sanity on a composite pipeline: scan-then-reduce has
/// the sum of depths and the sum of works.
#[test]
fn cost_algebra_composes() {
    let a = Cost {
        work: 100,
        depth: 5,
    };
    let b = Cost { work: 50, depth: 7 };
    assert_eq!(
        a.then(b),
        Cost {
            work: 150,
            depth: 12
        }
    );
    assert_eq!(
        a.join(b),
        Cost {
            work: 150,
            depth: 7
        }
    );
    assert_eq!(
        Cost::join_all([a, b, Cost::UNIT]),
        Cost {
            work: 151,
            depth: 7
        }
    );
}
