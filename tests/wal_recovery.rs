//! Integration suite for the durable WAL tier: crash consistency proven
//! against an oracle at **every** truncation point of a log produced by
//! *concurrent* writers, compaction invariance, and the end-to-end
//! checkpoint → churn → crash → recover → serve loop.

use pi_tractable::prelude::*;
use pi_tractable::wal::segment::{scan_dir, RECORD_OVERHEAD, SEGMENT_HEADER_LEN};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pitract-walrec-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn schema() -> Schema {
    Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)])
}

fn base_live(n: i64) -> LiveRelation {
    let rows = (0..n)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 8))])
        .collect();
    let rel = Relation::from_rows(schema(), rows).unwrap();
    LiveRelation::build(&rel, ShardBy::Hash { col: 0 }, 4, &[0, 1]).unwrap()
}

fn probes(upper: i64) -> Vec<SelectionQuery> {
    vec![
        SelectionQuery::point(1, "grp3"),
        SelectionQuery::point(1, "hot"),
        SelectionQuery::range_closed(0, 0i64, upper),
        SelectionQuery::and(
            SelectionQuery::point(1, "grp5"),
            SelectionQuery::range_closed(0, 0i64, upper),
        ),
    ]
}

/// Assert two nodes are observably identical: length, every row slot,
/// answers and global row ids for a probe set.
fn assert_same_state(a: &LiveRelation, b: &LiveRelation, gid_upper: usize, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: live count");
    for gid in 0..gid_upper {
        assert_eq!(a.row(gid), b.row(gid), "{ctx}: gid {gid}");
    }
    for q in probes(10_000) {
        assert_eq!(a.answer(&q), b.answer(&q), "{ctx}: answer {q:?}");
        assert_eq!(a.matching_ids(&q), b.matching_ids(&q), "{ctx}: ids {q:?}");
    }
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let path = entry.unwrap().path();
        if path.is_file() {
            std::fs::copy(&path, to.join(path.file_name().unwrap())).unwrap();
        }
    }
}

/// The acceptance property: a WAL produced under racing writers (with a
/// mid-run checkpoint, so the mark is nonzero) is truncated at **every
/// byte offset** of its active segment; at each offset, recovery must
/// rebuild exactly the confirmed prefix — checked against an
/// independent oracle that replays the prefix onto the checkpoint state
/// — and compacting the truncated log first must change nothing.
#[test]
fn every_truncation_point_recovers_the_confirmed_prefix() {
    let root = fresh_dir("everycut");
    let catalog = SnapshotCatalog::open(root.join("snaps")).unwrap();
    let wal_dir = root.join("wal");
    let config = WalConfig {
        segment_bytes: 900, // several segments; a short active tail
        sync: SyncPolicy::GroupCommit,
    };
    let node =
        DurableLiveRelation::create(base_live(50), &catalog, "node", &wal_dir, config.clone())
            .unwrap();

    // Phase 1: concurrent churn, then a checkpoint (mark > 0).
    std::thread::scope(|scope| {
        for t in 0..3i64 {
            let node = &node;
            scope.spawn(move || {
                for i in 0..12i64 {
                    let gid = node
                        .insert(vec![Value::Int(1_000 + t * 100 + i), Value::str("hot")])
                        .unwrap();
                    if i % 3 == 0 {
                        node.delete(gid).unwrap().unwrap();
                    }
                }
            });
        }
    });
    node.checkpoint(&catalog, "node").unwrap();
    let mark = node.checkpoint_mark();
    assert!(mark > 0, "the checkpoint covered the phase-1 churn");

    // Phase 2: more racing writers — these live only in the WAL tail.
    std::thread::scope(|scope| {
        for t in 0..3i64 {
            let node = &node;
            scope.spawn(move || {
                for i in 0..10i64 {
                    let gid = node
                        .insert(vec![Value::Int(2_000 + t * 100 + i), Value::str("hot")])
                        .unwrap();
                    if i % 4 == 0 {
                        node.delete(gid).unwrap().unwrap();
                    }
                }
            });
        }
    });
    node.wal().sync().unwrap();
    drop(node);

    // The WAL is the authoritative history. Identify the active segment
    // and the byte extent of each of its records.
    let scan = scan_dir(&wal_dir).unwrap();
    let active = scan.segments.last().unwrap();
    let active_path = active.path.clone();
    let active_bytes = std::fs::read(&active_path).unwrap();
    assert!(scan.segments.len() > 1, "rotation produced closed segments");
    let reader = WalReader::open(&wal_dir).unwrap();
    assert!(reader.len() > 40, "both phases logged");

    // (lsn, entry, end-offset-in-active-file) for active-segment records;
    // closed-segment records survive every cut.
    let closed_tail: Vec<UpdateEntry> = reader
        .records()
        .iter()
        .filter(|r| r.lsn >= mark && r.lsn < active.base_lsn)
        .map(|r| r.entry.clone())
        .collect();
    let mut active_extents: Vec<(u64, UpdateEntry, usize)> = Vec::new();
    let mut offset = SEGMENT_HEADER_LEN;
    for (lsn, payload) in &active.records {
        offset += RECORD_OVERHEAD + payload.len();
        let entry = reader
            .records()
            .iter()
            .find(|r| r.lsn == *lsn)
            .unwrap()
            .entry
            .clone();
        active_extents.push((*lsn, entry, offset));
    }
    assert_eq!(offset, active_bytes.len(), "extent math spans the file");

    let (state, state_mark, _epoch) = catalog.load("node").unwrap().into_checkpoint().unwrap();
    assert_eq!(state_mark, mark);

    let pristine = root.join("wal-pristine");
    copy_dir(&wal_dir, &pristine);

    for cut in 0..=active_bytes.len() {
        // Crash: the active segment loses everything past `cut`.
        let _ = std::fs::remove_dir_all(&wal_dir);
        copy_dir(&pristine, &wal_dir);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&active_path)
            .unwrap();
        f.set_len(cut as u64).unwrap();
        drop(f);

        let recovered = DurableLiveRelation::recover(&catalog, "node", &wal_dir, config.clone())
            .unwrap_or_else(|e| panic!("cut {cut}: recovery failed: {e}"));

        // Oracle: checkpoint state + strict replay of the confirmed
        // prefix (closed tail + active records whose frames fit).
        let mut confirmed = closed_tail.clone();
        confirmed.extend(
            active_extents
                .iter()
                .filter(|(lsn, _, end)| *end <= cut && *lsn >= mark)
                .map(|(_, e, _)| e.clone()),
        );
        let oracle = LiveRelation::from_sharded(state.clone());
        oracle
            .replay(&UpdateLog::from_entries(confirmed))
            .unwrap_or_else(|e| panic!("cut {cut}: oracle replay failed: {e}"));
        assert_same_state(&recovered, &oracle, 150, &format!("cut {cut}"));

        // Compaction on the crashed log must not change what recovers.
        if cut % 5 == 0 {
            drop(recovered);
            let report = Compactor::new(mark).compact_dir(&wal_dir).unwrap();
            assert!(report.records_after <= report.records_before);
            let after = DurableLiveRelation::recover(&catalog, "node", &wal_dir, config.clone())
                .unwrap_or_else(|e| panic!("cut {cut}: post-compaction recovery failed: {e}"));
            assert_same_state(&after, &oracle, 150, &format!("cut {cut} compacted"));
        }
    }
    std::fs::remove_dir_all(&root).unwrap();
}

/// End-to-end durable serving loop: create → serve under concurrent
/// writers and readers → checkpoint → more churn → crash → recover →
/// the node continues seamlessly (same answers, continued gid and LSN
/// sequences), with compaction bounding the on-disk log.
#[test]
fn durable_serving_loop_survives_crash_and_compaction() {
    let root = fresh_dir("loop");
    let catalog = SnapshotCatalog::open(root.join("snaps")).unwrap();
    let wal_dir = root.join("wal");
    let config = WalConfig {
        segment_bytes: 2_000,
        sync: SyncPolicy::GroupCommit,
    };
    let n = 2_000i64;
    let node =
        DurableLiveRelation::create(base_live(n), &catalog, "orders", &wal_dir, config.clone())
            .unwrap();

    // Serve queries while writers churn, exactly like the non-durable
    // tier — the WAL must not change any answer.
    let batch = QueryBatch::new((0..64i64).map(|k| match k % 2 {
        0 => SelectionQuery::point(0, (k * 31) % n),
        _ => SelectionQuery::range_closed(0, (k * 13) % n, (k * 13) % n + 40),
    }));
    let oracle: Vec<bool> = {
        let rel = (0..n)
            .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 8))])
            .collect::<Vec<_>>();
        let rel = Relation::from_rows(schema(), rel).unwrap();
        batch.queries().iter().map(|q| rel.eval_scan(q)).collect()
    };
    std::thread::scope(|scope| {
        let writers: Vec<_> = (0..2i64)
            .map(|t| {
                let node = &node;
                scope.spawn(move || {
                    for i in 0..60i64 {
                        let gid = node
                            .insert(vec![Value::Int(n + t * 1_000 + i), Value::str("hot")])
                            .unwrap();
                        if i % 2 == 0 {
                            node.delete(gid).unwrap().unwrap();
                        }
                    }
                })
            })
            .collect();
        for _ in 0..5 {
            let got = node.execute(&batch).unwrap();
            assert_eq!(got.answers, oracle, "stable region diverged");
        }
        for w in writers {
            w.join().unwrap();
        }
    });

    node.checkpoint(&catalog, "orders").unwrap();
    for i in 0..30i64 {
        let gid = node
            .insert(vec![Value::Int(n + 5_000 + i), Value::str("tail")])
            .unwrap();
        if i % 3 == 0 {
            node.delete(gid).unwrap().unwrap();
        }
    }
    let pre_crash: Vec<Option<Vec<Value>>> =
        (0..(n as usize + 200)).map(|gid| node.row(gid)).collect();
    let pre_len = node.len();
    drop(node); // crash: everything confirmed is in snapshot + WAL

    let node = DurableLiveRelation::recover(&catalog, "orders", &wal_dir, config.clone()).unwrap();
    assert_eq!(node.len(), pre_len);
    for (gid, expect) in pre_crash.iter().enumerate() {
        assert_eq!(&node.row(gid), expect, "gid {gid}");
    }
    assert_eq!(node.execute(&batch).unwrap().answers, oracle);

    // Compact: the closed churn shrinks, and the node still recovers.
    node.wal().rotate_now().unwrap();
    node.checkpoint(&catalog, "orders").unwrap();
    let report = node.compact_wal().unwrap();
    assert!(
        report.records_after < report.records_before,
        "churn compacted away: {report:?}"
    );
    drop(node);
    let node = DurableLiveRelation::recover(&catalog, "orders", &wal_dir, config).unwrap();
    assert_eq!(node.len(), pre_len);
    assert_eq!(node.execute(&batch).unwrap().answers, oracle);
    // And it keeps serving durably after all of that.
    let gid = node
        .insert(vec![Value::Int(999_999), Value::str("alive")])
        .unwrap();
    assert!(node.row(gid).is_some());
    std::fs::remove_dir_all(&root).unwrap();
}

/// The no-WAL and durable nodes agree observably under the same update
/// stream — durability must be a pure overlay, never a semantic change.
#[test]
fn durable_node_serves_identically_to_plain_live_relation() {
    let root = fresh_dir("overlay");
    let catalog = SnapshotCatalog::open(root.join("snaps")).unwrap();
    let plain = base_live(300);
    let durable = DurableLiveRelation::create(
        base_live(300),
        &catalog,
        "twin",
        root.join("wal"),
        WalConfig::default(),
    )
    .unwrap();
    for i in 0..50i64 {
        let a = plain
            .insert(vec![Value::Int(5_000 + i), Value::str("x")])
            .unwrap();
        let b = durable
            .insert(vec![Value::Int(5_000 + i), Value::str("x")])
            .unwrap();
        assert_eq!(a, b, "gid assignment agrees");
        if i % 4 == 0 {
            assert_eq!(plain.delete(a).unwrap(), durable.delete(b).unwrap());
        }
    }
    assert_same_state(&plain, &durable, 360, "overlay");
    assert_eq!(
        plain.boundedness_report().records(),
        durable.boundedness_report().records(),
        "maintenance accounting identical"
    );
    std::fs::remove_dir_all(&root).unwrap();
}
