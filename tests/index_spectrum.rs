//! The full reachability-index spectrum on shared workloads, plus circuit
//! compression composed with the gate-table scheme — integration coverage
//! for the extension modules.

use pi_tractable::circuit::factor::{gate_factorization, gate_table_scheme};
use pi_tractable::circuit::generate::layered;
use pi_tractable::circuit::simplify::simplify;
use pi_tractable::core::factor::Factorization;
use pi_tractable::graph::generate;
use pi_tractable::graph::grail::GrailIndex;
use pi_tractable::graph::hop::HopLabels;
use pi_tractable::graph::traverse::reachable_bfs;
use pi_tractable::prelude::*;

/// Four reachability engines (BFS spec, GRAIL, 2-hop, closure matrix) give
/// identical answers on every query over shared DAGs.
#[test]
fn reachability_engines_agree_across_the_spectrum() {
    for seed in [1u64, 7, 23] {
        let g = generate::random_dag(80, 240, seed);
        let matrix = ReachIndex::build(&g);
        let grail = GrailIndex::build(&g, 2, seed).expect("DAG");
        let hop = HopLabels::build(&g).expect("DAG");
        for u in 0..80 {
            for v in 0..80 {
                let expect = reachable_bfs(&g, u, v);
                assert_eq!(matrix.reachable(u, v), expect, "matrix ({u},{v})");
                assert_eq!(grail.reachable(u, v), expect, "grail ({u},{v})");
                assert_eq!(hop.query(u, v), expect, "hop ({u},{v})");
            }
        }
    }
}

/// Index sizes order as theory predicts on hub-shaped inputs: 2-hop labels
/// ≪ closure bits.
#[test]
fn label_sizes_undercut_the_closure_on_hub_graphs() {
    // Hub-and-spoke layers compress well under hub labeling.
    let g = generate::layered_dag(4, 50, 3, 5);
    let n = g.node_count();
    let hop = HopLabels::build(&g).expect("DAG");
    let closure_bits = (n * n) as u64;
    let label_entries = hop.total_label_entries() as u64 * 32; // u32 entries
    assert!(
        label_entries < closure_bits,
        "labels {label_entries} bits vs closure {closure_bits} bits"
    );
}

/// Circuit compression composes with the Π-tractability pipeline: simplify
/// first, then build the gate table — identical designated-output answers,
/// smaller preprocessing.
#[test]
fn simplified_circuits_feed_the_gate_table_scheme() {
    let scheme = gate_table_scheme();
    let f = gate_factorization();
    for seed in 0..5u64 {
        let circuit = layered(7, 14, 6, seed);
        let small = simplify(&circuit);
        assert!(small.size() <= circuit.size());
        for pattern in [0u32, 1, 64, 127] {
            let inputs: Vec<bool> = (0..7).map(|i| (pattern >> i) & 1 == 1).collect();
            let x_big = (circuit.clone(), inputs.clone());
            let x_small = (small.clone(), inputs);
            let pre_big = scheme.preprocess(&f.pi1(&x_big));
            let pre_small = scheme.preprocess(&f.pi1(&x_small));
            assert_eq!(
                scheme.answer(&pre_big, &f.pi2(&x_big)),
                scheme.answer(&pre_small, &f.pi2(&x_small)),
                "seed {seed} pattern {pattern}"
            );
            assert_eq!(pre_small.len(), small.size());
        }
    }
}

/// Compression ratio claims hold jointly: graph compression and circuit
/// simplification both shrink redundancy-heavy instances while preserving
/// every answer their query class can ask.
#[test]
fn both_compressions_shrink_redundant_instances() {
    // Graph side: a bundle of parallel 2-paths through equivalent middles.
    let mut edges = Vec::new();
    for m in 1..=30 {
        edges.push((0, m));
        edges.push((m, 31));
    }
    let g = pi_tractable::graph::Graph::directed_from_edges(32, &edges);
    let compressed = CompressedReach::build(&g);
    assert!(compressed.compression_ratio() > 5.0);
    assert!(compressed.reachable(0, 31));
    assert!(!compressed.reachable(5, 6));

    // Circuit side: a chain of double negations folds away.
    use pi_tractable::circuit::Gate;
    let mut gates = vec![Gate::Input(0)];
    for i in 0..20 {
        gates.push(Gate::Not(i));
    }
    let c = pi_tractable::circuit::Circuit::new(1, gates, 20).unwrap();
    let s = simplify(&c);
    assert!(s.size() < c.size() / 2, "{} vs {}", s.size(), c.size());
    assert_eq!(s.evaluate(&[true]), c.evaluate(&[true]));
    assert_eq!(s.evaluate(&[false]), c.evaluate(&[false]));
}
