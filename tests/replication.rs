//! Replication, end to end through the public facade: a follower
//! bootstrapped from the primary's checkpoint and fed by the segment
//! publisher must serve batches that are **bit-identical** — answers
//! AND global row ids — to an oracle replay of the primary's WAL
//! prefix below the follower's applied LSN, even while primary writers
//! race the catch-up loop. The retention watermark must keep every
//! segment a lagging follower still needs across a primary compaction
//! cycle, and `replication_lag_lsn` must surface in the Prometheus
//! export.

use pi_tractable::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pitract-replication-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> WalConfig {
    // Tiny segments so every test exercises rotation and multi-segment
    // shipments.
    WalConfig {
        segment_bytes: 192,
        sync: SyncPolicy::GroupCommit,
    }
}

fn primary(root: &Path, rows: i64) -> (Arc<DurableLiveRelation>, SnapshotCatalog) {
    let schema = Schema::new(&[("id", ColType::Int)]);
    let data: Vec<Vec<Value>> = (0..rows).map(|i| vec![Value::Int(i)]).collect();
    let rel = Relation::from_rows(schema, data).expect("valid rows");
    let live = LiveRelation::build(&rel, ShardBy::Hash { col: 0 }, 3, &[0]).expect("valid spec");
    let catalog = SnapshotCatalog::open(root.join("snaps")).expect("catalog");
    let node = Arc::new(
        DurableLiveRelation::create(live, &catalog, "node", root.join("wal"), config())
            .expect("create"),
    );
    (node, catalog)
}

/// The oracle: the checkpoint state plus a replay of exactly the
/// primary's WAL records below `below_lsn` — the state a perfect
/// replica of that prefix must hold.
fn oracle_at(catalog: &SnapshotCatalog, root: &Path, below_lsn: u64) -> LiveRelation {
    let (state, mark, cut) = catalog
        .load("node")
        .expect("checkpoint exists")
        .into_checkpoint()
        .expect("live checkpoint");
    let oracle = LiveRelation::from_sharded(state);
    let reader = WalReader::open(root.join("wal")).expect("primary wal readable");
    let entries: Vec<UpdateEntry> = reader
        .records()
        .iter()
        .filter(|r| r.lsn >= mark && r.lsn < below_lsn)
        .map(|r| r.entry.clone())
        .collect();
    oracle.replay_entries(&entries).expect("oracle replay");
    oracle.advance_epoch_to(Epoch::new(cut.get() + (below_lsn.max(mark) - mark)));
    oracle
}

/// Compare a follower against an oracle relation, bit for bit: live row
/// count, boolean answers, matching global ids, and raw rows by gid.
fn assert_bit_identical(follower: &Follower, oracle: &LiveRelation, probes: i64, tag: &str) {
    assert_eq!(follower.len(), oracle.len(), "{tag}: live row count");
    for key in 0..probes {
        let q = SelectionQuery::point(0, key);
        assert_eq!(
            follower.answer(&q),
            oracle.answer(&q),
            "{tag}: answer for {key}"
        );
        assert_eq!(
            follower.matching_ids(&q),
            oracle.matching_ids(&q),
            "{tag}: gids for {key}"
        );
    }
    for gid in 0..(oracle.len() + 16) {
        assert_eq!(follower.row(gid), oracle.row(gid), "{tag}: row {gid}");
    }
}

/// The headline contract: racing primary writers, a follower catching
/// up live, and pooled batches served from the follower — every batch
/// pinned at the epoch of the follower's applied LSN, and the final
/// state bit-identical to the primary.
#[test]
fn follower_under_racing_writers_serves_consistent_prefixes() {
    let root = fresh_dir("racing");
    let (node, catalog) = primary(&root, 50);
    let recorder = Recorder::new();
    let publisher = SegmentPublisher::new_observed(Arc::clone(&node), &recorder);
    let follower = Arc::new(
        Follower::bootstrap_observed(&catalog, "node", root.join("mirror"), config(), &recorder)
            .expect("bootstrap"),
    );
    let sub = follower.attach(&publisher);
    let exec = PooledExecutor::new(
        Arc::clone(&follower),
        PoolConfig {
            workers: 2,
            max_inflight: 2,
        },
    );

    // Two racing writer threads on the primary while the follower keeps
    // catching up and serving pooled batches.
    std::thread::scope(|scope| {
        for w in 0..2i64 {
            let node = Arc::clone(&node);
            scope.spawn(move || {
                for i in 0..60i64 {
                    let key = 1_000 + w * 1_000 + i;
                    let gid = node.insert(vec![Value::Int(key)]).expect("insert");
                    if i % 5 == 0 {
                        node.delete(gid).expect("delete");
                    }
                }
            });
        }
        for _ in 0..8 {
            let report = follower.catch_up(&publisher, sub).expect("catch up");
            let batch =
                QueryBatch::new((0..32i64).map(|k| SelectionQuery::point(0, 1_000 + k * 7)));
            let result = exec.execute(&batch).expect("follower serves mid-race");
            // The batch pinned one consistent cut: the epoch named by
            // the follower's LSN dictionary, which the racing primary
            // cannot tear.
            let pinned = result.report.epoch.expect("follower batches pin");
            assert_eq!(
                follower.lsn_of_epoch(pinned),
                follower.applied_lsn(),
                "pinned epoch names the applied prefix (report: {report:?})"
            );
        }
    });

    // Quiesced: the follower drains the log and matches the primary bit
    // for bit — answers, gids, rows, and the epoch dictionary.
    node.wal().sync().expect("sync");
    let report = follower.catch_up(&publisher, sub).expect("final catch up");
    assert_eq!(report.lag, 0);
    assert_eq!(report.applied_lsn, node.wal().durable_lsn());
    let oracle = oracle_at(&catalog, &root, report.applied_lsn);
    assert_bit_identical(&follower, &oracle, 3_200, "quiesced");
    assert_eq!(follower.len(), node.len(), "matches the live primary too");
    assert_eq!(
        follower.current_epoch(),
        follower.applied_epoch(),
        "served cut is the applied cut"
    );

    // The lag gauge is live in the Prometheus export.
    let text = pi_tractable::obs::to_prometheus(&recorder.snapshot());
    assert!(
        text.contains("replication_lag_lsn 0"),
        "missing live replication_lag_lsn in:\n{text}"
    );
    assert!(text.contains("repl_segments_shipped_total"), "{text}");
    assert!(text.contains("repl_replay_micros"), "{text}");
    std::fs::remove_dir_all(&root).unwrap();
}

/// A follower stopped mid-stream is exact, not approximately caught up:
/// its state equals the oracle replay of precisely the records below
/// its applied LSN.
#[test]
fn partial_catch_up_is_an_exact_prefix() {
    let root = fresh_dir("prefix");
    let (node, catalog) = primary(&root, 10);
    let publisher = SegmentPublisher::new(Arc::clone(&node));
    let follower =
        Follower::bootstrap(&catalog, "node", root.join("mirror"), config()).expect("bootstrap");
    let sub = follower.attach(&publisher);

    let mut gids = Vec::new();
    for i in 0..80i64 {
        let gid = node.insert(vec![Value::Int(100 + i)]).expect("insert");
        gids.push(gid);
        if i % 3 == 0 {
            node.delete(gids[gids.len() / 2]).expect("delete");
        }
    }
    node.wal().sync().expect("sync");

    // Catch up in small byte-bounded steps; stop somewhere mid-stream.
    let mut applied = follower.applied_lsn();
    for _ in 0..5 {
        let report = follower
            .catch_up_step(&publisher, sub, 96)
            .expect("bounded step");
        applied = report.applied_lsn;
    }
    let durable = node.wal().durable_lsn();
    assert!(applied > 0, "steps made progress");
    assert!(
        applied < durable,
        "still mid-stream (applied {applied} of {durable})"
    );

    let oracle = oracle_at(&catalog, &root, applied);
    assert_bit_identical(&follower, &oracle, 200, "mid-stream");
    assert_eq!(follower.applied_epoch(), oracle.current_epoch());

    // And draining the rest converges on the primary.
    let report = follower.catch_up(&publisher, sub).expect("drain");
    assert_eq!(report.lag, 0);
    assert_eq!(follower.len(), node.len());
    std::fs::remove_dir_all(&root).unwrap();
}

/// The retention watermark closes the compaction/replication race: a
/// slow attached follower can still fetch every segment at or above its
/// applied LSN after the primary checkpoints and compacts — while the
/// compaction pass really does reclaim the segments nobody needs.
#[test]
fn slow_follower_survives_a_primary_compaction_cycle() {
    let root = fresh_dir("retention");
    let (node, catalog) = primary(&root, 0);
    let publisher = SegmentPublisher::new(Arc::clone(&node));
    let follower =
        Follower::bootstrap(&catalog, "node", root.join("mirror"), config()).expect("bootstrap");
    let sub = follower.attach(&publisher);

    for i in 0..30i64 {
        node.insert(vec![Value::Int(i)]).expect("insert");
    }
    // The follower fetches a few shipments — enough to clear a couple
    // of whole segments — then stalls mid-stream.
    let mut stalled_at = 0;
    for _ in 0..3 {
        let report = follower
            .catch_up_step(&publisher, sub, 160)
            .expect("bounded step");
        stalled_at = report.applied_lsn;
    }
    assert!(stalled_at > 0 && stalled_at < node.wal().durable_lsn());

    // The primary moves on: checkpoint (mark jumps past the stall
    // point), more traffic, rotate, compact through the publisher.
    node.checkpoint(&catalog, "node").expect("checkpoint");
    for i in 30..45i64 {
        node.insert(vec![Value::Int(i)]).expect("insert");
    }
    node.wal().rotate_now().expect("rotate");
    assert_eq!(publisher.retention_watermark(), Some(stalled_at));
    let compaction = publisher.compact_primary().expect("compact");
    assert!(
        compaction.segments_removed > 0,
        "the cycle reclaimed something, so retention was actually tested: {compaction:?}"
    );
    assert_eq!(
        publisher.compaction_floor(),
        stalled_at,
        "the floor stops at the slow follower's cursor, not the checkpoint mark"
    );

    // The stalled follower still drains to the end, bit for bit.
    let report = follower
        .catch_up(&publisher, sub)
        .expect("drain after compaction");
    assert_eq!(report.lag, 0);
    assert_eq!(follower.len(), node.len());
    for i in 0..45i64 {
        let q = SelectionQuery::point(0, i);
        assert_eq!(follower.answer(&q), node.answer(&q), "answer {i}");
        assert_eq!(follower.matching_ids(&q), node.matching_ids(&q), "gids {i}");
    }

    // Once the follower detaches, the next cycle reclaims its segments.
    publisher.detach(sub);
    node.checkpoint(&catalog, "node").expect("checkpoint");
    node.wal().rotate_now().expect("rotate");
    let after = publisher.compact_primary().expect("compact unretained");
    assert_eq!(publisher.retention_watermark(), None);
    assert!(after.segments_removed > 0, "{after:?}");
    std::fs::remove_dir_all(&root).unwrap();
}

/// A fetch below the publisher's compaction floor is a typed staleness
/// signal, not a garbled shipment: the late follower learns it must
/// re-bootstrap.
#[test]
fn late_attachment_below_the_floor_is_typed_stale() {
    let root = fresh_dir("stale");
    let (node, catalog) = primary(&root, 0);
    let publisher = SegmentPublisher::new(Arc::clone(&node));
    for i in 0..20i64 {
        node.insert(vec![Value::Int(i)]).expect("insert");
    }
    node.checkpoint(&catalog, "node").expect("checkpoint");
    node.wal().rotate_now().expect("rotate");
    publisher.compact_primary().expect("compact");
    assert!(publisher.compaction_floor() > 0);

    let err = publisher.poll(0).expect_err("below the floor");
    assert!(matches!(err, ReplError::Stale { from: 0, .. }), "{err}");

    // Re-bootstrapping from the fresh checkpoint starts above the floor
    // and catches up cleanly.
    let follower =
        Follower::bootstrap(&catalog, "node", root.join("mirror"), config()).expect("re-bootstrap");
    assert!(follower.applied_lsn() >= publisher.compaction_floor());
    let sub = follower.attach(&publisher);
    node.insert(vec![Value::Int(777)]).expect("insert");
    let report = follower.catch_up(&publisher, sub).expect("catch up");
    assert_eq!(report.lag, 0);
    let q = SelectionQuery::point(0, 777i64);
    assert_eq!(follower.matching_ids(&q), node.matching_ids(&q));
    std::fs::remove_dir_all(&root).unwrap();
}
