//! Smoke tests executing every `examples/*.rs` end to end, so the examples
//! can never silently rot: they are compiled by `cargo test` anyway, and
//! this suite additionally runs each binary and checks it exits cleanly
//! with output.
//!
//! Each test shells out to the same `cargo` that is running the suite
//! (`env!("CARGO")`), reusing the already-built dev profile, so the
//! marginal cost is the examples' own runtime (all under ~2s). Set
//! `PITRACT_SKIP_EXAMPLE_SMOKE=1` to skip, e.g. on constrained runners.

use std::process::Command;

fn run_example(name: &str) {
    // Value-checked (not just presence) so `PITRACT_SKIP_EXAMPLE_SMOKE=0`
    // or an empty templated var still runs the smoke tests.
    let skip = std::env::var("PITRACT_SKIP_EXAMPLE_SMOKE")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);
    if skip {
        eprintln!("skipping example smoke test for `{name}` (PITRACT_SKIP_EXAMPLE_SMOKE set)");
        return;
    }
    let output = Command::new(env!("CARGO"))
        .args(["run", "-q", "--example", name])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example `{name}`: {e}"));
    assert!(
        output.status.success(),
        "example `{name}` exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(
        !output.stdout.is_empty(),
        "example `{name}` produced no output; examples should narrate what they demonstrate"
    );
}

#[test]
fn example_quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn example_array_analytics_runs() {
    run_example("array_analytics");
}

#[test]
fn example_bds_order_runs() {
    run_example("bds_order");
}

#[test]
fn example_log_analytics_runs() {
    run_example("log_analytics");
}

#[test]
fn example_social_network_runs() {
    run_example("social_network");
}

#[test]
fn example_sharded_serving_runs() {
    run_example("sharded_serving");
}

/// Guards the list above against drift: a new example file must get a
/// smoke test (or this inventory updated consciously).
#[test]
fn every_example_file_has_a_smoke_test() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut found: Vec<String> = std::fs::read_dir(dir)
        .expect("examples/ directory exists")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(String::from)
        })
        .collect();
    found.sort();
    let covered = [
        "array_analytics",
        "bds_order",
        "durable_serving",
        "live_serving",
        "log_analytics",
        "mvcc_serving",
        "observed_serving",
        "persistent_serving",
        "pool_serving",
        "quickstart",
        "replicated_serving",
        "sharded_serving",
        "social_network",
    ];
    assert_eq!(
        found, covered,
        "examples/ and the smoke-test inventory disagree; add a smoke test for new examples"
    );
}

#[test]
fn example_persistent_serving_runs() {
    run_example("persistent_serving");
}

#[test]
fn example_live_serving_runs() {
    run_example("live_serving");
}

#[test]
fn example_durable_serving_runs() {
    run_example("durable_serving");
}

#[test]
fn example_pool_serving_runs() {
    run_example("pool_serving");
}

#[test]
fn example_mvcc_serving_runs() {
    run_example("mvcc_serving");
}

#[test]
fn example_observed_serving_runs() {
    run_example("observed_serving");
}

#[test]
fn example_replicated_serving_runs() {
    run_example("replicated_serving");
}
