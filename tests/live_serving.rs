//! Integration suite for the live serving tier: concurrent writers +
//! query batches verified against a single-threaded oracle, recovery
//! (checkpoint + log replay) bit-identical to the live state, and a
//! churn property test interleaving every operation against a
//! `Vec`-backed model.

use pi_tractable::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

fn schema() -> Schema {
    Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)])
}

fn base_relation(n: i64) -> Relation {
    let rows = (0..n)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 16))])
        .collect();
    Relation::from_rows(schema(), rows).unwrap()
}

fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pitract-live-it-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Queries over the stable key region `[0, n)` — writers only ever touch
/// keys `>= n`, so these answers are invariant under the churn and the
/// cold scan oracle stays valid throughout.
fn stable_batch(n: i64) -> QueryBatch {
    QueryBatch::new((0..96i64).map(|k| match k % 3 {
        0 => SelectionQuery::point(0, (k * 37) % n),
        1 => SelectionQuery::range_closed(0, (k * 11) % n, (k * 11) % n + 25),
        _ => SelectionQuery::and(
            SelectionQuery::point(1, format!("grp{}", k % 16).as_str()),
            SelectionQuery::range_closed(0, (k * 7) % n, (k * 7) % n + 200),
        ),
    }))
}

/// Queries answered during concurrent writes match the single-threaded
/// oracle, and the complete update log replays onto the base state to a
/// relation bit-identical with the live one — even though the updates
/// were issued by racing writers.
#[test]
fn concurrent_writers_and_batches_match_oracle() {
    let n = 4_000i64;
    let base = base_relation(n);
    let live = LiveRelation::build(&base, ShardBy::Hash { col: 0 }, 4, &[0, 1]).unwrap();
    let batch = stable_batch(n);
    let oracle: Vec<bool> = batch.queries().iter().map(|q| base.eval_scan(q)).collect();

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Four writers churn a disjoint volatile region: insert, then
        // delete every other insert, so tombstones accumulate too.
        let writers: Vec<_> = (0..4i64)
            .map(|w| {
                let live = &live;
                let stop = &stop;
                scope.spawn(move || {
                    let mut round = 0i64;
                    while !stop.load(Ordering::Relaxed) {
                        let key = n + w * 1_000_000 + round;
                        let gid = live
                            .insert(vec![Value::Int(key), Value::str("hot")])
                            .unwrap();
                        if round % 2 == 0 {
                            live.delete(gid).unwrap().unwrap();
                        }
                        round += 1;
                    }
                })
            })
            .collect();

        // Two reader threads serve batches the whole time.
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let live = &live;
                let batch = &batch;
                let oracle = &oracle;
                let base = &base;
                scope.spawn(move || {
                    for round in 0..15 {
                        let got = live.execute(batch).unwrap();
                        assert_eq!(&got.answers, oracle, "round {round} diverged");
                        let rows = live.execute_rows(batch).unwrap();
                        for (q, ids) in batch.queries().iter().zip(&rows.rows) {
                            assert!(ids.len() >= base.count_where(q), "{q:?} lost stable rows");
                        }
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    });

    // Replaying the full interleaved log onto the base state reproduces
    // the exact live state: same length, same rows under the same gids.
    let log = live.pending_log();
    assert!(!log.is_empty(), "the writers actually wrote");
    let replayed = LiveRelation::build(&base, ShardBy::Hash { col: 0 }, 4, &[0, 1]).unwrap();
    replayed.replay(&log).unwrap();
    assert_eq!(replayed.len(), live.len());
    let total_gids = n as usize + log.len(); // upper bound on assigned gids
    for gid in 0..total_gids {
        assert_eq!(replayed.row(gid), live.row(gid), "gid {gid}");
    }

    // The maintenance of every one of those updates was |CHANGED|-
    // accounted and stays bounded up to the B⁺-tree descent factor.
    let report = live.boundedness_report();
    assert_eq!(report.len(), log.len(), "one record per logged update");
    assert!(
        report.is_amortized_bounded(64.0),
        "worst {}",
        report.worst_ratio()
    );
}

/// `recover()` = snapshot load + log replay is bit-identical to the live
/// state: same Boolean answers, same global row ids, same row contents
/// under every gid ever assigned.
#[test]
fn recover_after_checkpoint_equals_live() {
    let n = 2_000i64;
    let dir = fresh_dir("recover");
    let catalog = SnapshotCatalog::open(&dir).unwrap();
    let live =
        LiveRelation::build(&base_relation(n), ShardBy::Hash { col: 0 }, 4, &[0, 1]).unwrap();

    // Pre-checkpoint churn.
    for i in 0..200i64 {
        live.insert(vec![Value::Int(n + i), Value::str("pre")])
            .unwrap();
    }
    for gid in (0..150).step_by(3) {
        live.delete(gid).unwrap().unwrap();
    }
    let records_at_checkpoint = live.boundedness_report().len();
    live.checkpoint(&catalog, "state").unwrap();
    assert!(
        live.pending_log().is_empty(),
        "checkpoint truncates the log"
    );

    // Post-checkpoint churn, captured only by the pending log.
    for i in 0..80i64 {
        live.insert(vec![Value::Int(n + 500 + i), Value::str("post")])
            .unwrap();
    }
    for gid in (500..560).step_by(2) {
        live.delete(gid).unwrap().unwrap();
    }

    let (recovered, summary) =
        LiveRelation::recover(&catalog, "state", &live.pending_log()).unwrap();

    // Bit-identical: length, every gid's row, answers and row-id sets —
    // and the epoch clock resumed exactly where the live node's stands.
    assert_eq!(summary.epoch, live.current_epoch());
    assert_eq!(recovered.current_epoch(), live.current_epoch());
    assert_eq!(recovered.len(), live.len());
    for gid in 0..(n as usize + 280) {
        assert_eq!(recovered.row(gid), live.row(gid), "gid {gid}");
    }
    let probes = QueryBatch::new(vec![
        SelectionQuery::point(0, 0i64),
        SelectionQuery::point(0, n + 510),
        SelectionQuery::range_closed(0, 400i64, 600i64),
        SelectionQuery::point(1, "grp3"),
        SelectionQuery::and(
            SelectionQuery::point(1, "grp5"),
            SelectionQuery::range_closed(0, 0i64, 1_000i64),
        ),
    ]);
    let a = live.execute_rows(&probes).unwrap();
    let b = recovered.execute_rows(&probes).unwrap();
    assert_eq!(a.rows, b.rows, "global row ids identical after recovery");

    // Replay reproduced the maintenance records of the replayed suffix
    // exactly (they are deterministic in the pre-update shard state).
    let live_records = live.boundedness_report();
    let suffix = &live_records.records()[records_at_checkpoint..];
    assert_eq!(recovered.boundedness_report().records(), suffix);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A checkpoint taken *while* writers and readers are running is a
/// consistent point-in-time snapshot: recovering from it plus the
/// post-join pending log equals the final live state.
#[test]
fn checkpoint_under_concurrent_traffic_recovers_consistently() {
    let n = 2_000i64;
    let dir = fresh_dir("midflight");
    let catalog = SnapshotCatalog::open(&dir).unwrap();
    let base = base_relation(n);
    let live = LiveRelation::build(&base, ShardBy::Hash { col: 0 }, 4, &[0, 1]).unwrap();
    let batch = stable_batch(n);
    let oracle: Vec<bool> = batch.queries().iter().map(|q| base.eval_scan(q)).collect();

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let writers: Vec<_> = (0..3i64)
            .map(|w| {
                let live = &live;
                let stop = &stop;
                scope.spawn(move || {
                    let mut round = 0i64;
                    while !stop.load(Ordering::Relaxed) {
                        let gid = live
                            .insert(vec![
                                Value::Int(n + w * 1_000_000 + round),
                                Value::str("hot"),
                            ])
                            .unwrap();
                        if round % 3 == 0 {
                            live.delete(gid).unwrap().unwrap();
                        }
                        round += 1;
                    }
                })
            })
            .collect();

        // Serve, checkpoint mid-flight, serve some more.
        for _ in 0..3 {
            assert_eq!(live.execute(&batch).unwrap().answers, oracle);
        }
        live.checkpoint(&catalog, "midflight").unwrap();
        for _ in 0..3 {
            assert_eq!(live.execute(&batch).unwrap().answers, oracle);
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    });

    let (recovered, _summary) =
        LiveRelation::recover(&catalog, "midflight", &live.pending_log()).unwrap();
    assert_eq!(recovered.len(), live.len());
    assert_eq!(recovered.current_epoch(), live.current_epoch());
    let upper = n as usize + 3_000_000 + 100_000;
    for q in [
        SelectionQuery::point(0, 17i64),
        SelectionQuery::range_closed(0, 0i64, n + 50),
        SelectionQuery::range_closed(0, n, upper as i64),
    ] {
        assert_eq!(recovered.matching_ids(&q), live.matching_ids(&q), "{q:?}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The epoch clock survives checkpoint → recover exactly: the recovered
/// node stamps its next update with the same epoch the original would
/// have, so epoch-pinned reads mean the same instant before and after a
/// restart.
#[test]
fn recovery_resumes_the_epoch_clock() {
    let dir = fresh_dir("epochclock");
    let catalog = SnapshotCatalog::open(&dir).unwrap();
    let live =
        LiveRelation::build(&base_relation(100), ShardBy::Hash { col: 0 }, 3, &[0, 1]).unwrap();
    assert_eq!(live.current_epoch(), Epoch::ZERO);
    for i in 0..10i64 {
        live.insert(vec![Value::Int(1_000 + i), Value::str("pre")])
            .unwrap();
    }
    assert_eq!(live.current_epoch(), Epoch::new(10), "one tick per update");
    live.checkpoint(&catalog, "clock").unwrap();
    assert_eq!(
        live.current_epoch(),
        Epoch::new(10),
        "checkpointing is not an update"
    );
    for i in 0..5i64 {
        live.insert(vec![Value::Int(2_000 + i), Value::str("post")])
            .unwrap();
    }

    let (recovered, summary) =
        LiveRelation::recover(&catalog, "clock", &live.pending_log()).unwrap();
    assert_eq!(summary.epoch, Epoch::new(15));
    assert_eq!(recovered.current_epoch(), Epoch::new(15));

    // Both nodes stamp the next update identically.
    live.insert(vec![Value::Int(3_000), Value::str("next")])
        .unwrap();
    recovered
        .insert(vec![Value::Int(3_000), Value::str("next")])
        .unwrap();
    assert_eq!(recovered.current_epoch(), live.current_epoch());
    assert_eq!(recovered.current_epoch(), Epoch::new(16));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Reconstruct the exact database instance a pinned batch saw: epoch `E`
/// names the state produced by the first `E` logged updates, so replaying
/// that prefix onto a fresh build must reproduce the batch's row-id sets
/// bit-identically.
fn epoch_prefix_oracle(
    base: &Relation,
    shards: usize,
    log: &UpdateLog,
    epoch: Epoch,
) -> LiveRelation {
    let prefix = UpdateLog::from_entries(log.entries()[..epoch.get() as usize].to_vec());
    let oracle = LiveRelation::build(base, ShardBy::Hash { col: 0 }, shards, &[0, 1]).unwrap();
    oracle.replay(&prefix).unwrap();
    oracle
}

proptest! {
    /// MVCC consistency under churn: cross-shard batches served through
    /// the pooled executor while a writer races them are answered at one
    /// pinned epoch — reconstructing the state at exactly that epoch
    /// (base + log prefix of length E) reproduces every batch's row-id
    /// sets (and therefore its COUNTs) bit-identically. A read-committed
    /// executor could interleave shard reads with the writer and observe
    /// an instance that never existed; the pin makes that impossible.
    #[test]
    fn pinned_batches_match_the_epoch_prefix_oracle(
        seed_rows in 8i64..48,
        ops in prop::collection::vec((any::<bool>(), 0i64..64), 16..80),
    ) {
        let shards = 3;
        let base = base_relation(seed_rows);
        let live = std::sync::Arc::new(
            LiveRelation::build(&base, ShardBy::Hash { col: 0 }, shards, &[0, 1]).unwrap(),
        );
        let exec = PooledExecutor::with_default_pool(std::sync::Arc::clone(&live));
        // Cross-shard queries over the *whole* keyspace, volatile region
        // included — a torn (multi-instance) read would change these
        // row-id sets, so exact equality is the consistency proof.
        let batch = QueryBatch::new(vec![
            SelectionQuery::range_closed(0, 0i64, 100_000i64),
            SelectionQuery::point(1, "hot"),
            SelectionQuery::range_closed(0, seed_rows, 100_000i64),
            SelectionQuery::and(
                SelectionQuery::point(1, "hot"),
                SelectionQuery::range_closed(0, 0i64, 100_000i64),
            ),
        ]);

        let mut observed: Vec<(Epoch, Vec<Vec<usize>>)> = Vec::new();
        std::thread::scope(|scope| {
            let writer_live = std::sync::Arc::clone(&live);
            let writer_ops = ops.clone();
            let writer = scope.spawn(move || {
                for (insert, key) in writer_ops {
                    if insert {
                        writer_live
                            .insert(vec![Value::Int(10_000 + key), Value::str("hot")])
                            .unwrap();
                    } else {
                        // Delete whatever gid the key picks; a miss on an
                        // already-dead slot applies (and logs) nothing.
                        let _ = writer_live.delete(key as usize % (seed_rows as usize + 8));
                    }
                }
            });
            for _ in 0..6 {
                let got = exec.execute_rows(&batch).unwrap();
                observed.push((got.report.epoch.unwrap(), got.rows));
            }
            writer.join().unwrap();
        });

        // Every batch matches the oracle at its own pinned epoch.
        let log = live.pending_log();
        for (epoch, rows) in &observed {
            prop_assert!(epoch.get() as usize <= log.len());
            let oracle = epoch_prefix_oracle(&base, shards, &log, *epoch);
            let expect = oracle.execute_rows(&batch).unwrap();
            prop_assert_eq!(&expect.rows, rows, "at pinned epoch {}", epoch);
        }

        // Pins were all released and superseded versions reclaimed.
        let stats = live.version_stats();
        prop_assert_eq!(stats.pins, 0);
        prop_assert_eq!(stats.retained_versions, 0);
        prop_assert_eq!(stats.current_epoch, live.current_epoch());
    }
}

proptest! {
    /// Churn property: a random interleaving of insert / delete /
    /// checkpoint / recover / query on a `LiveRelation` agrees with a
    /// `Vec`-backed oracle on answers, global row ids, and boundedness
    /// records. Ops are applied to whichever instance is "current" —
    /// after a recover, the *recovered* node becomes current, so the
    /// property also proves recovery is a seamless continuation point.
    #[test]
    fn live_churn_matches_vec_oracle(
        seed_rows in 0i64..12,
        ops in prop::collection::vec((0u8..5, 0i64..64, 0usize..96), 0..60)
    ) {
        let dir = fresh_dir("churn");
        let catalog = SnapshotCatalog::open(&dir).unwrap();
        let mut live = LiveRelation::build(
            &base_relation(seed_rows),
            ShardBy::Hash { col: 0 },
            3,
            &[0, 1],
        )
        .unwrap();
        // The oracle: gid -> slot, exactly the logical id space.
        let mut model: Vec<Option<Vec<Value>>> = (0..seed_rows)
            .map(|i| Some(vec![Value::Int(i), Value::str(format!("grp{}", i % 16))]))
            .collect();
        let mut checkpointed = false;

        for (op, key, pick) in ops {
            match op {
                // Insert: the live gid must equal the model's next slot.
                0 => {
                    let row = vec![Value::Int(key), Value::str(format!("grp{}", key % 16))];
                    let gid = live.insert(row.clone()).unwrap();
                    prop_assert_eq!(gid, model.len(), "gids assigned densely in order");
                    model.push(Some(row));
                }
                // Delete: any slot, live or tombstoned — results agree.
                1 if !model.is_empty() => {
                    let gid = pick % model.len();
                    let expect = model[gid].take();
                    prop_assert_eq!(live.delete(gid).unwrap(), expect, "delete gid {}", gid);
                }
                // Checkpoint: persists and truncates the pending log.
                2 => {
                    live.checkpoint(&catalog, "churn").unwrap();
                    prop_assert!(live.pending_log().is_empty());
                    checkpointed = true;
                }
                // Recover: replaces the current node; must be identical.
                3 if checkpointed => {
                    let pending = live.pending_log();
                    let (recovered, summary) =
                        LiveRelation::recover(&catalog, "churn", &pending).unwrap();
                    prop_assert_eq!(recovered.len(), live.len());
                    prop_assert_eq!(summary.epoch, live.current_epoch());
                    // Recovery replays the *compacted* pending log: one
                    // maintenance record per surviving entry (work may
                    // differ from the original history's — a cancelled
                    // pair's row briefly inflated the shard a survivor
                    // descended into — but the |CHANGED| components are
                    // pinned per update kind).
                    let compacted = pending.compact();
                    let recovered_report = recovered.boundedness_report();
                    prop_assert_eq!(recovered_report.len(), compacted.len());
                    for r in recovered_report.records() {
                        prop_assert_eq!(r.delta_input, 1);
                        prop_assert_eq!(r.delta_output, 3, "1 tuple + 2 indexed columns");
                    }
                    live = recovered;
                }
                // Query: answers and global row ids against the model.
                _ => {
                    let q = SelectionQuery::point(0, key);
                    let expect_ids: Vec<usize> = model
                        .iter()
                        .enumerate()
                        .filter_map(|(gid, slot)| {
                            slot.as_ref()
                                .filter(|row| row[0] == Value::Int(key))
                                .map(|_| gid)
                        })
                        .collect();
                    prop_assert_eq!(live.answer(&q), !expect_ids.is_empty(), "{:?}", &q);
                    prop_assert_eq!(live.matching_ids(&q), expect_ids, "{:?}", &q);
                }
            }
            prop_assert_eq!(
                live.len(),
                model.iter().flatten().count(),
                "live count tracks the model"
            );
        }

        // Final sweep: every gid agrees, and the maintenance accounting
        // covered every applied update since the last recover/build.
        for (gid, slot) in model.iter().enumerate() {
            prop_assert_eq!(&live.row(gid), slot, "gid {}", gid);
        }
        prop_assert!(live.boundedness_report().is_amortized_bounded(64.0));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
