//! Integration tests for the reduction machinery across crates: chained
//! `≤NC_fa` reductions (Lemma 2), scheme transfer (Lemma 3), and the
//! Corollary 6 pipeline on CVP — the paper's Sections 5–7 as a test suite.

use pi_tractable::core::factor::Factorization;
use pi_tractable::core::problem::DecisionProblem;
use pi_tractable::prelude::*;
use pi_tractable::reductions::{
    connectivity_to_bds, cvp_refactor, lca_to_rmq, list_to_selection, point_to_range, rmq_lca,
};

/// Lemma 8 transitivity on real classes: ListSearch → PointSelection →
/// RangeSelection, verified end to end.
#[test]
fn f_reduction_chain_list_point_range() {
    let chain = list_to_selection::reduction().then(point_to_range::reduction());
    let src = list_to_selection::list_search_language();
    let dst = point_to_range::range_selection_language();
    let probes: Vec<(Vec<i64>, i64)> = vec![
        (vec![2, 4, 6], 4),
        (vec![2, 4, 6], 5),
        (vec![], 1),
        ((0..100).collect(), 99),
        ((0..100).collect(), 100),
    ];
    assert_eq!(chain.verify(&src, &dst, &probes), Ok(()));
}

/// Lemma 2 on real classes: RMQ → Cartesian-tree LCA → Euler RMQ, with
/// the padded middle factorization produced by `compose`.
#[test]
fn factor_reduction_chain_rmq_lca_euler() {
    let composite = rmq_lca::reduction().compose(lca_to_rmq::reduction());
    // Instances still enter as (array, triple); the composed factorization
    // pads them into (data, query) pairs carrying the whole instance.
    let x: (Vec<i64>, (usize, usize, usize)) = (vec![5, 2, 8, 2, 9], (1, 4, 1));
    assert!(composite.f1.check_roundtrip(&x));
    let src = pi_tractable::core::problem::FnProblem::new("rmq", {
        let lang = rmq_lca::rmq_language();
        move |i: &(Vec<i64>, (usize, usize, usize))| lang.contains(&i.0, &i.1)
    });
    let dst = pi_tractable::core::problem::FnProblem::new("euler", {
        let lang = lca_to_rmq::euler_rmq_language();
        move |i: &(lca_to_rmq::EulerData, (usize, usize, usize))| lang.contains(&i.0, &i.1)
    });
    let mut probes = Vec::new();
    for seed in 0..5i64 {
        let data: Vec<i64> = (0..20).map(|i| ((i * 13 + seed * 7) % 17) - 8).collect();
        for i in 0..20 {
            probes.push((data.clone(), (i, (i * 3) % 20, (i * 5) % 20)));
        }
    }
    assert_eq!(composite.verify(&src, &dst, &probes), Ok(()));
}

/// Lemma 3 transfer validated at the *scheme* level for each pipeline:
/// the transferred scheme answers the source class and keeps NC claims.
#[test]
fn transferred_schemes_claim_and_deliver() {
    // RMQ via Cartesian LCA.
    let rmq = rmq_lca::transferred_rmq_scheme();
    assert!(rmq.claims_pi_tractable());
    // LCA via Euler RMQ.
    let lca = lca_to_rmq::transferred_lca_scheme();
    assert!(lca.claims_pi_tractable());
    // List search via point selection.
    let list = list_to_selection::transferred_list_scheme();
    assert!(list.claims_pi_tractable());
    // Connectivity via BDS.
    let conn = connectivity_to_bds::transferred_connectivity_scheme();
    assert!(conn.claims_pi_tractable());

    // Deliver: spot-check each against its ground truth.
    let p = rmq.preprocess(&vec![4i64, 1, 3, 1, 5]);
    assert!(rmq.answer(&p, &(0, 4, 1)));
    assert!(!rmq.answer(&p, &(0, 4, 3)));
    assert!(rmq.answer(&p, &(2, 4, 3)));

    let list_p = list.preprocess(&vec![10i64, 20, 30]);
    assert!(list.answer(&list_p, &20));
    assert!(!list.answer(&list_p, &25));
}

/// Corollary 6 executed: CVP, hopeless under Υ₀, becomes Π-tractable via
/// the generic make_tractable pipeline; answers match the direct evaluator
/// on structured circuits.
#[test]
fn corollary_6_cvp_pipeline() {
    use pi_tractable::circuit::factor::cvp_problem;
    use pi_tractable::circuit::generate::{adder_equals, to_bits};

    let result = cvp_refactor::tractabilize_cvp();
    assert!(result.scheme.claims_pi_tractable());

    let cvp = cvp_problem();
    for (a, b) in [(3u64, 4u64), (100, 155), (255, 0)] {
        for target_delta in [0u64, 1] {
            let circuit = adder_equals(9, a + b + target_delta);
            let mut inputs = to_bits(a, 9);
            inputs.extend(to_bits(b, 9));
            let x = (circuit, inputs);
            let d = result.factorization.pi1(&x);
            let q = result.factorization.pi2(&x);
            let pre = result.scheme.preprocess(&d);
            assert_eq!(
                result.scheme.answer(&pre, &q),
                cvp.accepts(&x),
                "a={a} b={b} delta={target_delta}"
            );
        }
    }
}

/// The sentinel reduction's fine print: the sentinel is visited directly
/// after the source component, making the position comparison exact.
#[test]
fn sentinel_sits_right_after_source_component() {
    use pi_tractable::graph::generate;
    let g = generate::gnp_undirected(60, 0.03, 13);
    let planted = connectivity_to_bds::plant_sentinel(&g);
    let idx = BdsIndex::build(&planted);
    // Position of the sentinel equals the size of the source component.
    let comp_size = (0..g.node_count())
        .filter(|&t| pi_tractable::graph::traverse::reachable_bfs(&g, 0, t))
        .count();
    assert_eq!(idx.position(1), comp_size);
}

/// Reductions preserve *costs* the way Lemma 3's bookkeeping promises:
/// transferring through a linear-α reduction keeps PTIME preprocessing,
/// and through a constant-β keeps the NC answering class.
#[test]
fn transfer_cost_bookkeeping() {
    let scheme = list_to_selection::transferred_list_scheme();
    assert_eq!(scheme.preprocess_cost(), CostClass::NLogN);
    assert_eq!(scheme.answer_cost(), CostClass::Log);
    assert!(scheme.preprocess_cost().is_ptime());
    assert!(scheme.answer_cost().is_nc_query_cost());
}

/// Theorem 9's witness stays a witness through the public API: the Υ₀
/// scheme is correct but cannot claim Π-tractability, while its
/// re-factorized sibling can — the separation in two asserts.
#[test]
fn theorem_9_separation_visible_at_api_level() {
    use pi_tractable::circuit::factor::{gate_table_scheme, upsilon0_scheme};
    assert!(!upsilon0_scheme().claims_pi_tractable());
    assert!(gate_table_scheme().claims_pi_tractable());
}
