//! Integration tests for the pooled serving session through the public
//! facade: the `PooledExecutor` must answer exactly like the scoped
//! executor (which answers exactly like the scan oracle), contain
//! worker panics as typed errors without poisoning the pool, and serve
//! custom `BatchServe` targets — while `apply_batch` keeps the durable
//! write side batch-committed and crash-consistent.

use pi_tractable::prelude::*;
use std::sync::Arc;

fn relation(n: i64) -> Relation {
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 16))])
        .collect();
    Relation::from_rows(schema, rows).expect("valid rows")
}

fn mixed_batch(n: i64) -> QueryBatch {
    QueryBatch::new((0..128i64).map(|k| match k % 4 {
        0 => SelectionQuery::point(0, (k * 97) % (n + 50)),
        1 => SelectionQuery::range_closed(0, (k * 61) % n, (k * 61) % n + 40),
        2 => SelectionQuery::and(
            SelectionQuery::point(1, format!("grp{}", k % 16).as_str()),
            SelectionQuery::range_closed(0, (k * 31) % n, (k * 31) % n + 300),
        ),
        _ => SelectionQuery::point(0, n + k),
    }))
}

#[test]
fn pooled_answers_match_scoped_and_oracle_on_every_target() {
    let n = 4_000i64;
    let rel = relation(n);
    let batch = mixed_batch(n);
    let oracle: Vec<bool> = batch.queries().iter().map(|q| rel.eval_scan(q)).collect();

    // ShardedRelation target.
    let sharded = Arc::new(
        ShardedRelation::build(&rel, ShardBy::Hash { col: 0 }, 4, &[0, 1]).expect("valid spec"),
    );
    let scoped = batch.execute(&sharded).expect("scoped batch");
    assert_eq!(scoped.answers, oracle);
    let exec = PooledExecutor::with_default_pool(Arc::clone(&sharded));
    let pooled = exec.execute(&batch).expect("pooled batch");
    assert_eq!(
        pooled.answers, oracle,
        "pooled != oracle on ShardedRelation"
    );
    assert_eq!(
        pooled.report.total_steps, scoped.report.total_steps,
        "metering must not depend on the executor"
    );

    // LiveRelation target, same contract.
    let live = Arc::new(
        LiveRelation::build(&rel, ShardBy::Hash { col: 0 }, 4, &[0, 1]).expect("valid spec"),
    );
    let exec = PooledExecutor::new(
        Arc::clone(&live),
        PoolConfig {
            workers: 2,
            max_inflight: 3,
        },
    );
    assert_eq!(exec.execute(&batch).expect("pooled live").answers, oracle);

    // Row ids come back globally translated, independent of shard order.
    let point_batch = QueryBatch::new((0..40i64).map(|k| SelectionQuery::point(0, k * 11)));
    let rows = exec.execute_rows(&point_batch).expect("pooled rows");
    for (k, ids) in rows.rows.iter().enumerate() {
        assert_eq!(ids, &vec![k * 11], "key {}", k * 11);
    }
}

/// A `BatchServe` target that panics on one shard: the session must
/// surface a typed error and keep serving later batches — a standing
/// pool that dies with one bad batch is not a serving session.
#[derive(Debug)]
struct PanicOnShard {
    inner: ShardedRelation,
    poison: usize,
}

impl BatchServe for PanicOnShard {
    fn route(
        &self,
        queries: &[SelectionQuery],
    ) -> Result<(Vec<QueryPlan>, Vec<Vec<usize>>), EngineError> {
        self.inner.route(queries)
    }

    fn shard_count(&self) -> usize {
        BatchServe::shard_count(&self.inner)
    }

    fn eval_bool(
        &self,
        shard: usize,
        at: Epoch,
        queries: &[SelectionQuery],
        assigned: &[usize],
    ) -> Vec<(usize, bool, u64)> {
        assert_ne!(shard, self.poison, "injected shard failure");
        self.inner.eval_bool(shard, at, queries, assigned)
    }

    fn eval_rows(
        &self,
        shard: usize,
        at: Epoch,
        queries: &[SelectionQuery],
        assigned: &[usize],
    ) -> Vec<(usize, Vec<usize>, u64)> {
        self.inner.eval_rows(shard, at, queries, assigned)
    }

    fn global_ids(&self, shard: usize, locals: &[usize]) -> Vec<usize> {
        self.inner.global_ids(shard, locals)
    }
}

#[test]
fn worker_panic_is_typed_and_the_session_keeps_serving() {
    let n = 1_000i64;
    let rel = relation(n);
    let target = Arc::new(PanicOnShard {
        inner: ShardedRelation::build(&rel, ShardBy::Hash { col: 0 }, 3, &[0]).expect("valid spec"),
        poison: 1,
    });
    let exec = PooledExecutor::new(
        Arc::clone(&target),
        PoolConfig {
            workers: 2,
            max_inflight: 2,
        },
    );
    // A full scan routes to every shard, including the poisoned one.
    let all_shards = QueryBatch::new([SelectionQuery::point(1, "grp3")]);
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // keep the injected panic quiet
    let err = exec.execute(&all_shards).expect_err("poisoned shard");
    std::panic::set_hook(prev_hook);
    assert!(
        matches!(err, EngineError::WorkerPanicked { shard: 1 }),
        "{err:?}"
    );
    // The pool survives: a batch avoiding shard 1 still serves. Point
    // queries on the shard key route to exactly one shard each.
    let safe: Vec<i64> = (0..200i64)
        .filter(|&k| {
            let (_, routed) =
                BatchServe::route(target.as_ref(), &[SelectionQuery::point(0, k)]).expect("route");
            routed[0] != vec![1]
        })
        .take(8)
        .collect();
    assert!(!safe.is_empty(), "some keys route off the poisoned shard");
    let batch = QueryBatch::new(safe.iter().map(|&k| SelectionQuery::point(0, k)));
    let got = exec.execute(&batch).expect("session survives the panic");
    assert!(got.answers.iter().all(|&a| a));
}

#[test]
fn apply_batch_through_the_session_is_durable_and_recovers() {
    let n = 500i64;
    let root = std::env::temp_dir().join(format!("pitract-poolit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let catalog = SnapshotCatalog::open(root.join("snaps")).expect("catalog dir");
    let wal_dir = root.join("wal");
    let config = WalConfig {
        segment_bytes: 64 << 10,
        sync: SyncPolicy::GroupCommit,
    };
    let live =
        LiveRelation::build(&relation(n), ShardBy::Hash { col: 0 }, 4, &[0, 1]).expect("spec");
    let node = Arc::new(
        DurableLiveRelation::create(live, &catalog, "sess", &wal_dir, config.clone())
            .expect("fresh durable node"),
    );
    let exec = PooledExecutor::with_default_pool(Arc::clone(&node));

    // Batched writes interleave with pooled reads.
    let applied = node
        .apply_batch((0..64i64).map(|i| {
            if i % 4 == 3 {
                UpdateOp::Delete(i as usize)
            } else {
                UpdateOp::Insert(vec![Value::Int(n + i), Value::str("hot")])
            }
        }))
        .expect("durable batch");
    assert_eq!(applied.len(), 64);
    assert_eq!(node.wal().durable_lsn(), 64, "one commit covered the batch");
    let batch = QueryBatch::new((0..16i64).map(|k| SelectionQuery::point(0, n + k * 4)));
    let got = exec.execute(&batch).expect("pooled batch");
    assert!(got.answers.iter().all(|&a| a), "batched inserts visible");

    // Crash cold; every batched update must come back.
    let expected: Vec<Option<Vec<Value>>> =
        (0..(n as usize + 64)).map(|gid| node.row(gid)).collect();
    drop(exec);
    drop(node);
    let recovered =
        DurableLiveRelation::recover(&catalog, "sess", &wal_dir, config).expect("recovery");
    for (gid, expect) in expected.iter().enumerate() {
        assert_eq!(&recovered.row(gid), expect, "gid {gid}");
    }
    let _ = std::fs::remove_dir_all(&root);
}
