//! Property-based tests (proptest) on the workspace's core invariants.
//!
//! Each property states a paper-level contract — "preprocessing never
//! changes answers", "factorizations roundtrip", "all RMQ structures
//! agree" — and hammers it with randomized inputs plus shrinking.

use pi_tractable::graph::traverse::reachable_bfs;
use pi_tractable::graph::Graph;
use pi_tractable::index::rmq::{
    fischer_heun::FischerHeunRmq, naive::NaiveRmq, segtree::SegTreeRmq, sparse::SparseRmq,
    table::AllPairsRmq, RangeMin,
};
use pi_tractable::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    /// B⁺-tree behaves exactly like the standard ordered map under any
    /// interleaving of inserts, deletes and lookups, at every node order.
    #[test]
    fn bptree_matches_btreemap(
        order in 3usize..12,
        ops in prop::collection::vec((0u8..3, 0u64..200, 0u64..1000), 0..400)
    ) {
        let mut tree: BPlusTree<u64, u64> = BPlusTree::with_order(order);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (op, key, val) in ops {
            match op {
                0 => prop_assert_eq!(tree.insert(key, val), model.insert(key, val)),
                1 => prop_assert_eq!(tree.remove(&key), model.remove(&key)),
                _ => prop_assert_eq!(tree.get(&key), model.get(&key)),
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        tree.check_invariants().map_err(TestCaseError::fail)?;
        let got: Vec<(u64, u64)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let expect: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, expect);
    }

    /// Every RMQ structure returns the same (leftmost) argmin on every
    /// range of any array.
    #[test]
    fn rmq_structures_cross_agree(
        data in prop::collection::vec(-100i64..100, 1..80),
        ranges in prop::collection::vec((0usize..80, 0usize..80), 1..20)
    ) {
        let n = data.len();
        let naive = NaiveRmq::build(&data);
        let table = AllPairsRmq::build(&data);
        let sparse = SparseRmq::build(&data);
        let seg = SegTreeRmq::build(&data);
        let fh = FischerHeunRmq::build(&data);
        for (a, b) in ranges {
            let (i, j) = ((a % n).min(b % n), (a % n).max(b % n));
            let expect = naive.query(i, j);
            prop_assert_eq!(table.query(i, j), expect, "table [{},{}]", i, j);
            prop_assert_eq!(sparse.query(i, j), expect, "sparse [{},{}]", i, j);
            prop_assert_eq!(seg.query(i, j), expect, "segtree [{},{}]", i, j);
            prop_assert_eq!(fh.query(i, j), expect, "fischer-heun [{},{}]", i, j);
        }
    }

    /// Query-preserving compression never changes a reachability answer
    /// (Section 4(5)'s defining property).
    #[test]
    fn compression_preserves_all_reachability(
        n in 2usize..25,
        edges in prop::collection::vec((0usize..25, 0usize..25), 0..60)
    ) {
        let edges: Vec<(usize, usize)> = edges
            .into_iter()
            .map(|(u, v)| (u % n, v % n))
            .collect();
        let g = Graph::directed_from_edges(n, &edges);
        let c = CompressedReach::build(&g);
        for u in 0..n {
            for v in 0..n {
                let expect = u == v || reachable_bfs(&g, u, v);
                prop_assert_eq!(c.reachable(u, v), expect, "({},{})", u, v);
            }
        }
    }

    /// The all-pairs reachability index agrees with per-query BFS — the
    /// "matrix" of Example 3 is sound and complete.
    #[test]
    fn reach_index_is_sound_and_complete(
        n in 1usize..30,
        edges in prop::collection::vec((0usize..30, 0usize..30), 0..70)
    ) {
        let edges: Vec<(usize, usize)> = edges
            .into_iter()
            .map(|(u, v)| (u % n, v % n))
            .collect();
        let g = Graph::directed_from_edges(n, &edges);
        let idx = ReachIndex::build(&g);
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(idx.reachable(u, v), reachable_bfs(&g, u, v));
            }
        }
    }

    /// Indexed relations answer exactly like scans for every point/range
    /// query — Definition 1's "⟨D,Q⟩ ∈ S iff ⟨Π(D),Q⟩ ∈ S′" on Q₁.
    #[test]
    fn indexed_relation_equals_scan(
        values in prop::collection::vec(-50i64..50, 0..120),
        probes in prop::collection::vec(-60i64..60, 1..40),
    ) {
        let schema = Schema::new(&[("a", ColType::Int)]);
        let rows = values.iter().map(|&v| vec![Value::Int(v)]).collect();
        let rel = Relation::from_rows(schema, rows).unwrap();
        let idx = IndexedRelation::build(&rel, &[0]).expect("column 0 exists");
        for p in probes {
            let point = SelectionQuery::point(0, p);
            prop_assert_eq!(idx.answer(&point), rel.eval_scan(&point));
            let range = SelectionQuery::range_closed(0, p, p + 7);
            prop_assert_eq!(idx.answer(&range), rel.eval_scan(&range));
        }
    }

    /// A sharded relation — any shard count, either partitioning, after
    /// any insert/delete interleaving — batch-answers exactly like a
    /// sequential scan over the surviving rows.
    #[test]
    fn sharded_relation_equals_scan_under_updates(
        shards in 1usize..9,
        use_range_partitioning in any::<bool>(),
        ops in prop::collection::vec((0u8..4, -40i64..40, 0usize..8), 1..120),
        probes in prop::collection::vec((0u8..3, -50i64..50, 0usize..8), 1..30),
    ) {
        let schema = Schema::new(&[("k", ColType::Int), ("tag", ColType::Str)]);
        let shard_by = if use_range_partitioning {
            // Ascending int splits spanning the value domain.
            let splits = (1..shards as i64)
                .map(|i| Value::Int(-40 + i * 80 / shards as i64))
                .collect();
            ShardBy::Range { col: 0, splits }
        } else {
            ShardBy::Hash { col: 0 }
        };
        let mut sharded = ShardedRelation::build(
            &Relation::new(schema.clone()),
            shard_by,
            shards,
            &[0, 1],
        ).unwrap();
        // The model: plain rows keyed by the same global ids.
        let mut model: Vec<Option<Vec<Value>>> = Vec::new();
        for (op, k, t) in ops {
            if op < 3 {
                let row = vec![Value::Int(k), Value::str(format!("t{t}"))];
                let gid = sharded.insert(row.clone()).unwrap();
                prop_assert_eq!(gid, model.len());
                model.push(Some(row));
            } else if !model.is_empty() {
                let victim = (k.unsigned_abs() as usize + t) % model.len();
                prop_assert_eq!(
                    sharded.delete(victim),
                    model[victim].take(),
                    "delete {}", victim
                );
            }
        }
        let live: Vec<Vec<Value>> = model.iter().flatten().cloned().collect();
        let oracle = Relation::from_rows(schema, live).unwrap();
        prop_assert_eq!(sharded.len(), oracle.len());

        let batch = QueryBatch::new(probes.iter().map(|&(shape, v, t)| match shape {
            0 => SelectionQuery::point(0, v),
            1 => SelectionQuery::range_closed(0, v, v + 9),
            _ => SelectionQuery::and(
                SelectionQuery::point(1, format!("t{t}").as_str()),
                SelectionQuery::range_closed(0, v, v + 15),
            ),
        }));
        let got = batch.execute(&sharded).unwrap();
        for (q, &ans) in batch.queries().iter().zip(&got.answers) {
            prop_assert_eq!(ans, oracle.eval_scan(q), "{:?}", q);
        }
        // Row-id mode agrees with the match count on the oracle.
        let rows = batch.execute_rows(&sharded).unwrap();
        for (q, ids) in batch.queries().iter().zip(&rows.rows) {
            prop_assert_eq!(ids.len(), oracle.count_where(q), "{:?}", q);
        }
    }

    /// Factorization roundtrip law (Proposition 1's precondition) for the
    /// identity, trivial and padded factorizations on arbitrary pairs.
    #[test]
    fn factorization_roundtrips(d in prop::collection::vec(0u64..100, 0..20), q in 0u64..100) {
        use pi_tractable::core::factor::{
            identity_pair_factorization, padded_factorization,
            trivial_data_factorization, trivial_query_factorization,
        };
        let x = (d, q);
        let f1 = identity_pair_factorization::<Vec<u64>, u64>();
        prop_assert!(f1.check_roundtrip(&x));
        let f2 = trivial_data_factorization::<(Vec<u64>, u64)>();
        prop_assert!(f2.check_roundtrip(&x));
        let f3 = trivial_query_factorization::<(Vec<u64>, u64)>();
        prop_assert!(f3.check_roundtrip(&x));
        let f4 = padded_factorization(identity_pair_factorization::<Vec<u64>, u64>());
        prop_assert!(f4.check_roundtrip(&x));
    }

    /// The Encoded pair framing is injective and splits losslessly for
    /// arbitrary byte contents (the paper's `@`-padding replacement).
    #[test]
    fn encoded_pairs_roundtrip(a in prop::collection::vec(any::<u8>(), 0..64),
                               b in prop::collection::vec(any::<u8>(), 0..64)) {
        use pi_tractable::core::encode::Encoded;
        let ea = Encoded::from_bytes(a.clone());
        let eb = Encoded::from_bytes(b.clone());
        let pair = Encoded::pair(&ea, &eb);
        let (ra, rb) = pair.split_pair().expect("well-formed");
        prop_assert_eq!(ra.as_bytes(), &a[..]);
        prop_assert_eq!(rb.as_bytes(), &b[..]);
    }

    /// Incremental closure equals batch closure after any insert stream.
    #[test]
    fn incremental_closure_matches_batch(
        n in 1usize..20,
        stream in prop::collection::vec((0usize..20, 0usize..20), 0..50)
    ) {
        use pi_tractable::incremental::closure::IncrementalClosure;
        use pi_tractable::pram::matrix::closure_by_dfs;
        let mut inc = IncrementalClosure::new(n);
        let mut edges = Vec::new();
        for (u, v) in stream {
            let (u, v) = (u % n, v % n);
            inc.insert_edge(u, v);
            edges.push((u, v));
        }
        prop_assert_eq!(inc.matrix(), &closure_by_dfs(n, &edges));
    }

    /// BDS visit order is always a permutation and the index inverts it.
    #[test]
    fn bds_order_is_a_permutation(
        n in 1usize..40,
        edges in prop::collection::vec((0usize..40, 0usize..40), 0..80)
    ) {
        let edges: Vec<(usize, usize)> = edges
            .into_iter()
            .map(|(u, v)| (u % n, v % n))
            .collect();
        let g = Graph::undirected_from_edges(n, &edges);
        let order = bds_order(&g);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        let idx = BdsIndex::build(&g);
        for (pos, &node) in order.iter().enumerate() {
            prop_assert_eq!(idx.position(node), pos);
        }
    }

    /// Buss kernel decisions agree with the plain search tree on the
    /// original instance for all small graphs and budgets.
    #[test]
    fn kernelized_vc_agrees_with_direct_solver(
        n in 2usize..14,
        edges in prop::collection::vec((0usize..14, 0usize..14), 0..30),
        k in 0usize..8
    ) {
        use pi_tractable::kernel::buss::decide_via_kernel;
        use pi_tractable::kernel::vc::bounded_search_tree;
        let edges: Vec<(usize, usize)> = edges
            .into_iter()
            .map(|(u, v)| (u % n, v % n))
            .collect();
        let g = Graph::undirected_from_edges(n, &edges);
        let meter = Meter::new();
        prop_assert_eq!(
            decide_via_kernel(&g, k, &meter),
            bounded_search_tree(&g, k).is_some()
        );
    }
}
