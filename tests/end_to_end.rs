//! Cross-crate integration tests: the paper's main claims, executed
//! against the public API exactly as a downstream user would.

use pi_tractable::graph::generate;
use pi_tractable::graph::traverse::reachable_bfs;
use pi_tractable::prelude::*;

/// Figure 2, containment NC ⊆ ΠT⁰Q: an NC-answerable class gets a trivial
/// scheme that is correct and claims tractability.
#[test]
fn nc_classes_are_trivially_pi_tractable() {
    let lang = FnPairLanguage::new("small-membership", |d: &Vec<u64>, q: &u64| d.contains(q));
    let scheme = pi_tractable::core::scheme::trivial_nc_scheme(lang, CostClass::Log);
    assert!(scheme.claims_pi_tractable());
    let lang2 = FnPairLanguage::new("small-membership", |d: &Vec<u64>, q: &u64| d.contains(q));
    let instances = vec![(vec![1, 5, 9], vec![5u64, 6]), (vec![], vec![0])];
    assert_eq!(scheme.verify_against(&lang2, &instances), Ok(()));
}

/// Example 1 across the whole stack: scan, B⁺-tree, and sorted index give
/// identical Boolean answers on a shared workload; only costs differ.
#[test]
fn example1_three_engines_agree() {
    let schema = Schema::new(&[("a", ColType::Int)]);
    let values: Vec<i64> = (0..3_000).map(|i| (i * 7) % 5_000).collect();
    let rows = values.iter().map(|&v| vec![Value::Int(v)]).collect();
    let relation = Relation::from_rows(schema, rows).unwrap();
    let indexed = IndexedRelation::build(&relation, &[0]).expect("column 0 exists");
    let sorted = SortedIndex::build(&values);

    let meter = Meter::new();
    for probe in (0..6_000i64).step_by(13) {
        let q = SelectionQuery::point(0, probe);
        let by_scan = relation.eval_scan(&q);
        let by_tree = indexed.answer_metered(&q, &meter);
        let by_sorted = sorted.contains(&probe);
        assert_eq!(by_scan, by_tree, "probe {probe}");
        assert_eq!(by_scan, by_sorted, "probe {probe}");
    }
}

/// The preprocessing-pays-off crossover the paper's introduction argues:
/// total cost of (preprocess once + q cheap queries) undercuts q scans
/// once q is large enough, and never helps for a single query.
#[test]
fn amortization_crossover_exists() {
    let n = 1u64 << 14;
    let values: Vec<u64> = (0..n).collect();

    // Cost model from the measured meters.
    let meter = Meter::new();
    let sorted = SortedIndex::build(&values);
    meter.take();
    sorted.contains_metered(&(n + 1), &meter);
    let per_index_query = meter.take().max(1);
    pi_tractable::index::sorted::scan_contains_metered(&values, &(n + 1), &meter);
    let per_scan_query = meter.take();
    // Preprocessing: n log n comparison budget.
    let preprocess = (n as f64 * (n as f64).log2()) as u64;

    // One query: scanning wins.
    assert!(per_scan_query < preprocess + per_index_query);
    // Many queries: preprocessing wins (find the crossover).
    let crossover = (1..10_000_000u64)
        .find(|&q| preprocess + q * per_index_query < q * per_scan_query)
        .expect("crossover must exist");
    assert!(
        crossover < 100_000,
        "crossover {crossover} unexpectedly late for n={n}"
    );
}

/// Query-preserving compression composed with the closure index: compress
/// first, index the compressed graph, answer original queries — both
/// layers preserve every answer (Section 4(5) + Example 3 stacked).
#[test]
fn compression_then_indexing_preserves_reachability() {
    let g = generate::gnp_directed(120, 0.02, 31);
    let compressed = CompressedReach::build(&g);
    let direct = ReachIndex::build(&g);
    for u in (0..120).step_by(3) {
        for v in (0..120).step_by(7) {
            let expect = u == v || reachable_bfs(&g, u, v);
            assert_eq!(direct.reachable(u, v), expect, "direct ({u},{v})");
            assert_eq!(compressed.reachable(u, v), expect, "compressed ({u},{v})");
        }
    }
}

/// The BDS index answers exactly like the full search on structured and
/// random graphs — Υ′ vs Υ_BDS of Figure 1 as a correctness statement.
#[test]
fn bds_factorizations_agree() {
    let meter = Meter::new();
    for g in [
        generate::grid(12),
        generate::gnp_undirected(150, 0.02, 5),
        generate::path(80, false),
    ] {
        let idx = BdsIndex::build(&g);
        let n = g.node_count();
        for k in 0..200 {
            let (u, v) = ((k * 31) % n, (k * 17 + 3) % n);
            assert_eq!(
                idx.visited_before(u, v),
                pi_tractable::graph::bds::visited_before_by_search(&g, u, v, &meter),
                "({u},{v})"
            );
        }
    }
}

/// Full order: the BDS order restarts components in numbering order and
/// is consistent with the index positions.
#[test]
fn bds_order_and_index_are_consistent() {
    let g = generate::gnp_undirected(100, 0.01, 77);
    let order = bds_order(&g);
    let idx = BdsIndex::build(&g);
    for (pos, &node) in order.iter().enumerate() {
        assert_eq!(idx.position(node), pos);
    }
    // Permutation check.
    let mut sorted = order.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..100).collect::<Vec<_>>());
}

/// Incremental preprocessing story end-to-end: a maintained index answers
/// identically to a fresh rebuild after a mixed insert/delete stream.
#[test]
fn maintained_index_equals_rebuilt_index() {
    let schema = Schema::new(&[("k", ColType::Int)]);
    let rows: Vec<Vec<Value>> = (0..500i64).map(|i| vec![Value::Int(i * 2)]).collect();
    let base = Relation::from_rows(schema.clone(), rows).unwrap();
    let mut maintained = IndexedRelation::build(&base, &[0]).expect("column 0 exists");

    // Stream of updates.
    for i in 0..200i64 {
        maintained
            .insert(vec![Value::Int(1_000 + i)])
            .expect("valid row");
    }
    for id in (0..100).step_by(2) {
        maintained.delete(id);
    }

    // Rebuild from the maintained relation's live rows.
    let rebuilt = IndexedRelation::build(&maintained.to_relation(), &[0]).expect("column 0 exists");
    for probe in -10..1_300i64 {
        let q = SelectionQuery::point(0, probe);
        assert_eq!(maintained.answer(&q), rebuilt.answer(&q), "probe {probe}");
    }
}

/// Growth-curve classification distinguishes the scan from the index on
/// *measured* (not synthetic) step counts — the machinery every experiment
/// table rests on.
#[test]
fn fit_separates_scan_from_index_on_real_meters() {
    let meter = Meter::new();
    let mut scan = Vec::new();
    let mut index = Vec::new();
    for &n in &[1u64 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18] {
        let values: Vec<u64> = (0..n).collect();
        let sorted = SortedIndex::build(&values);
        meter.take();
        pi_tractable::index::sorted::scan_contains_metered(&values, &(n + 1), &meter);
        scan.push(Sample::new(n, meter.take()));
        sorted.contains_metered(&(n + 1), &meter);
        index.push(Sample::new(n, meter.take()));
    }
    assert_eq!(best_fit(&scan).best().model, FitModel::Linear);
    let idx_model = best_fit(&index).best().model;
    assert!(
        idx_model.is_polylog(),
        "index fit should be polylog, got {idx_model}"
    );
}
