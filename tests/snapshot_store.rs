//! Integration: the persistence layer's warm-start contract.
//!
//! For every persisted structure — `IndexedRelation`, `ShardedRelation`,
//! `HopLabels` — a snapshot written by one "process" and loaded by a
//! fresh one must answer **every** query identically to the cold-rebuilt
//! oracle: same Booleans, same global row ids, same reachability. And
//! every way a file can go bad (truncated, bit-flipped, version-skewed,
//! not a snapshot at all) must surface as a typed `StoreError`, never a
//! panic or a silently wrong answer.

use pi_tractable::graph::generate;
use pi_tractable::graph::hop::HopLabels;
use pi_tractable::graph::traverse::reachable_bfs;
use pi_tractable::prelude::*;
use pi_tractable::store::FORMAT_VERSION;
use std::path::PathBuf;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pitract-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn relation(n: i64) -> Relation {
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows = (0..n)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 64))])
        .collect();
    Relation::from_rows(schema, rows).unwrap()
}

fn mixed_queries(n: i64) -> Vec<SelectionQuery> {
    (0..120i64)
        .map(|k| match k % 4 {
            0 => SelectionQuery::point(0, (k * 997) % (n + n / 8)),
            1 => SelectionQuery::range_closed(0, (k * 641) % n, (k * 641) % n + 200),
            2 => SelectionQuery::and(
                SelectionQuery::point(1, format!("grp{}", k % 64).as_str()),
                SelectionQuery::range_closed(0, (k * 331) % n, (k * 331) % n + 2_000),
            ),
            _ => SelectionQuery::point(0, n + k),
        })
        .collect()
}

/// Mutate a relation the way a serving window would: deletes and late
/// inserts, so snapshots carry tombstones and post-build rows.
fn churn(sr: &mut ShardedRelation, n: i64) {
    for gid in (0..n as usize).step_by(97) {
        sr.delete(gid);
    }
    for i in 0..50i64 {
        sr.insert(vec![Value::Int(n + i), Value::str("late")])
            .unwrap();
    }
}

#[test]
fn sharded_snapshot_serves_identically_to_cold_rebuild() {
    let n = 20_000i64;
    let rel = relation(n);
    let dir = fresh_dir("sharded");
    let catalog = SnapshotCatalog::open(&dir).unwrap();

    for (name, shard_by) in [
        ("hash", ShardBy::Hash { col: 0 }),
        (
            "range",
            ShardBy::Range {
                col: 0,
                splits: vec![Value::Int(n / 4), Value::Int(n / 2), Value::Int(3 * n / 4)],
            },
        ),
    ] {
        // "Process 1": preprocess, mutate, persist.
        let mut built = ShardedRelation::build(&rel, shard_by, 4, &[0, 1]).unwrap();
        churn(&mut built, n);
        catalog.save(name, &Snapshot::Sharded(built)).unwrap();

        // "Process 2": warm-start from disk only.
        let warm = catalog.load(name).unwrap().into_sharded().unwrap();

        // Cold oracle: rebuild Π from scratch with the same history.
        let mut cold = ShardedRelation::build(&rel, warm.shard_by().clone(), 4, &[0, 1]).unwrap();
        churn(&mut cold, n);

        assert_eq!(warm.len(), cold.len());
        let batch = QueryBatch::new(mixed_queries(n));
        let warm_rows = batch.execute_rows(&warm).unwrap();
        let cold_rows = batch.execute_rows(&cold).unwrap();
        // Row ids — not just Booleans — must match: the id maps and
        // tombstones are part of the persisted state.
        assert_eq!(warm_rows.rows, cold_rows.rows, "{name}");
        let warm_bools = batch.execute(&warm).unwrap();
        let cold_bools = batch.execute(&cold).unwrap();
        assert_eq!(warm_bools.answers, cold_bools.answers, "{name}");
    }
    assert_eq!(catalog.list().unwrap(), vec!["hash", "range"]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn indexed_snapshot_matches_cold_rebuild() {
    let n = 5_000i64;
    let rel = relation(n);
    let mut built = IndexedRelation::build(&rel, &[0, 1]).unwrap();
    for id in (0..n as usize).step_by(13) {
        built.delete(id);
    }
    let bytes = Snapshot::Indexed(built).to_bytes();
    let warm = Snapshot::from_bytes(&bytes)
        .unwrap()
        .into_indexed()
        .unwrap();

    let mut cold = IndexedRelation::build(&rel, &[0, 1]).unwrap();
    for id in (0..n as usize).step_by(13) {
        cold.delete(id);
    }
    let meter = Meter::new();
    for q in mixed_queries(n) {
        assert_eq!(warm.answer(&q), cold.answer(&q), "{q:?}");
        assert_eq!(
            warm.matching_ids_metered(&q, &meter),
            cold.matching_ids_metered(&q, &meter),
            "{q:?}"
        );
    }
}

#[test]
fn hop_labels_snapshot_matches_bfs_oracle() {
    let g = generate::random_dag(300, 900, 42);
    let built = HopLabels::build(&g).unwrap();
    let dir = fresh_dir("hop");
    let catalog = SnapshotCatalog::open(&dir).unwrap();
    catalog.save("reach", &Snapshot::Hop(built)).unwrap();
    assert_eq!(catalog.kind_of("reach").unwrap(), SnapshotKind::HopLabels);

    let warm = catalog.load("reach").unwrap().into_hop().unwrap();
    for u in (0..300).step_by(17) {
        for v in (0..300).step_by(11) {
            assert_eq!(warm.query(u, v), reachable_bfs(&g, u, v), "({u},{v})");
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn damaged_files_fail_typed_never_panic() {
    let sr = ShardedRelation::build(&relation(500), ShardBy::Hash { col: 0 }, 2, &[0]).unwrap();
    let good = Snapshot::Sharded(sr).to_bytes();

    // Truncation points across the whole file: every early offset (the
    // header/table region) plus samples through the payload. Checksums
    // make each check O(cut), so exhaustive cuts would be quadratic.
    for cut in (0..64).chain((64..good.len()).step_by(41)) {
        assert!(
            Snapshot::from_bytes(&good[..cut]).is_err(),
            "truncation at {cut} accepted"
        );
    }
    // A bit flip in every 37th byte (checksum or payload validation
    // catches each one; either way: typed error or a clean load, no
    // panic, and pristine bytes keep loading).
    for at in (0..good.len()).step_by(37) {
        let mut bad = good.clone();
        bad[at] ^= 0x40;
        let _ = Snapshot::from_bytes(&bad);
    }
    // Version skew is diagnosed as such.
    let mut skewed = good.clone();
    skewed[8..10].copy_from_slice(&(FORMAT_VERSION + 7).to_le_bytes());
    assert!(matches!(
        Snapshot::from_bytes(&skewed),
        Err(StoreError::VersionMismatch { .. })
    ));
    // Not a snapshot at all.
    assert!(matches!(
        Snapshot::from_bytes(b"{\"json\": \"not a snapshot\", \"pad\": 123}"),
        Err(StoreError::BadMagic)
    ));
    assert!(Snapshot::from_bytes(&good).is_ok());
}

#[test]
fn wrong_kind_is_reported_not_coerced() {
    let dir = fresh_dir("kinds");
    let catalog = SnapshotCatalog::open(&dir).unwrap();
    let ir = IndexedRelation::build(&relation(50), &[0]).unwrap();
    catalog.save("rel", &Snapshot::Indexed(ir)).unwrap();
    match catalog.load("rel").unwrap().into_sharded() {
        Err(StoreError::WrongKind { expected, found }) => {
            assert_eq!(expected, SnapshotKind::ShardedRelation);
            assert_eq!(found, SnapshotKind::IndexedRelation);
        }
        other => panic!("expected WrongKind, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
