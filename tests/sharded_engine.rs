//! Integration: the sharded batch engine against the scan oracle at the
//! acceptance scale — an 8-shard batch of 1,000+ mixed queries over a
//! 100k-row relation, plus concurrent batches sharing one engine.

use pi_tractable::prelude::*;

const N: i64 = 100_000;

fn base_relation() -> Relation {
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..N)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 100))])
        .collect();
    Relation::from_rows(schema, rows).expect("valid rows")
}

/// 1,024 queries: shard-key points (hits and misses), ranges (in and out
/// of the data), and conjunctions driven by either side.
fn mixed_batch() -> QueryBatch {
    QueryBatch::new((0..1_024i64).map(|k| match k % 8 {
        0 | 1 => SelectionQuery::point(0, (k * 997) % (N + N / 8)),
        2 => SelectionQuery::point(1, format!("grp{}", k % 128).as_str()),
        3 | 4 => {
            let lo = (k * 641) % (N + 10_000);
            SelectionQuery::range_closed(0, lo, lo + 300)
        }
        5 => SelectionQuery::and(
            SelectionQuery::point(1, format!("grp{}", k % 100).as_str()),
            SelectionQuery::range_closed(0, (k * 331) % N, (k * 331) % N + 2_000),
        ),
        6 => SelectionQuery::and(
            SelectionQuery::range_closed(0, (k * 577) % N, (k * 577) % N + 50),
            SelectionQuery::point(1, format!("grp{}", k % 50).as_str()),
        ),
        _ => SelectionQuery::point(0, N + k),
    }))
}

#[test]
fn eight_shard_batch_matches_scan_oracle_at_scale() {
    let base = base_relation();
    let batch = mixed_batch();
    assert!(batch.len() >= 1_000 && base.len() >= 100_000);
    let oracle: Vec<bool> = batch.queries().iter().map(|q| base.eval_scan(q)).collect();

    for shard_by in [
        ShardBy::Hash { col: 0 },
        ShardBy::Range {
            col: 0,
            splits: (1..8).map(|i| Value::Int(i * N / 8)).collect(),
        },
    ] {
        let sharded =
            ShardedRelation::build(&base, shard_by.clone(), 8, &[0, 1]).expect("valid spec");
        assert_eq!(sharded.len(), base.len());

        let result = batch.execute(&sharded).expect("valid batch");
        assert_eq!(result.answers, oracle, "{shard_by:?}");

        // The report accounts for every query, and the planner kept the
        // indexable queries off the scan path.
        assert_eq!(result.report.per_query.len(), batch.len());
        let hist = result.report.path_histogram();
        let scans = hist
            .iter()
            .find(|(l, _)| *l == "full-scan")
            .map_or(0, |(_, c)| *c);
        assert_eq!(scans, 0, "all shapes in this batch are indexable: {hist:?}");
    }
}

#[test]
fn row_id_serving_matches_count_oracle_at_scale() {
    let base = base_relation();
    let sharded =
        ShardedRelation::build(&base, ShardBy::Hash { col: 0 }, 8, &[0, 1]).expect("valid spec");
    let batch = QueryBatch::new((0..64i64).map(|k| {
        SelectionQuery::and(
            SelectionQuery::point(1, format!("grp{}", k % 100).as_str()),
            SelectionQuery::range_closed(0, k * 1_000, k * 1_000 + 10_000),
        )
    }));
    let got = batch.execute_rows(&sharded).expect("valid batch");
    for (q, ids) in batch.queries().iter().zip(&got.rows) {
        assert_eq!(ids.len(), base.count_where(q), "{q:?}");
        for &gid in ids {
            assert!(q.matches(sharded.row(gid).expect("live row")), "{q:?}");
        }
    }
}

#[test]
fn concurrent_batches_agree_with_the_oracle() {
    let base = base_relation();
    let sharded =
        ShardedRelation::build(&base, ShardBy::Hash { col: 0 }, 4, &[0, 1]).expect("valid spec");
    let batch = mixed_batch();
    let oracle: Vec<bool> = batch.queries().iter().map(|q| base.eval_scan(q)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| scope.spawn(|| batch.execute(&sharded).expect("valid batch").answers))
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("batch thread"), oracle);
        }
    });
}

#[test]
fn updates_flow_through_batch_answers() {
    let base = base_relation();
    let mut sharded =
        ShardedRelation::build(&base, ShardBy::Hash { col: 0 }, 8, &[0, 1]).expect("valid spec");
    let fresh = SelectionQuery::point(0, N + 7);
    let batch = QueryBatch::new([fresh.clone(), SelectionQuery::point(0, 3i64)]);

    let before = batch.execute(&sharded).expect("valid batch");
    assert_eq!(before.answers, vec![false, true]);

    let gid = sharded
        .insert(vec![Value::Int(N + 7), Value::str("grp0")])
        .expect("valid row");
    sharded
        .delete(3)
        .expect("row with global id 3 (id value 3) is live");
    let after = batch.execute(&sharded).expect("valid batch");
    assert_eq!(after.answers, vec![true, false]);

    sharded.delete(gid).expect("inserted row is live");
    let reverted = batch.execute(&sharded).expect("valid batch");
    assert_eq!(reverted.answers, vec![false, false]);
}
